//! Star-join query representation.
//!
//! Mirrors the paper's query template `SELECT Aggr(*) FROM R WHERE Φ
//! [GROUP BY g…]`: an aggregate over the fact table, a conjunction of
//! dimension predicates, and optional grouping attributes.

use crate::predicate::Predicate;
use std::collections::BTreeMap;

/// The aggregate function over the fact table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Agg {
    /// `COUNT(*)` — every joined tuple weighs 1.
    Count,
    /// `SUM(measure)` — tuple weight is the named fact measure.
    Sum(String),
    /// `SUM(a − b)` — e.g. `Qg4`'s `revenue − supplycost`.
    SumDiff(String, String),
}

impl Agg {
    /// True for COUNT.
    pub fn is_count(&self) -> bool {
        matches!(self, Agg::Count)
    }
}

/// A grouping attribute `table.attr` (e.g. `Date.year`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupAttr {
    /// Dimension table name.
    pub table: String,
    /// Attribute column name.
    pub attr: String,
}

impl GroupAttr {
    /// Builds a grouping attribute.
    pub fn new(table: impl Into<String>, attr: impl Into<String>) -> Self {
        GroupAttr { table: table.into(), attr: attr.into() }
    }
}

/// A star-join query: aggregate + predicate conjunction + optional grouping.
///
/// `Eq`/`Hash` cover every field **including the label `name`**, so two
/// semantically identical queries with different labels compare unequal.
/// Callers that want label-free, order-insensitive identity (e.g. answer
/// caches) should key on [`crate::canon::CanonicalQuery`] instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StarQuery {
    /// Query label (e.g. `Qc2`), used in reports.
    pub name: String,
    /// Aggregate over the fact table.
    pub agg: Agg,
    /// Conjunction of dimension-attribute predicates.
    pub predicates: Vec<Predicate>,
    /// GROUP BY attributes (empty for plain aggregates).
    pub group_by: Vec<GroupAttr>,
}

impl StarQuery {
    /// A COUNT(*) query with no predicates yet.
    pub fn count(name: impl Into<String>) -> Self {
        StarQuery { name: name.into(), agg: Agg::Count, predicates: vec![], group_by: vec![] }
    }

    /// A SUM(measure) query with no predicates yet.
    pub fn sum(name: impl Into<String>, measure: impl Into<String>) -> Self {
        StarQuery {
            name: name.into(),
            agg: Agg::Sum(measure.into()),
            predicates: vec![],
            group_by: vec![],
        }
    }

    /// A SUM(a − b) query with no predicates yet.
    pub fn sum_diff(name: impl Into<String>, a: impl Into<String>, b: impl Into<String>) -> Self {
        StarQuery {
            name: name.into(),
            agg: Agg::SumDiff(a.into(), b.into()),
            predicates: vec![],
            group_by: vec![],
        }
    }

    /// Adds a predicate (builder style).
    pub fn with(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// Adds a grouping attribute (builder style).
    pub fn group_by(mut self, group: GroupAttr) -> Self {
        self.group_by.push(group);
        self
    }

    /// The distinct tables carrying predicates, in first-appearance order —
    /// the paper's `n` for the `ε_i = ε/n` budget split.
    pub fn predicate_tables(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for p in &self.predicates {
            if !seen.contains(&p.table.as_str()) {
                seen.push(p.table.as_str());
            }
        }
        seen
    }

    /// True iff the query has a GROUP BY clause.
    pub fn is_grouped(&self) -> bool {
        !self.group_by.is_empty()
    }
}

/// A query answer: a scalar aggregate or a group map keyed by the group-by
/// attribute codes (in `group_by` order). `BTreeMap` keeps group iteration
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Single aggregate value.
    Scalar(f64),
    /// Per-group aggregate values.
    Groups(BTreeMap<Vec<u32>, f64>),
}

impl QueryResult {
    /// The scalar value; errors on grouped results.
    pub fn scalar(&self) -> Result<f64, crate::error::EngineError> {
        match self {
            QueryResult::Scalar(v) => Ok(*v),
            QueryResult::Groups(_) => Err(crate::error::EngineError::WrongResultShape("scalar")),
        }
    }

    /// The group map; errors on scalar results.
    pub fn groups(&self) -> Result<&BTreeMap<Vec<u32>, f64>, crate::error::EngineError> {
        match self {
            QueryResult::Groups(g) => Ok(g),
            QueryResult::Scalar(_) => Err(crate::error::EngineError::WrongResultShape("groups")),
        }
    }

    /// Positional relative error: for grouped results, both group-value
    /// vectors are sorted descending and compared slot-by-slot (shorter one
    /// zero-padded), measuring the accuracy of the group *histogram* rather
    /// than key alignment. This is the forgiving metric the paper's GROUP BY
    /// numbers imply (Qg2 ≈ Qs2 errors despite predicate shifts relabelling
    /// groups); scalars fall back to [`QueryResult::relative_error`].
    pub fn positional_relative_error(&self, truth: &QueryResult) -> f64 {
        match (self, truth) {
            (QueryResult::Groups(est), QueryResult::Groups(t)) => {
                let mut a: Vec<f64> = est.values().copied().collect();
                let mut b: Vec<f64> = t.values().copied().collect();
                a.sort_by(|x, y| y.partial_cmp(x).expect("finite group values"));
                b.sort_by(|x, y| y.partial_cmp(x).expect("finite group values"));
                let len = a.len().max(b.len());
                a.resize(len, 0.0);
                b.resize(len, 0.0);
                let num: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
                let den: f64 = b.iter().map(|y| y.abs()).sum();
                num / den.max(1.0)
            }
            _ => self.relative_error(truth),
        }
    }

    /// Relative L1 error against a reference result.
    ///
    /// Scalars: `|x̂ − x| / max(|x|, 1)`. Groups: `Σ_g |x̂_g − x_g| / Σ_g
    /// |x_g|` over the union of group keys (a group missing on either side
    /// counts with value 0) — interpretation decision #8 in DESIGN.md.
    pub fn relative_error(&self, truth: &QueryResult) -> f64 {
        match (self, truth) {
            (QueryResult::Scalar(est), QueryResult::Scalar(t)) => {
                (est - t).abs() / t.abs().max(1.0)
            }
            (QueryResult::Groups(est), QueryResult::Groups(t)) => {
                let mut num = 0.0;
                let mut den = 0.0;
                for (k, v) in t {
                    num += (est.get(k).copied().unwrap_or(0.0) - v).abs();
                    den += v.abs();
                }
                for (k, v) in est {
                    if !t.contains_key(k) {
                        num += v.abs();
                    }
                }
                num / den.max(1.0)
            }
            // Shape mismatch: treat as total error.
            _ => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let q = StarQuery::count("q")
            .with(Predicate::point("A", "x", 1))
            .with(Predicate::range("B", "y", 0, 2))
            .with(Predicate::point("A", "z", 0))
            .group_by(GroupAttr::new("A", "x"));
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicate_tables(), vec!["A", "B"], "distinct, order-preserving");
        assert!(q.is_grouped());
        assert!(q.agg.is_count());
    }

    #[test]
    fn result_shape_accessors() {
        let s = QueryResult::Scalar(5.0);
        assert_eq!(s.scalar().unwrap(), 5.0);
        assert!(s.groups().is_err());
        let mut m = BTreeMap::new();
        m.insert(vec![1u32], 2.0);
        let g = QueryResult::Groups(m);
        assert!(g.scalar().is_err());
        assert_eq!(g.groups().unwrap().len(), 1);
    }

    #[test]
    fn scalar_relative_error() {
        let t = QueryResult::Scalar(100.0);
        let e = QueryResult::Scalar(110.0);
        assert!((e.relative_error(&t) - 0.1).abs() < 1e-12);
        // Zero truth guards against division by zero.
        let t0 = QueryResult::Scalar(0.0);
        let e0 = QueryResult::Scalar(3.0);
        assert!((e0.relative_error(&t0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn group_relative_error_handles_missing_groups() {
        let mut truth = BTreeMap::new();
        truth.insert(vec![0u32], 10.0);
        truth.insert(vec![1u32], 10.0);
        let mut est = BTreeMap::new();
        est.insert(vec![0u32], 12.0); // +2
        est.insert(vec![2u32], 3.0); // spurious group: +3
                                     // missing group [1]: +10
        let err = QueryResult::Groups(est).relative_error(&QueryResult::Groups(truth));
        assert!((err - 15.0 / 20.0).abs() < 1e-12, "got {err}");
    }

    #[test]
    fn shape_mismatch_is_infinite_error() {
        let s = QueryResult::Scalar(1.0);
        let g = QueryResult::Groups(BTreeMap::new());
        assert!(s.relative_error(&g).is_infinite());
    }

    #[test]
    fn positional_error_ignores_key_relabelling() {
        // Same histogram under different keys: positional error is 0, the
        // key-aligned metric sees total disagreement.
        let mut truth = BTreeMap::new();
        truth.insert(vec![0u32], 10.0);
        truth.insert(vec![1u32], 5.0);
        let mut est = BTreeMap::new();
        est.insert(vec![7u32], 5.0);
        est.insert(vec![9u32], 10.0);
        let t = QueryResult::Groups(truth);
        let e = QueryResult::Groups(est);
        assert_eq!(e.positional_relative_error(&t), 0.0);
        assert!(e.relative_error(&t) > 1.9);
    }

    #[test]
    fn positional_error_pads_missing_groups() {
        let mut truth = BTreeMap::new();
        truth.insert(vec![0u32], 10.0);
        truth.insert(vec![1u32], 10.0);
        let mut est = BTreeMap::new();
        est.insert(vec![0u32], 10.0);
        let t = QueryResult::Groups(truth);
        let e = QueryResult::Groups(est);
        assert!((e.positional_relative_error(&t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn positional_error_on_scalars_delegates() {
        let t = QueryResult::Scalar(100.0);
        let e = QueryResult::Scalar(90.0);
        assert!((e.positional_relative_error(&t) - 0.1).abs() < 1e-12);
    }
}
