//! Compiled scan plans: planning separated from execution.
//!
//! The legacy executor resolved foreign keys, predicate bitmaps, group
//! lookups and measure accessors *inside* the scan, then dispatched a
//! per-row closure over `Option<Vec<bool>>` bitmaps and cloned a `Vec<u32>`
//! group key per qualifying row. [`ScanPlan`] does all of that resolution
//! exactly once, ahead of time, and compiles a batch of queries into flat
//! per-query programs the fact-phase kernel can run without any name
//! lookups, `Option` tests, or allocations on the hot path:
//!
//! * **Packed dimension masks.** Binary predicates become per-dimension
//!   [`BitSet`]s (snowflake predicates folded into their parent, as before).
//! * **Fused multi-query scans.** A plan holds any number of queries —
//!   binary and real-valued weighted predicates mixed — and answers all of
//!   them in **one** pass over the fact table with per-query accumulators.
//! * **Chunked columnar inner loops.** The fact table is processed in
//!   4096-row chunks; per chunk, each binary query's qualifying rows are
//!   computed as 64 packed `u64` mask words (gather + AND per filtered
//!   dimension), then drained with popcount / trailing-zeros iteration
//!   instead of a per-row branch chain.
//! * **Histogram-factored weighted batches.** Pure weighted queries (the
//!   `Q = Φ·W` form of paper Eq. 11) share one joint attribute-code
//!   histogram `W`: the single scan accumulates, per aggregate kind, the
//!   total row weight of every combination of the batch's weighted
//!   attribute codes, and each query then reduces to a `space`-length dot
//!   product `Φ_q · W` — answering `l` reconstructed WD rows costs one scan
//!   plus `O(l · space)` flops instead of `l` scans. Falls back to a
//!   per-row loop when the joint code space exceeds [`DENSE_GROUP_CAP`] or
//!   a weighted query also carries binary filters.
//! * **Dense group accumulation.** When the cross-product of group-by
//!   domains is small (≤ [`DENSE_GROUP_CAP`]), groups accumulate into a
//!   flat `Vec<f64>` indexed by the row-major flattening of the group codes
//!   — no `BTreeMap` lookups or key clones per row. Larger group spaces
//!   fall back to the map.
//! * **Parallel sharding.** [`ScanOptions::threads`] > 1 splits the fact
//!   table into contiguous row shards executed under `std::thread::scope`
//!   (std-only, no rayon), each with its own partial accumulators, merged
//!   in shard order so results are deterministic for a fixed thread count.
//!
//! * **SIMD-width chunk interior.** The hot interior is a staging-based
//!   kernel ([`crate::stage`]): each referenced dimension's fk codes are
//!   copied into a cache-resident buffer **once per chunk** and shared by
//!   every fused query (the pre-staging kernel re-read them from main
//!   memory once per query per chunk); per-dimension pass masks are
//!   classified at plan time into probe fast paths (≤ 64 dimension rows →
//!   the whole mask in one register word, ≤ 2^16 rows → a byte-granular
//!   LUT, larger → the packed bitset) drained by 8-wide unrolled gather
//!   loops; filters are ordered by estimated selectivity (pass-fraction,
//!   ties by dimension index) so the `*word == 0` early exit fires as
//!   early as possible; and the histogram plan stages its joint flat codes
//!   once per chunk instead of recomputing them per row per kind.
//!   [`ScanOptions::legacy_gather`] forces the pre-staging scalar interior
//!   for A/B measurement — both interiors are bit-identical.
//!
//! Binary-query accumulation order within a shard is identical to the
//! legacy row-at-a-time executor ([`crate::exec::reference`]), so results
//! are bit-identical to it; weighted results are reassociated by the
//! histogram factoring but remain bit-identical whenever the arithmetic is
//! exact (integer measures, dyadic weights), which the equivalence property
//! tests in `tests/prop_scan_kernel.rs` pin down. The staged interior
//! preserves that guarantee construction-by-construction: staged codes are
//! exact copies, mask words are the same AND conjunction (reordering
//! filters cannot change a bitwise AND), and every drain visits rows in
//! the same ascending order.

use crate::bitset::BitSet;
use crate::cost::{cost_model_for, CostConfig, CostModel, DEFAULT_COST_SAMPLES};
use crate::error::EngineError;
use crate::predicate::{Predicate, WeightedPredicate};
use crate::query::{Agg, QueryResult, StarQuery};
use crate::schema::StarSchema;
use crate::stage::{
    gather_word_bytes, gather_word_small, gather_word_wide, ChunkStage, CHUNK_ROWS, CHUNK_WORDS,
};
use starj_telemetry::{cost_counters, kernel_counters, CostCounters, Json, KernelCounters};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default largest dimension row count answered through the
/// single-register-word probe ([`Probe::Word`]); overridable per scan via
/// [`ScanOptions::word_probe_cap`] (clamped to ≤ 64 — the mask must fit
/// one register word).
const WORD_PROBE_CAP: usize = 64;
/// Default largest dimension row count answered through the byte-LUT probe
/// ([`Probe::Bytes`]); larger dimensions gather from the packed bitset.
/// Overridable per scan via [`ScanOptions::byte_probe_cap`].
const BYTE_PROBE_CAP: usize = 1 << 16;

/// Largest dense accumulator (group-by cross-product or weighted joint code
/// space) answered through flat vectors; larger spaces fall back to sparse
/// maps / per-row loops.
pub const DENSE_GROUP_CAP: usize = 1 << 16;

/// Counts completed fact-table scans process-wide (one per
/// [`ScanPlan::execute`] call, regardless of how many queries it fused or
/// how many threads sharded it). Benchmarks and the service use deltas of
/// this counter to *prove* fusion — e.g. that an `l`-query workload really
/// cost one scan.
static FACT_SCANS: AtomicU64 = AtomicU64::new(0);

/// Total fact-table scans completed by this process so far.
pub fn fact_scan_count() -> u64 {
    FACT_SCANS.load(Ordering::Relaxed)
}

/// Execution options for a compiled scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Worker threads for the fact scan. `1` (the default) runs on the
    /// calling thread; `n > 1` shards the fact table into `n` contiguous
    /// row ranges merged in deterministic shard order.
    pub threads: usize,
    /// Force the pre-staging scalar chunk interior (per-query fk re-reads,
    /// packed-bitset probes, per-row histogram codes) instead of the staged
    /// SIMD-width kernel. Results are bit-identical either way; this knob
    /// exists so benchmarks can A/B the gather strategies on live traffic.
    pub legacy_gather: bool,
    /// Fact rows the sampling cost model walks per schema instance
    /// ([`crate::cost`]). `0` disables the model and restores the static
    /// plan heuristics (exact pass-count filter ordering, blanket ≥ 2-uses
    /// mask sharing and staging). Any plan shape the model picks is
    /// bit-identical on answers by construction.
    pub cost_samples: usize,
    /// Largest dimension row count probed through the register-word fast
    /// path (clamped to ≤ 64 at classification).
    pub word_probe_cap: usize,
    /// Largest dimension row count probed through the byte-LUT fast path.
    pub byte_probe_cap: usize,
    /// Minimum per-chunk gathers of a dimension before its fk codes are
    /// staged (the cost model may still demote cache-resident dimensions).
    pub stage_min_uses: usize,
    /// Minimum cross-query uses of a filter before it is considered for
    /// the shared-mask cache (the cost model may still demote filters
    /// whose private re-gathers are estimated nearly free).
    pub share_min_uses: usize,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            threads: 1,
            legacy_gather: false,
            cost_samples: DEFAULT_COST_SAMPLES,
            word_probe_cap: WORD_PROBE_CAP,
            byte_probe_cap: BYTE_PROBE_CAP,
            stage_min_uses: 2,
            share_min_uses: 2,
        }
    }
}

impl ScanOptions {
    /// Options scanning with `threads` workers (clamped to ≥ 1).
    pub fn parallel(threads: usize) -> Self {
        ScanOptions { threads: threads.max(1), ..ScanOptions::default() }
    }

    /// The same options with `threads` workers (clamped to ≥ 1), keeping
    /// every other knob — how a service threads its configured scan
    /// options without resetting the cost-model and probe overrides.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The same options with the pre-staging scalar gather interior forced
    /// (the A/B baseline for the staged SIMD-width kernel).
    pub fn with_legacy_gather(mut self) -> Self {
        self.legacy_gather = true;
        self
    }

    /// The same options with the cost model sampling `samples` fact rows
    /// (0 disables it — the static-heuristic baseline).
    pub fn with_cost_samples(mut self, samples: usize) -> Self {
        self.cost_samples = samples;
        self
    }

    /// The same options with explicit probe-classification caps, so tests
    /// and benches can exercise every probe regime without 2^16-row
    /// fixtures.
    pub fn with_probe_caps(mut self, word: usize, byte: usize) -> Self {
        self.word_probe_cap = word;
        self.byte_probe_cap = byte;
        self
    }
}

/// A weighted query for batch execution: real-valued per-domain weights
/// (paper Eq. 11) and an aggregate, evaluated as
/// `Σ_rows Π_dims w_dim(attr(fk)) · w(row)`.
#[derive(Debug, Clone)]
pub struct WeightedQuery {
    /// The weighted predicates (dimensions without one contribute factor 1).
    pub predicates: Vec<WeightedPredicate>,
    /// Row-weight aggregate.
    pub agg: Agg,
}

impl WeightedQuery {
    /// A weighted COUNT query.
    pub fn count(predicates: Vec<WeightedPredicate>) -> Self {
        WeightedQuery { predicates, agg: Agg::Count }
    }
}

/// Row-weight accessor for an aggregate, resolved once at plan time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RowWeight<'a> {
    Ones,
    Measure(&'a [i64]),
    Diff(&'a [i64], &'a [i64]),
}

impl<'a> RowWeight<'a> {
    pub(crate) fn resolve(schema: &'a StarSchema, agg: &Agg) -> Result<Self, EngineError> {
        Ok(match agg {
            Agg::Count => RowWeight::Ones,
            Agg::Sum(m) => RowWeight::Measure(schema.fact().measure(m)?),
            Agg::SumDiff(a, b) => {
                RowWeight::Diff(schema.fact().measure(a)?, schema.fact().measure(b)?)
            }
        })
    }

    #[inline]
    pub(crate) fn at(&self, row: usize) -> f64 {
        match self {
            RowWeight::Ones => 1.0,
            RowWeight::Measure(m) => m[row] as f64,
            RowWeight::Diff(a, b) => (a[row] - b[row]) as f64,
        }
    }

    fn is_ones(&self) -> bool {
        matches!(self, RowWeight::Ones)
    }

    /// Identity key for deduplicating aggregate kinds across a batch
    /// (variant + backing-slice addresses).
    fn key(&self) -> (u8, usize, usize) {
        match self {
            RowWeight::Ones => (0, 0, 0),
            RowWeight::Measure(m) => (1, m.as_ptr() as usize, 0),
            RowWeight::Diff(a, b) => (2, a.as_ptr() as usize, b.as_ptr() as usize),
        }
    }
}

/// One weighted axis: a `(dimension, attribute)` pair with the per-code
/// weight vector (same-attribute predicates already multiplied together).
#[derive(Debug, Clone)]
struct WeightAxis<'a> {
    dim: usize,
    /// Attribute codes indexed by the dimension's pk.
    codes: &'a [u32],
    /// Attribute domain size.
    domain: usize,
    /// One weight per attribute code.
    weights: Vec<f64>,
}

/// Group-by program: per-attribute code lookups plus the dense flattening
/// geometry when the group space fits [`DENSE_GROUP_CAP`].
#[derive(Debug, Clone)]
struct GroupPlan<'a> {
    /// Per group attribute: (dimension index, codes indexed by pk).
    lookups: Vec<(usize, &'a [u32])>,
    /// Domain size of each group attribute.
    sizes: Vec<u32>,
    /// Product of `sizes` when ≤ [`DENSE_GROUP_CAP`]; `None` → sparse maps.
    dense_space: Option<usize>,
}

impl<'a> GroupPlan<'a> {
    fn resolve(
        schema: &'a StarSchema,
        group_by: &[crate::query::GroupAttr],
    ) -> Result<Self, EngineError> {
        let mut lookups = Vec::with_capacity(group_by.len());
        let mut sizes = Vec::with_capacity(group_by.len());
        for g in group_by {
            let di = schema.dim_index(&g.table)?;
            let dim = &schema.dims()[di];
            lookups.push((di, dim.table.codes(&g.attr)?));
            sizes.push(dim.table.domain(&g.attr)?.size());
        }
        let mut space = 1usize;
        let mut dense = true;
        for &s in &sizes {
            match space.checked_mul(s as usize) {
                Some(p) if p <= DENSE_GROUP_CAP => space = p,
                _ => {
                    dense = false;
                    break;
                }
            }
        }
        Ok(GroupPlan { lookups, sizes, dense_space: dense.then_some(space) })
    }

    /// Row-major flat index of a fact row's group key.
    #[inline]
    fn flat_index(&self, fks: &[&[u32]], row: usize) -> usize {
        let mut flat = 0usize;
        for ((di, codes), &size) in self.lookups.iter().zip(&self.sizes) {
            flat = flat * size as usize + codes[fks[*di][row] as usize] as usize;
        }
        flat
    }

    /// The group key of a fact row (sparse path).
    #[inline]
    fn key(&self, fks: &[&[u32]], row: usize) -> Vec<u32> {
        self.lookups.iter().map(|(di, codes)| codes[fks[*di][row] as usize]).collect()
    }

    /// Decodes a flat index back into the group key.
    fn decode(&self, mut flat: usize) -> Vec<u32> {
        let mut key = vec![0u32; self.sizes.len()];
        for (slot, &size) in key.iter_mut().zip(&self.sizes).rev() {
            *slot = (flat % size as usize) as u32;
            flat /= size as usize;
        }
        key
    }
}

/// The plan-time probe classification of one dimension pass mask: how the
/// chunk kernel extracts a fact row's pass bit from its fk code.
#[derive(Debug, Clone)]
enum Probe {
    /// Dimension of ≤ [`WORD_PROBE_CAP`] rows: the whole pass mask lives in
    /// one register word, so the probe is a branch-free `(word >> code) & 1`.
    Word(u64),
    /// Dimension of ≤ [`BYTE_PROBE_CAP`] rows: byte-granular `{0, 1}`
    /// lookup table, one byte load per probe.
    Bytes(Box<[u8]>),
    /// Large dimension: gather from the packed bitset (word index + shift).
    Wide,
}

/// One compiled binary filter: the dimension, its packed pass mask, the
/// probe fast path, and the plan-time selectivity signal.
#[derive(Debug, Clone)]
struct Filter {
    dim: usize,
    /// The packed pass mask over dimension rows — always kept (the legacy
    /// gather and the `Wide` probe read it; selectivity comes from it).
    bits: BitSet,
    probe: Probe,
    /// Selectivity discriminant: the exact dimension-row pass count when
    /// the cost model is off, the sampled fact-row hit count when it's on.
    /// Deterministic per (mask, model), so it stays a valid dedup key.
    pass: usize,
    /// Estimated fact pass fraction from the cost model (`None` without a
    /// model → exact cross-multiplied ordering).
    est: Option<f64>,
}

impl Filter {
    /// [`Filter::build`] under the default caps with no model — the
    /// boundary-test entry point.
    #[cfg(test)]
    fn new(dim: usize, bits: BitSet) -> Self {
        Filter::build(dim, bits, WORD_PROBE_CAP, BYTE_PROBE_CAP, None)
    }

    /// Builds a filter under explicit probe caps and an optional cost
    /// model. With a model, selectivity comes from the sampled walks — no
    /// full-column `count_ones` pass.
    fn build(
        dim: usize,
        bits: BitSet,
        word_cap: usize,
        byte_cap: usize,
        model: Option<&CostModel>,
    ) -> Self {
        let (pass, est) = match model {
            Some(m) => {
                let e = m.pass_fraction(dim, &bits);
                (e.hits, Some(e.fraction))
            }
            None => (bits.count_ones(), None),
        };
        let k = kernel_counters();
        let probe = if bits.len() <= word_cap.min(WORD_PROBE_CAP) {
            KernelCounters::add(&k.probe_word, 1);
            Probe::Word(bits.words().first().copied().unwrap_or(0))
        } else if bits.len() <= byte_cap {
            KernelCounters::add(&k.probe_bytes, 1);
            Probe::Bytes(bits.to_byte_lut())
        } else {
            KernelCounters::add(&k.probe_bitset, 1);
            Probe::Wide
        };
        Filter { dim, bits, probe, pass, est }
    }

    /// Gathers one mask word (≤ 64 fk codes) through the probe fast path.
    /// The match costs one predicted branch per 64 rows; each arm is a
    /// monomorphic 8-wide unrolled loop.
    #[inline]
    fn gather_word(&self, lane: &[u32]) -> u64 {
        match &self.probe {
            Probe::Word(table) => gather_word_small(*table, lane),
            Probe::Bytes(lut) => gather_word_bytes(lut, lane),
            Probe::Wide => gather_word_wide(&self.bits, lane),
        }
    }

    /// True iff `other` tests the same dimension with the same pass mask —
    /// the dedup key of the cross-query shared-mask program.
    fn same_mask(&self, other: &Filter) -> bool {
        self.dim == other.dim && self.pass == other.pass && self.bits == other.bits
    }
}

/// The cross-query mask-sharing program of one fused scan: concurrent
/// dashboards overlap heavily (the same year range or region predicate
/// appears in many queries of a batch), so any filter whose `(dimension,
/// pass mask)` is used by ≥ 2 fused queries is gathered **once per chunk**
/// into a shared mask cache and ANDed word-wise into each user's mask —
/// turning `N` identical gather passes into one pass plus `N` register
/// ANDs. Query-private filters keep the per-query gather with its
/// `*word == 0` early exit. Pure AND reordering: the resulting mask is
/// bit-identical for any sharing split.
#[derive(Debug)]
struct MaskProgram<'p> {
    /// Distinct filters promoted to the shared cache, first-use order.
    shared: Vec<&'p Filter>,
    /// Direct promotion uses of each shared slot (excludes the extra
    /// via-cache references added by subsumption refinement, which save
    /// nothing — the subsumed filter still runs its private gather).
    shared_uses: Vec<usize>,
    /// Per query: indices into `shared`, plus the query-private filters
    /// (in the query's selectivity order).
    per_query: Vec<(Vec<usize>, Vec<&'p Filter>)>,
}

/// Orders filters by estimated selectivity — ascending pass fraction,
/// ties broken by dimension index — so the most selective mask is ANDed
/// first and the `*word == 0` early exit in later filters fires as early
/// as possible. With the cost model the fraction is the *fact-weighted*
/// sampled estimate (a better early-exit signal than the dimension-row
/// popcount ratio: a mask passing few dimension rows can still admit most
/// fact rows under a skewed fk distribution); without it, the exact
/// cross-multiplied `popcount / dimension rows` compare. Pure reordering
/// of a bitwise AND conjunction: the resulting mask is identical for any
/// order.
fn selectivity_order(filters: &mut [Filter]) {
    filters.sort_by(|a, b| {
        match (a.est, b.est) {
            (Some(ea), Some(eb)) => {
                ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal).then(a.dim.cmp(&b.dim))
            }
            _ => {
                // Cross-multiplied fraction compare (exact, no floats).
                let lhs = a.pass as u128 * b.bits.len() as u128;
                let rhs = b.pass as u128 * a.bits.len() as u128;
                lhs.cmp(&rhs).then(a.dim.cmp(&b.dim))
            }
        }
    });
}

/// One compiled query inside a plan: packed binary filters, weighted axes,
/// row-weight accessor, and the group program.
#[derive(Debug, Clone)]
struct PlannedQuery<'a> {
    /// Binary filters, ordered by estimated selectivity (most selective
    /// first — see [`selectivity_order`]).
    filters: Vec<Filter>,
    /// Weighted axes in first-appearance order (the multiply order of the
    /// fallback row loop).
    weights: Vec<WeightAxis<'a>>,
    row_weight: RowWeight<'a>,
    grouping: Option<GroupPlan<'a>>,
}

impl PlannedQuery<'_> {
    /// True iff the chunk kernel can answer this query with popcounts alone.
    fn is_pure_count(&self) -> bool {
        self.weights.is_empty() && self.row_weight.is_ones() && self.grouping.is_none()
    }

    /// True iff the query is answerable from a joint code histogram: pure
    /// weighted, scalar, no binary filters.
    fn is_hist_eligible(&self) -> bool {
        !self.weights.is_empty() && self.filters.is_empty() && self.grouping.is_none()
    }
}

/// The shared histogram program of a batch's hist-eligible weighted
/// queries: the ordered union of their weighted axes, the flattened joint
/// code space, and the deduplicated aggregate kinds.
#[derive(Debug)]
struct HistPlan<'a> {
    /// Ordered union of (dim, codes, domain) axes; identity is the codes
    /// slice address (one column → one axis).
    axes: Vec<(usize, &'a [u32], usize)>,
    space: usize,
    /// Deduplicated row-weight kinds; one histogram each.
    kinds: Vec<RowWeight<'a>>,
    /// For each plan query: `Some(kind index)` iff answered via histogram.
    assignment: Vec<Option<usize>>,
}

impl<'a> HistPlan<'a> {
    /// Builds the histogram program, or `None` when no query qualifies.
    /// Greedy per query: a query whose axes would push the joint code space
    /// past [`DENSE_GROUP_CAP`] is left to the row-loop fallback without
    /// disabling the fast path for queries that fit.
    fn build(queries: &[PlannedQuery<'a>]) -> Option<Self> {
        let mut axes: Vec<(usize, &[u32], usize)> = Vec::new();
        let mut kinds: Vec<RowWeight> = Vec::new();
        let mut assignment: Vec<Option<usize>> = vec![None; queries.len()];
        let mut space = 1usize;
        let mut any = false;
        'queries: for (qi, q) in queries.iter().enumerate() {
            if !q.is_hist_eligible() {
                continue;
            }
            // Tentatively admit the query's new axes; roll back if its
            // footprint overflows the cap.
            let mut new_axes: Vec<(usize, &'a [u32], usize)> = Vec::new();
            let mut new_space = space;
            for axis in &q.weights {
                let id = axis.codes.as_ptr();
                let known = axes.iter().chain(&new_axes).any(|(_, c, _)| c.as_ptr() == id);
                if !known {
                    new_space = match new_space.checked_mul(axis.domain) {
                        Some(p) if p <= DENSE_GROUP_CAP => p,
                        _ => continue 'queries, // fallback row loop for this query
                    };
                    new_axes.push((axis.dim, axis.codes, axis.domain));
                }
            }
            axes.extend(new_axes);
            space = new_space;
            let key = q.row_weight.key();
            let kind = match kinds.iter().position(|k| k.key() == key) {
                Some(i) => i,
                None => {
                    kinds.push(q.row_weight);
                    kinds.len() - 1
                }
            };
            assignment[qi] = Some(kind);
            any = true;
        }
        any.then_some(HistPlan { axes, space, kinds, assignment })
    }

    /// The flat joint code of a fact row.
    #[inline]
    fn flat_index(&self, fks: &[&[u32]], row: usize) -> usize {
        let mut flat = 0usize;
        for (dim, codes, domain) in &self.axes {
            flat = flat * domain + codes[fks[*dim][row] as usize] as usize;
        }
        flat
    }

    /// The query's flattened weight tensor `Φ_q` over the joint code space:
    /// the outer product of its axis weight vectors, axes it does not
    /// constrain contributing factor 1.
    fn weight_tensor(&self, q: &PlannedQuery) -> Vec<f64> {
        let mut tensor = vec![1.0f64];
        for (_, codes, domain) in &self.axes {
            let axis_weights =
                q.weights.iter().find(|a| std::ptr::eq(a.codes, *codes)).map(|a| &a.weights);
            let mut next = Vec::with_capacity(tensor.len() * domain);
            for &t in &tensor {
                match axis_weights {
                    Some(w) => next.extend(w.iter().map(|&wc| t * wc)),
                    None => next.extend(std::iter::repeat_n(t, *domain)),
                }
            }
            tensor = next;
        }
        tensor
    }
}

/// Per-query partial accumulator (also the per-shard partial in parallel
/// scans). `Hist` queries accumulate into the shared histograms instead.
#[derive(Debug)]
enum Acc {
    Scalar(f64),
    Dense {
        sums: Vec<f64>,
        touched: BitSet,
    },
    Sparse(BTreeMap<Vec<u32>, f64>),
    /// Answered from the shared histogram at finalization.
    Hist,
}

impl Acc {
    fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::Scalar(a), Acc::Scalar(b)) => *a += b,
            (Acc::Dense { sums, touched }, Acc::Dense { sums: bs, touched: bt }) => {
                for i in bt.iter_ones() {
                    sums[i] += bs[i];
                    touched.set(i, true);
                }
            }
            (Acc::Sparse(a), Acc::Sparse(b)) => {
                for (k, v) in b {
                    *a.entry(k).or_insert(0.0) += v;
                }
            }
            (Acc::Hist, Acc::Hist) => {}
            _ => unreachable!("shard accumulators share one shape per query"),
        }
    }
}

/// All mutable state of one scan pass (one per shard in parallel mode).
#[derive(Debug)]
struct ScanState {
    accs: Vec<Acc>,
    /// One histogram per aggregate kind of the [`HistPlan`].
    hists: Vec<Vec<f64>>,
}

impl ScanState {
    fn merge(&mut self, other: ScanState) {
        for (acc, partial) in self.accs.iter_mut().zip(other.accs) {
            acc.merge(partial);
        }
        for (hist, partial) in self.hists.iter_mut().zip(other.hists) {
            for (slot, v) in hist.iter_mut().zip(partial) {
                *slot += v;
            }
        }
    }
}

/// A compiled, executable scan over one schema: resolved foreign-key
/// arrays plus any number of compiled queries, answered together in a
/// single fused fact scan by [`ScanPlan::execute`].
#[derive(Debug, Clone)]
pub struct ScanPlan<'a> {
    schema: &'a StarSchema,
    /// Per-dimension fact foreign-key arrays, resolved once.
    fks: Vec<&'a [u32]>,
    fact_rows: usize,
    queries: Vec<PlannedQuery<'a>>,
    /// The options the plan was compiled under (probe caps, staging and
    /// sharing thresholds). [`ScanPlan::new`] uses the static defaults
    /// with the cost model off.
    opts: ScanOptions,
    /// The sampling cost model steering plan-shape decisions, when
    /// enabled. `None` → the static heuristics (exact pass counts,
    /// blanket ≥ 2-uses sharing and staging).
    model: Option<Arc<CostModel>>,
}

impl<'a> ScanPlan<'a> {
    /// An empty plan over `schema` with the static plan heuristics
    /// (resolves the foreign-key arrays; no cost model).
    pub fn new(schema: &'a StarSchema) -> Result<Self, EngineError> {
        ScanPlan::with_options(schema, ScanOptions::default().with_cost_samples(0))
    }

    /// An empty plan compiled under explicit options. When
    /// `options.cost_samples > 0` the per-schema sampling cost model is
    /// resolved from the process-wide registry (built on first use, cached
    /// until [`crate::cost::invalidate_cost_model`]) and steers filter
    /// ordering, mask-sharing promotion, subsumption refinement, and fk
    /// staging. Every model-driven choice is plan-shape-only: answers and
    /// ledgers are bit-identical to [`ScanPlan::new`] by construction.
    pub fn with_options(schema: &'a StarSchema, options: ScanOptions) -> Result<Self, EngineError> {
        let fks: Vec<&[u32]> =
            schema.dims().iter().map(|d| schema.fact().key(&d.fk)).collect::<Result<_, _>>()?;
        let model = if options.cost_samples > 0 {
            Some(cost_model_for(
                schema,
                &CostConfig { sample_size: options.cost_samples, ..CostConfig::default() },
            )?)
        } else {
            None
        };
        Ok(ScanPlan {
            schema,
            fact_rows: schema.fact().num_rows(),
            fks,
            queries: Vec::new(),
            opts: options,
            model,
        })
    }

    /// Replaces the plan's cost model — the adversarial-estimate test hook
    /// (see `tests/prop_cost_model.rs`). Call before `add_query`: filters
    /// compiled earlier keep their old estimates.
    #[doc(hidden)]
    pub fn set_cost_model(&mut self, model: Option<Arc<CostModel>>) {
        self.model = model;
    }

    /// Compiles a binary-predicate star query into the plan.
    pub fn add_query(&mut self, query: &StarQuery) -> Result<(), EngineError> {
        let bitsets = dimension_bitsets(self.schema, &query.predicates)?;
        let (word_cap, byte_cap) = (self.opts.word_probe_cap, self.opts.byte_probe_cap);
        let model = self.model.as_deref();
        let mut filters: Vec<Filter> = bitsets
            .into_iter()
            .enumerate()
            .filter_map(|(di, b)| Some(Filter::build(di, b?, word_cap, byte_cap, model)))
            .collect();
        selectivity_order(&mut filters);
        let grouping = if query.group_by.is_empty() {
            None
        } else {
            Some(GroupPlan::resolve(self.schema, &query.group_by)?)
        };
        self.queries.push(PlannedQuery {
            filters,
            weights: Vec::new(),
            row_weight: RowWeight::resolve(self.schema, &query.agg)?,
            grouping,
        });
        Ok(())
    }

    /// Compiles a weighted query (real-valued predicates, scalar result)
    /// into the plan. Predicates on the same `(table, attr)` multiply into
    /// one axis.
    pub fn add_weighted(
        &mut self,
        predicates: &[WeightedPredicate],
        agg: &Agg,
    ) -> Result<(), EngineError> {
        let mut weights: Vec<WeightAxis<'a>> = Vec::new();
        for wp in predicates {
            let di = self.schema.dim_index(&wp.table)?;
            let dim = &self.schema.dims()[di];
            let codes = dim.table.codes(&wp.attr)?;
            let domain = dim.table.domain(&wp.attr)?;
            if wp.weights.len() != domain.size() as usize {
                return Err(EngineError::WeightLengthMismatch {
                    attr: wp.attr.clone(),
                    got: wp.weights.len(),
                    expected: domain.size(),
                });
            }
            match weights.iter_mut().find(|a| std::ptr::eq(a.codes, codes)) {
                Some(axis) => {
                    for (slot, w) in axis.weights.iter_mut().zip(&wp.weights) {
                        *slot *= w;
                    }
                }
                None => weights.push(WeightAxis {
                    dim: di,
                    codes,
                    domain: domain.size() as usize,
                    weights: wp.weights.clone(),
                }),
            }
        }
        // Ascending dimension order, stable within a dimension — the
        // reference executor's per-dimension multiply order.
        weights.sort_by_key(|a| a.dim);
        self.queries.push(PlannedQuery {
            filters: Vec::new(),
            weights,
            row_weight: RowWeight::resolve(self.schema, agg)?,
            grouping: None,
        });
        Ok(())
    }

    /// Number of compiled queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Describes the plan the kernel would execute, without executing it:
    /// per-query filter order with probe classes and (when the cost model
    /// is on) sampled pass-fraction estimates with confidence intervals,
    /// the cross-query mask-sharing program, and the per-dimension fk
    /// staging decisions. Everything reported is derived from the same
    /// structures [`ScanPlan::execute`] runs, so EXPLAIN output cannot
    /// drift from the executed plan shape.
    pub fn describe(&self) -> PlanExplain {
        let hist_plan = HistPlan::build(&self.queries);
        let program = self.mask_program(hist_plan.as_ref());
        let staged = self.staged_dims(hist_plan.as_ref(), &program);
        let model = self.model.as_deref();
        let dims = self
            .schema
            .dims()
            .iter()
            .enumerate()
            .map(|(di, d)| DimExplain {
                table: d.table.name().to_string(),
                rows: d.table.num_rows(),
                staged: staged.get(di).copied().unwrap_or(false),
                residency: model.map(|m| m.residency(di)),
            })
            .collect();
        let queries = self
            .queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let histogram = hist_plan
                    .as_ref()
                    .is_some_and(|hp| hp.assignment.get(qi).is_some_and(Option::is_some));
                let filters = q
                    .filters
                    .iter()
                    .map(|f| {
                        let sharing = if program.shared.iter().any(|s| s.same_mask(f)) {
                            "shared"
                        } else if model.is_some()
                            && program.shared.iter().any(|y| {
                                y.dim == f.dim && !y.same_mask(f) && f.bits.is_subset(&y.bits)
                            })
                        {
                            "private_subsumed"
                        } else {
                            "private"
                        };
                        let estimate = model.map(|m| m.pass_fraction(f.dim, &f.bits));
                        FilterExplain {
                            table: self.schema.dims()[f.dim].table.name().to_string(),
                            probe: match f.probe {
                                Probe::Word(_) => "word",
                                Probe::Bytes(_) => "bytes",
                                Probe::Wide => "bitset",
                            },
                            estimated_fraction: Self::est_fraction(f),
                            ci: estimate.as_ref().map(|e| e.ci),
                            samples: estimate.as_ref().map(|e| e.samples),
                            sharing,
                        }
                    })
                    .collect();
                QueryExplain { filters, histogram, weighted_axes: q.weights.len() }
            })
            .collect();
        PlanExplain {
            fact_rows: self.fact_rows,
            shared_masks: program.shared.len(),
            cost_model: model
                .map(|m| CostModelExplain { exact: m.is_exact(), sampled_rows: m.sampled_rows() }),
            dims,
            queries,
        }
    }

    /// Executes every compiled query in **one** scan of the fact table,
    /// returning results in compile order. With `options.threads > 1` the
    /// scan shards across that many scoped threads; partials merge in shard
    /// order, so results are deterministic for a fixed thread count.
    pub fn execute(&self, options: ScanOptions) -> Vec<QueryResult> {
        let hist_plan = HistPlan::build(&self.queries);
        let program = self.mask_program(hist_plan.as_ref());
        let mut state = self.fresh_state(hist_plan.as_ref());
        let bounds = shard_bounds(self.fact_rows, options.threads);
        let legacy = options.legacy_gather;
        let program = &program;
        let scan = |shard: &mut ScanState, hp: Option<&HistPlan>, lo: usize, hi: usize| {
            if legacy {
                self.scan_range_legacy(shard, hp, lo, hi);
            } else {
                self.scan_range(shard, hp, program, lo, hi);
            }
        };
        if bounds.len() == 1 {
            scan(&mut state, hist_plan.as_ref(), 0, self.fact_rows);
        } else {
            let hp = hist_plan.as_ref();
            let scan = &scan;
            let partials: Vec<ScanState> = std::thread::scope(|scope| {
                let handles: Vec<_> = bounds
                    .iter()
                    .map(|&(lo, hi)| {
                        scope.spawn(move || {
                            let mut shard = self.fresh_state(hp);
                            scan(&mut shard, hp, lo, hi);
                            shard
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("scan shard panicked")).collect()
            });
            for partial in partials {
                state.merge(partial);
            }
        }
        FACT_SCANS.fetch_add(1, Ordering::Relaxed);
        self.flush_kernel_counters(&bounds, hist_plan.as_ref(), program, legacy);
        self.finalize(state, hist_plan.as_ref())
    }

    /// Flushes the scan's kernel profiling tallies to the process-wide
    /// [`kernel_counters`]. Everything is derived once from the plan
    /// geometry — chunk count from the shard bounds, gather counts from
    /// the mask program and staging decision — so the chunk loop itself
    /// carries zero instrumentation.
    fn flush_kernel_counters(
        &self,
        bounds: &[(usize, usize)],
        hist_plan: Option<&HistPlan>,
        program: &MaskProgram,
        legacy: bool,
    ) {
        let k = kernel_counters();
        let chunks: u64 =
            bounds.iter().map(|&(lo, hi)| (hi - lo).div_ceil(CHUNK_ROWS) as u64).sum();
        KernelCounters::add(&k.chunks_scanned, chunks);
        if legacy {
            // The pre-staging kernel re-gathers every filter of every
            // mask-building query per chunk, straight from the fk arrays.
            let gathers: u64 = self
                .queries
                .iter()
                .enumerate()
                .filter(|(qi, _)| hist_plan.is_none_or(|hp| hp.assignment[*qi].is_none()))
                .map(|(_, q)| q.filters.len() as u64)
                .sum();
            KernelCounters::add(&k.direct_gathers, gathers * chunks);
            return;
        }
        let staged = self.staged_dims(hist_plan, program);
        KernelCounters::add(
            &k.staged_chunk_copies,
            staged.iter().filter(|&&s| s).count() as u64 * chunks,
        );
        let mut staged_gathers = 0u64;
        let mut direct_gathers = 0u64;
        let mut tally = |dim: usize| {
            if staged[dim] {
                staged_gathers += 1;
            } else {
                direct_gathers += 1;
            }
        };
        for f in &program.shared {
            tally(f.dim);
        }
        for (_, private) in &program.per_query {
            for f in private {
                tally(f.dim);
            }
        }
        if let Some(hp) = hist_plan {
            for (di, _, _) in &hp.axes {
                tally(*di);
            }
        }
        KernelCounters::add(&k.staged_gathers, staged_gathers * chunks);
        KernelCounters::add(&k.direct_gathers, direct_gathers * chunks);
        KernelCounters::add(&k.shared_mask_filters, program.shared.len() as u64);
        // A promotion with `u` direct users saves `u − 1` gather passes per
        // chunk (subsumption-added cache references save nothing — the
        // subsumed filter still runs its private gather).
        let saved: u64 = program.shared_uses.iter().map(|&u| (u as u64).saturating_sub(1)).sum();
        KernelCounters::add(&k.shared_mask_gathers_saved, saved * chunks);
    }

    /// Estimated pass fraction of a filter (model estimate when present,
    /// exact dimension-row ratio otherwise) — the probability signal behind
    /// savings-driven promotion.
    fn est_fraction(f: &Filter) -> f64 {
        f.est.unwrap_or(f.pass as f64 / f.bits.len().max(1) as f64)
    }

    /// Expected private-gather cost of the filter at position `pos` of a
    /// query's selectivity-ordered filter list, as a fraction of one full
    /// gather pass: each 64-row mask word survives the earlier filters'
    /// `*word == 0` early exit with probability `1 − (1 − p)^64` where `p`
    /// is the product of the earlier filters' pass fractions.
    fn private_gather_cost(filters: &[Filter], pos: usize) -> f64 {
        let prefix: f64 = filters[..pos].iter().map(Self::est_fraction).product();
        1.0 - (1.0 - prefix.clamp(0.0, 1.0)).powi(64)
    }

    /// Builds the cross-query mask-sharing program. Without the cost model,
    /// filters whose `(dimension, pass mask)` recurs across ≥
    /// `share_min_uses` mask-building queries are promoted to the shared
    /// gather list (the legacy blanket rule). With the model, promotion is
    /// savings-driven: a recurring filter is promoted only when the summed
    /// expected cost of its private per-query gathers (each discounted by
    /// the early-exit survival of the filters ordered before it) exceeds
    /// the one full shared gather pass the cache costs — ultra-selective
    /// predecessors make re-gathers nearly free, so such filters stay
    /// private. The model also enables subsumption refinement: a private
    /// filter whose mask is a subset of a promoted same-dimension mask has
    /// the subsumer's cached mask ANDed in first (exact — `X ⊆ Y` implies
    /// `X = X ∧ Y`), so its private gather early-exits on every word the
    /// wider shared mask already killed.
    fn mask_program(&self, hist_plan: Option<&HistPlan>) -> MaskProgram<'_> {
        let active: Vec<bool> = (0..self.queries.len())
            .map(|qi| hist_plan.is_none_or(|hp| hp.assignment[qi].is_none()))
            .collect();
        // Distinct filters with their total use counts across the batch.
        let mut distinct: Vec<(&Filter, usize)> = Vec::new();
        for (qi, q) in self.queries.iter().enumerate() {
            if !active[qi] {
                continue;
            }
            for f in &q.filters {
                match distinct.iter_mut().find(|(g, _)| g.same_mask(f)) {
                    Some((_, uses)) => *uses += 1,
                    None => distinct.push((f, 1)),
                }
            }
        }
        let min_uses = self.opts.share_min_uses.max(2);
        let mut shared: Vec<&Filter> = Vec::new();
        let mut shared_uses: Vec<usize> = Vec::new();
        let shared_slot: Vec<Option<usize>> = distinct
            .iter()
            .map(|&(f, uses)| {
                if uses < min_uses {
                    return None;
                }
                if self.model.is_some() {
                    // Σ over using queries of the expected private-gather
                    // cost; the shared cache costs one full gather pass.
                    let saved: f64 = self
                        .queries
                        .iter()
                        .enumerate()
                        .filter(|&(qi, _)| active[qi])
                        .filter_map(|(_, q)| {
                            let pos = q.filters.iter().position(|g| g.same_mask(f))?;
                            Some(Self::private_gather_cost(&q.filters, pos))
                        })
                        .sum();
                    if saved <= 1.0 {
                        return None;
                    }
                }
                shared.push(f);
                shared_uses.push(uses);
                Some(shared.len() - 1)
            })
            .collect();
        let c = cost_counters();
        let per_query = self
            .queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                let mut via_cache = Vec::new();
                let mut private = Vec::new();
                if active[qi] {
                    for f in &q.filters {
                        let di = distinct
                            .iter()
                            .position(|(g, _)| g.same_mask(f))
                            .expect("every active filter was counted");
                        match shared_slot[di] {
                            Some(si) => via_cache.push(si),
                            None => {
                                if self.model.is_some() {
                                    // Subsumption refinement (see above).
                                    let subsumer = shared.iter().position(|y| {
                                        y.dim == f.dim
                                            && !y.same_mask(f)
                                            && f.bits.is_subset(&y.bits)
                                    });
                                    if let Some(si) = subsumer {
                                        if !via_cache.contains(&si) {
                                            via_cache.push(si);
                                            CostCounters::add(&c.subsumption_merges, 1);
                                        }
                                    }
                                }
                                private.push(f);
                            }
                        }
                    }
                }
                (via_cache, private)
            })
            .collect();
        MaskProgram { shared, shared_uses, per_query }
    }

    /// Which dimensions the staged kernel should copy per chunk. Without
    /// the cost model, a dimension is staged iff ≥ `stage_min_uses`
    /// (floored at 2) mask gathers (shared-mask gathers, query-private
    /// filter gathers, histogram axes) read it per chunk — a single reader
    /// is served straight from the source array, since staging it would be
    /// a pure copy tax. With the model, [`CostModel::should_stage`]
    /// additionally demotes dimensions whose sampled distinct-codes-per-
    /// chunk is small enough that their fk reads stay cache-resident
    /// without a staging copy.
    fn staged_dims(&self, hist_plan: Option<&HistPlan>, program: &MaskProgram) -> Vec<bool> {
        let mut uses = vec![0usize; self.fks.len()];
        for f in &program.shared {
            uses[f.dim] += 1;
        }
        for (_, private) in &program.per_query {
            for f in private {
                uses[f.dim] += 1;
            }
        }
        if let Some(hp) = hist_plan {
            for (di, _, _) in &hp.axes {
                uses[*di] += 1;
            }
        }
        let min_uses = self.opts.stage_min_uses;
        uses.into_iter()
            .enumerate()
            .map(|(di, u)| match &self.model {
                Some(m) => m.should_stage(di, u, min_uses),
                None => u >= min_uses.max(2),
            })
            .collect()
    }

    fn fresh_state(&self, hist_plan: Option<&HistPlan>) -> ScanState {
        let accs = self
            .queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                if hist_plan.is_some_and(|hp| hp.assignment[qi].is_some()) {
                    return Acc::Hist;
                }
                match &q.grouping {
                    None => Acc::Scalar(0.0),
                    Some(g) => match g.dense_space {
                        Some(space) => {
                            Acc::Dense { sums: vec![0.0; space], touched: BitSet::zeros(space) }
                        }
                        None => Acc::Sparse(BTreeMap::new()),
                    },
                }
            })
            .collect();
        let hists = hist_plan
            .map(|hp| hp.kinds.iter().map(|_| vec![0.0; hp.space]).collect())
            .unwrap_or_default();
        ScanState { accs, hists }
    }

    fn finalize(&self, state: ScanState, hist_plan: Option<&HistPlan>) -> Vec<QueryResult> {
        self.queries
            .iter()
            .enumerate()
            .zip(state.accs)
            .map(|((qi, q), acc)| match acc {
                Acc::Scalar(v) => QueryResult::Scalar(v),
                Acc::Sparse(m) => QueryResult::Groups(m),
                Acc::Dense { sums, touched } => {
                    let plan = q.grouping.as_ref().expect("dense acc implies grouping");
                    QueryResult::Groups(
                        touched.iter_ones().map(|flat| (plan.decode(flat), sums[flat])).collect(),
                    )
                }
                Acc::Hist => {
                    let hp = hist_plan.expect("hist acc implies hist plan");
                    let kind = hp.assignment[qi].expect("hist acc implies assignment");
                    let tensor = hp.weight_tensor(q);
                    let hist = &state.hists[kind];
                    // Φ_q · W, in ascending flat-code order.
                    let dot: f64 = tensor.iter().zip(hist).map(|(p, w)| p * w).sum();
                    QueryResult::Scalar(dot)
                }
            })
            .collect()
    }

    /// Scans fact rows `[lo, hi)` accumulating every query — the staged
    /// SIMD-width chunk kernel. Per chunk: referenced dimensions' fk codes
    /// are staged once and shared by every query's mask gather; filters
    /// recurring across queries are gathered once into the shared mask
    /// cache; the histogram plan's flat codes are staged once and drained
    /// per kind.
    fn scan_range(
        &self,
        state: &mut ScanState,
        hist_plan: Option<&HistPlan>,
        program: &MaskProgram,
        lo: usize,
        hi: usize,
    ) {
        let mut mask = [0u64; CHUNK_WORDS];
        let mut cache = vec![0u64; program.shared.len() * CHUNK_WORDS];
        let mut stage = ChunkStage::new(self.staged_dims(hist_plan, program));
        let mut chunk_start = lo;
        while chunk_start < hi {
            let chunk_end = (chunk_start + CHUNK_ROWS).min(hi);
            let len = chunk_end - chunk_start;
            let words = len.div_ceil(64);
            stage.begin(&self.fks, chunk_start, len);
            // Gather each shared filter once for this chunk.
            for (fi, f) in program.shared.iter().enumerate() {
                let fk = stage.dim(&self.fks, f.dim);
                for (wi, word) in cache[fi * CHUNK_WORDS..][..words].iter_mut().enumerate() {
                    let base = wi << 6;
                    let upper = (base + 64).min(len);
                    *word = f.gather_word(&fk[base..upper]);
                }
            }
            for ((q, acc), masks) in
                self.queries.iter().zip(state.accs.iter_mut()).zip(&program.per_query)
            {
                match acc {
                    Acc::Hist => {} // accumulated via the shared histograms
                    Acc::Scalar(total) if q.filters.is_empty() && q.is_pure_count() => {
                        // Unfiltered pure COUNT: every chunk row qualifies —
                        // skip the mask build and popcount outright.
                        *total += len as f64;
                    }
                    acc if q.weights.is_empty() => {
                        self.chunk_mask(masks, &cache, &stage, &mut mask[..words]);
                        self.drain_binary(q, acc, chunk_start, &mask[..words]);
                    }
                    acc => self.scan_weighted_chunk(
                        q,
                        masks,
                        &cache,
                        acc,
                        &stage,
                        chunk_start,
                        &mut mask[..words],
                    ),
                }
            }
            if let Some(hp) = hist_plan {
                // Stage the joint flat codes once; every kind drains flat.
                let flat = stage.stage_flat(&self.fks, &hp.axes);
                for (kind, hist) in hp.kinds.iter().zip(state.hists.iter_mut()) {
                    drain_hist(hist, flat, kind, chunk_start);
                }
            }
            chunk_start = chunk_end;
        }
    }

    /// The pre-staging chunk kernel, preserved verbatim for
    /// [`ScanOptions::legacy_gather`] A/B runs: per-query fk re-reads,
    /// packed-bitset probes, per-row histogram flat codes.
    fn scan_range_legacy(
        &self,
        state: &mut ScanState,
        hist_plan: Option<&HistPlan>,
        lo: usize,
        hi: usize,
    ) {
        let mut mask = [0u64; CHUNK_WORDS];
        let mut chunk_start = lo;
        while chunk_start < hi {
            let chunk_end = (chunk_start + CHUNK_ROWS).min(hi);
            let len = chunk_end - chunk_start;
            let words = len.div_ceil(64);
            for (q, acc) in self.queries.iter().zip(state.accs.iter_mut()) {
                match acc {
                    Acc::Hist => {} // accumulated via the shared histograms
                    acc if q.weights.is_empty() => {
                        self.chunk_mask_legacy(q, chunk_start, len, &mut mask[..words]);
                        self.drain_binary(q, acc, chunk_start, &mask[..words]);
                    }
                    acc => self.scan_weighted_rows(q, acc, chunk_start, chunk_end),
                }
            }
            if let Some(hp) = hist_plan {
                // One flat-code computation per row feeds every histogram.
                for row in chunk_start..chunk_end {
                    let flat = hp.flat_index(&self.fks, row);
                    for (kind, hist) in hp.kinds.iter().zip(state.hists.iter_mut()) {
                        hist[flat] += kind.at(row);
                    }
                }
            }
            chunk_start = chunk_end;
        }
    }

    /// Builds the chunk's qualifying-row mask for one binary query:
    /// all-ones, then (1) word-wise ANDs of the query's shared cached
    /// masks, then (2) gather + AND per query-private filter (most
    /// selective first, probe fast paths over the staged fk codes, with
    /// the `*word == 0` early exit).
    fn chunk_mask(
        &self,
        masks: &(Vec<usize>, Vec<&Filter>),
        cache: &[u64],
        stage: &ChunkStage,
        mask: &mut [u64],
    ) {
        let len = stage.len();
        mask.fill(u64::MAX);
        let tail = len & 63;
        if tail != 0 {
            mask[len >> 6] = (1u64 << tail) - 1;
        }
        let (via_cache, private) = masks;
        for &fi in via_cache {
            let cached = &cache[fi * CHUNK_WORDS..][..mask.len()];
            for (word, &c) in mask.iter_mut().zip(cached) {
                *word &= c;
            }
        }
        for f in private {
            let fk = stage.dim(&self.fks, f.dim);
            for (wi, word) in mask.iter_mut().enumerate() {
                if *word == 0 {
                    continue;
                }
                let base = wi << 6;
                let upper = (base + 64).min(len);
                *word &= f.gather_word(&fk[base..upper]);
            }
        }
    }

    /// The pre-staging mask builder ([`ScanOptions::legacy_gather`]):
    /// re-reads the source fk array and probes the packed bitset scalar-wise.
    fn chunk_mask_legacy(
        &self,
        q: &PlannedQuery,
        chunk_start: usize,
        len: usize,
        mask: &mut [u64],
    ) {
        mask.fill(u64::MAX);
        let tail = len & 63;
        if tail != 0 {
            mask[len >> 6] = (1u64 << tail) - 1;
        }
        for f in &q.filters {
            let fk = &self.fks[f.dim][chunk_start..chunk_start + len];
            for (wi, word) in mask.iter_mut().enumerate() {
                if *word == 0 {
                    continue;
                }
                let base = wi << 6;
                let upper = (base + 64).min(len);
                let mut gathered = 0u64;
                for (bit, &k) in fk[base..upper].iter().enumerate() {
                    gathered |= f.bits.get_bit(k as usize) << bit;
                }
                *word &= gathered;
            }
        }
    }

    /// Drains a chunk mask into the query's accumulator.
    fn drain_binary(&self, q: &PlannedQuery, acc: &mut Acc, chunk_start: usize, mask: &[u64]) {
        if q.is_pure_count() {
            let hits: u64 = mask.iter().map(|w| u64::from(w.count_ones())).sum();
            if let Acc::Scalar(total) = acc {
                *total += hits as f64;
            }
            return;
        }
        for (wi, &word) in mask.iter().enumerate() {
            let mut w = word;
            let base = chunk_start + (wi << 6);
            while w != 0 {
                let row = base + w.trailing_zeros() as usize;
                w &= w - 1;
                let value = q.row_weight.at(row);
                match (&mut *acc, &q.grouping) {
                    (Acc::Scalar(total), _) => *total += value,
                    (Acc::Dense { sums, touched }, Some(g)) => {
                        let flat = g.flat_index(&self.fks, row);
                        sums[flat] += value;
                        touched.set(flat, true);
                    }
                    (Acc::Sparse(map), Some(g)) => {
                        *map.entry(g.key(&self.fks, row)).or_insert(0.0) += value;
                    }
                    _ => unreachable!("grouped accumulator without group plan"),
                }
            }
        }
    }

    /// Staged fallback for weighted queries that can't use the histogram
    /// (the joint code space is too large, or binary filters attached):
    /// any binary prefilter routes through the shared chunk mask (instead
    /// of a per-row `continue` chain), then qualifying rows multiply axis
    /// weights in dimension order with the same early-exit sequence as the
    /// reference executor. Mask iteration visits rows in ascending order,
    /// so accumulation order is unchanged.
    #[allow(clippy::too_many_arguments)]
    fn scan_weighted_chunk(
        &self,
        q: &PlannedQuery,
        masks: &(Vec<usize>, Vec<&Filter>),
        cache: &[u64],
        acc: &mut Acc,
        stage: &ChunkStage,
        chunk_start: usize,
        mask: &mut [u64],
    ) {
        let Acc::Scalar(total) = acc else {
            unreachable!("weighted queries are scalar");
        };
        // Exactly the reference accumulation step: skip zero row weights,
        // multiply axis weights in dimension order with early exit, add.
        let mut accumulate = |row: usize| {
            let mut w = q.row_weight.at(row);
            if w == 0.0 {
                return;
            }
            for axis in &q.weights {
                w *= axis.weights[axis.codes[self.fks[axis.dim][row] as usize] as usize];
                if w == 0.0 {
                    break;
                }
            }
            *total += w;
        };
        if q.filters.is_empty() {
            for row in chunk_start..chunk_start + stage.len() {
                accumulate(row);
            }
            return;
        }
        self.chunk_mask(masks, cache, stage, mask);
        for (wi, &word) in mask.iter().enumerate() {
            let mut w = word;
            let base = chunk_start + (wi << 6);
            while w != 0 {
                let row = base + w.trailing_zeros() as usize;
                w &= w - 1;
                accumulate(row);
            }
        }
    }

    /// The pre-staging weighted fallback ([`ScanOptions::legacy_gather`]):
    /// per-row binary prefilter via `continue`, then the same dimension-
    /// order weight multiply.
    fn scan_weighted_rows(&self, q: &PlannedQuery, acc: &mut Acc, lo: usize, hi: usize) {
        let Acc::Scalar(total) = acc else {
            unreachable!("weighted queries are scalar");
        };
        'rows: for row in lo..hi {
            for f in &q.filters {
                if !f.bits.get(self.fks[f.dim][row] as usize) {
                    continue 'rows;
                }
            }
            let mut w = q.row_weight.at(row);
            if w == 0.0 {
                continue;
            }
            for axis in &q.weights {
                w *= axis.weights[axis.codes[self.fks[axis.dim][row] as usize] as usize];
                if w == 0.0 {
                    break;
                }
            }
            *total += w;
        }
    }
}

/// Drains one chunk of staged flat codes into a histogram for one aggregate
/// kind: a flat, unrollable scatter-add loop with the kind's row-weight
/// match hoisted out of the row loop. Rows are visited in ascending order,
/// so accumulation is bit-identical to the per-row form.
fn drain_hist(hist: &mut [f64], flat: &[u32], kind: &RowWeight, chunk_start: usize) {
    match kind {
        RowWeight::Ones => {
            for &f in flat {
                hist[f as usize] += 1.0;
            }
        }
        RowWeight::Measure(m) => {
            let m = &m[chunk_start..chunk_start + flat.len()];
            for (&f, &v) in flat.iter().zip(m) {
                hist[f as usize] += v as f64;
            }
        }
        RowWeight::Diff(a, b) => {
            let a = &a[chunk_start..chunk_start + flat.len()];
            let b = &b[chunk_start..chunk_start + flat.len()];
            for ((&f, &x), &y) in flat.iter().zip(a).zip(b) {
                hist[f as usize] += (x - y) as f64;
            }
        }
    }
}

/// Chunk-aligned contiguous shard bounds for a parallel fact scan: one
/// shard per thread, but never more shards than chunks (a shard must cover
/// at least one chunk to be worth a thread). Used by both
/// [`ScanPlan::execute`] and [`WeightHistogram::build`] so a histogram
/// built standalone merges partials at exactly the same row boundaries as
/// the fused scan, keeping the two bit-identical.
fn shard_bounds(fact_rows: usize, threads: usize) -> Vec<(usize, usize)> {
    let shards = threads.max(1).min(fact_rows.div_ceil(CHUNK_ROWS)).max(1);
    if shards == 1 {
        return vec![(0, fact_rows)];
    }
    let chunks = fact_rows.div_ceil(CHUNK_ROWS);
    let chunks_per_shard = chunks.div_ceil(shards);
    (0..shards)
        .map(|s| {
            let lo = (s * chunks_per_shard * CHUNK_ROWS).min(fact_rows);
            let hi = ((s + 1) * chunks_per_shard * CHUNK_ROWS).min(fact_rows);
            (lo, hi)
        })
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// A reusable joint attribute-code histogram `W` — the build half of the
/// paper's `Q = Φ·W` factoring (Eq. 11), split out of the fused scan so a
/// service can build `W` once per (axis set, aggregate, data version) and
/// answer every later weighted query as a scan-free dot product.
///
/// Unlike the per-batch `HistPlan` (which borrows the schema), a
/// `WeightHistogram` is fully owned: it keeps the normalized axis list
/// (deduplicated, ascending dimension order — the same order
/// [`ScanPlan::add_weighted`] sorts a query's axes into), the joint code
/// space, the aggregate kind, and the `space`-length histogram itself.
/// [`WeightHistogram::answer`] reproduces `HistPlan`'s weight-tensor and
/// dot-product arithmetic operation-for-operation, so for any weighted
/// query over a subset of the axes it returns **bit-identical** `f64`s to
/// [`ScanPlan::execute`]'s histogram path on the same data.
#[derive(Debug, Clone)]
pub struct WeightHistogram {
    /// Normalized `(table, attr, domain)` axes, ascending dimension order.
    axes: Vec<(String, String, usize)>,
    space: usize,
    agg: Agg,
    hist: Vec<f64>,
}

/// Normalized weighted-axis names: deduplicated `(table, attr)` pairs in
/// ascending dimension order — the shape cache layers key on.
pub type AxisNames = Vec<(String, String)>;

/// Axes resolved against a schema: dimension index, pk-indexed codes,
/// domain size, and the owned names.
struct ResolvedAxis<'a> {
    dim: usize,
    codes: &'a [u32],
    domain: usize,
    table: String,
    attr: String,
}

fn resolve_axes<'a>(
    schema: &'a StarSchema,
    axes: &[(String, String)],
) -> Result<Vec<ResolvedAxis<'a>>, EngineError> {
    let mut resolved: Vec<ResolvedAxis<'a>> = Vec::with_capacity(axes.len());
    for (table, attr) in axes {
        let dim = schema.dim_index(table)?;
        let codes = schema.dims()[dim].table.codes(attr)?;
        let domain = schema.dims()[dim].table.domain(attr)?.size() as usize;
        // One column → one axis, exactly like `add_weighted`'s merge.
        if !resolved.iter().any(|a| std::ptr::eq(a.codes, codes)) {
            resolved.push(ResolvedAxis {
                dim,
                codes,
                domain,
                table: table.clone(),
                attr: attr.clone(),
            });
        }
    }
    // Stable sort: ascending dimension, first-appearance order within one.
    resolved.sort_by_key(|a| a.dim);
    Ok(resolved)
}

impl WeightHistogram {
    /// Normalizes an axis list against `schema` without scanning anything:
    /// returns the deduplicated `(table, attr)` names in ascending dimension
    /// order plus `Some(joint code space)` when it fits [`DENSE_GROUP_CAP`]
    /// (`None` means a histogram over these axes would be refused by
    /// [`WeightHistogram::build`], so callers should fall back to a fused
    /// scan). Cache layers key on this normalized form.
    pub fn plan_axes(
        schema: &StarSchema,
        axes: &[(String, String)],
    ) -> Result<(AxisNames, Option<usize>), EngineError> {
        let resolved = resolve_axes(schema, axes)?;
        let mut space = Some(1usize);
        for a in &resolved {
            space = space.and_then(|s| s.checked_mul(a.domain)).filter(|&s| s <= DENSE_GROUP_CAP);
        }
        Ok((resolved.into_iter().map(|a| (a.table, a.attr)).collect(), space))
    }

    /// Builds the histogram in **one** scan of the fact table (counted in
    /// [`fact_scan_count`]): `hist[flat(row)] += agg(row)` over every fact
    /// row, sharded across `options.threads` with the same shard bounds and
    /// shard-order merge as [`ScanPlan::execute`]. Errors if the joint code
    /// space exceeds [`DENSE_GROUP_CAP`] or the axis list is empty.
    pub fn build(
        schema: &StarSchema,
        axes: &[(String, String)],
        agg: &Agg,
        options: ScanOptions,
    ) -> Result<Self, EngineError> {
        let resolved = resolve_axes(schema, axes)?;
        if resolved.is_empty() {
            return Err(EngineError::InvalidConstraint(
                "a weight histogram needs at least one axis".into(),
            ));
        }
        let mut space = 1usize;
        for a in &resolved {
            space =
                space.checked_mul(a.domain).filter(|&s| s <= DENSE_GROUP_CAP).ok_or_else(|| {
                    EngineError::InvalidConstraint(format!(
                        "joint code space of {} axes exceeds the dense cap {DENSE_GROUP_CAP}",
                        resolved.len()
                    ))
                })?;
        }
        let kind = RowWeight::resolve(schema, agg)?;
        let fks: Vec<&[u32]> = resolved
            .iter()
            .map(|a| schema.fact().key(&schema.dims()[a.dim].fk))
            .collect::<Result<_, _>>()?;
        let fact_rows = schema.fact().num_rows();

        // Same staged interior as the fused scan's histogram path: flat
        // codes staged axis-major once per 4096-row chunk, then one flat
        // drain per chunk. Row order is unchanged (ascending within the
        // shard), so histograms stay bit-identical to the per-row form.
        let scan = |lo: usize, hi: usize| -> Vec<f64> {
            let mut hist = vec![0.0f64; space];
            let mut flat: Vec<u32> = Vec::with_capacity(CHUNK_ROWS);
            let mut chunk_start = lo;
            while chunk_start < hi {
                let chunk_end = (chunk_start + CHUNK_ROWS).min(hi);
                let len = chunk_end - chunk_start;
                flat.clear();
                flat.resize(len, 0);
                for (fk, axis) in fks.iter().zip(&resolved) {
                    let fk = &fk[chunk_start..chunk_end];
                    let domain = axis.domain as u32;
                    for (slot, &k) in flat.iter_mut().zip(fk) {
                        *slot = *slot * domain + axis.codes[k as usize];
                    }
                }
                drain_hist(&mut hist, &flat, &kind, chunk_start);
                chunk_start = chunk_end;
            }
            hist
        };
        let bounds = shard_bounds(fact_rows, options.threads);
        let hist = if bounds.len() == 1 {
            scan(0, fact_rows)
        } else {
            let partials: Vec<Vec<f64>> = std::thread::scope(|scope| {
                let handles: Vec<_> =
                    bounds.iter().map(|&(lo, hi)| scope.spawn(move || scan(lo, hi))).collect();
                handles.into_iter().map(|h| h.join().expect("histogram shard panicked")).collect()
            });
            let mut merged = vec![0.0f64; space];
            for partial in partials {
                for (slot, v) in merged.iter_mut().zip(partial) {
                    *slot += v;
                }
            }
            merged
        };
        FACT_SCANS.fetch_add(1, Ordering::Relaxed);
        let k = kernel_counters();
        let chunks: u64 =
            bounds.iter().map(|&(lo, hi)| (hi - lo).div_ceil(CHUNK_ROWS) as u64).sum();
        KernelCounters::add(&k.chunks_scanned, chunks);
        // The histogram interior reads each axis fk straight from the
        // source array — one direct pass per axis per chunk, no staging.
        KernelCounters::add(&k.direct_gathers, resolved.len() as u64 * chunks);
        Ok(WeightHistogram {
            axes: resolved.into_iter().map(|a| (a.table, a.attr, a.domain)).collect(),
            space,
            agg: agg.clone(),
            hist,
        })
    }

    /// The normalized `(table, attr)` axes this histogram covers.
    pub fn axes(&self) -> Vec<(String, String)> {
        self.axes.iter().map(|(t, a, _)| (t.clone(), a.clone())).collect()
    }

    /// The joint code space (= histogram length).
    pub fn space(&self) -> usize {
        self.space
    }

    /// The aggregate the histogram accumulates.
    pub fn agg(&self) -> &Agg {
        &self.agg
    }

    /// Answers one weighted query as the dot product `Φ_q · W` — no fact
    /// scan. Same-axis predicates multiply into one weight vector and axes
    /// the query does not constrain contribute factor 1, mirroring the fused
    /// scan's arithmetic exactly. Errors when the aggregate differs from the
    /// histogram's, a predicate names an uncovered axis, or a weight vector
    /// has the wrong length.
    pub fn answer(&self, predicates: &[WeightedPredicate], agg: &Agg) -> Result<f64, EngineError> {
        if *agg != self.agg {
            return Err(EngineError::InvalidConstraint(format!(
                "histogram accumulates {:?}, query aggregates {:?}",
                self.agg, agg
            )));
        }
        let mut per_axis: Vec<Option<Vec<f64>>> = vec![None; self.axes.len()];
        for wp in predicates {
            let slot =
                self.axes.iter().position(|(t, a, _)| *t == wp.table && *a == wp.attr).ok_or_else(
                    || {
                        EngineError::InvalidConstraint(format!(
                            "axis `{}.{}` is not covered by this histogram",
                            wp.table, wp.attr
                        ))
                    },
                )?;
            let domain = self.axes[slot].2;
            if wp.weights.len() != domain {
                return Err(EngineError::WeightLengthMismatch {
                    attr: wp.attr.clone(),
                    got: wp.weights.len(),
                    expected: domain as u32,
                });
            }
            match &mut per_axis[slot] {
                Some(weights) => {
                    for (slot, w) in weights.iter_mut().zip(&wp.weights) {
                        *slot *= w;
                    }
                }
                None => per_axis[slot] = Some(wp.weights.clone()),
            }
        }
        // The outer product Φ_q over the joint code space, then Φ_q · W —
        // the same loops as `HistPlan::weight_tensor` / finalization.
        let mut tensor = vec![1.0f64];
        for ((_, _, domain), weights) in self.axes.iter().zip(&per_axis) {
            let mut next = Vec::with_capacity(tensor.len() * domain);
            for &t in &tensor {
                match weights {
                    Some(w) => next.extend(w.iter().map(|&wc| t * wc)),
                    None => next.extend(std::iter::repeat_n(t, *domain)),
                }
            }
            tensor = next;
        }
        Ok(tensor.iter().zip(&self.hist).map(|(p, w)| p * w).sum())
    }
}

/// Builds per-dimension pass bitsets for a predicate conjunction; `None`
/// means "no predicate on this dimension" (all rows pass). Snowflake
/// predicates are folded into their parent dimension through the dim→sub
/// link, exactly like the reference executor.
pub(crate) fn dimension_bitsets(
    schema: &StarSchema,
    predicates: &[Predicate],
) -> Result<Vec<Option<BitSet>>, EngineError> {
    let mut bitsets: Vec<Option<BitSet>> = vec![None; schema.num_dims()];
    for pred in predicates {
        // Star predicate: directly on a dimension.
        if let Ok(di) = schema.dim_index(&pred.table) {
            let dim = &schema.dims()[di];
            let codes = dim.table.codes(&pred.attr)?;
            let domain = dim.table.domain(&pred.attr)?;
            pred.constraint.validate(domain)?;
            let bits = bitsets[di].get_or_insert_with(|| BitSet::ones(dim.table.num_rows()));
            bits.retain(|i| pred.constraint.matches(codes[i]));
            continue;
        }
        // Snowflake predicate: on a sub-dimension, folded into the parent.
        if let Some((parent, sub)) = schema.subdim(&pred.table) {
            let sub_codes = sub.table.codes(&pred.attr)?;
            let domain = sub.table.domain(&pred.attr)?;
            pred.constraint.validate(domain)?;
            let sub_pass =
                BitSet::from_fn(sub_codes.len(), |i| pred.constraint.matches(sub_codes[i]));
            let link = parent.table.key(&sub.fk_in_dim)?;
            let di = schema.dim_index(parent.table.name())?;
            let bits = bitsets[di].get_or_insert_with(|| BitSet::ones(parent.table.num_rows()));
            bits.retain(|i| sub_pass.get(link[i] as usize));
            continue;
        }
        return Err(EngineError::UnknownTable(pred.table.clone()));
    }
    Ok(bitsets)
}

/// What [`ScanPlan::describe`] reports: the shape of the fused scan the
/// kernel would run, derived from the exact structures `execute` uses.
#[derive(Debug, Clone)]
pub struct PlanExplain {
    /// Fact-table rows the scan would visit.
    pub fact_rows: usize,
    /// Filters promoted to the cross-query shared-mask cache.
    pub shared_masks: usize,
    /// Sampling metadata when a cost model drives the plan, `None` when
    /// the static heuristics did.
    pub cost_model: Option<CostModelExplain>,
    /// Per-dimension staging/residency decisions, schema order.
    pub dims: Vec<DimExplain>,
    /// Per-query filter order and histogram assignment, compile order.
    pub queries: Vec<QueryExplain>,
}

/// One dimension's row in a [`PlanExplain`].
#[derive(Debug, Clone)]
pub struct DimExplain {
    /// Dimension table name.
    pub table: String,
    /// Dimension table rows.
    pub rows: usize,
    /// Whether the fk column is staged (decoded once up front).
    pub staged: bool,
    /// Estimated fraction of the dimension touched per chunk (cost model
    /// only).
    pub residency: Option<f64>,
}

/// One compiled query's row in a [`PlanExplain`].
#[derive(Debug, Clone)]
pub struct QueryExplain {
    /// Filters in the order the scan applies them (selectivity order).
    pub filters: Vec<FilterExplain>,
    /// Whether this query folds into the fused histogram pass.
    pub histogram: bool,
    /// Weighted aggregation axes (0 for plain counts).
    pub weighted_axes: usize,
}

/// One filter's row in a [`QueryExplain`].
#[derive(Debug, Clone)]
pub struct FilterExplain {
    /// Dimension table the filter probes.
    pub table: String,
    /// Probe class the kernel selected: `word`, `bytes`, or `bitset`.
    pub probe: &'static str,
    /// Pass fraction ordering the filter (sampled when the cost model is
    /// on, static heuristic otherwise).
    pub estimated_fraction: f64,
    /// Half-width 95% confidence interval of the sampled fraction.
    pub ci: Option<f64>,
    /// Sample walks behind the estimate.
    pub samples: Option<usize>,
    /// `shared` (gathered once per chunk for all users),
    /// `private_subsumed` (private gather refined through a shared
    /// superset mask), or `private`.
    pub sharing: &'static str,
}

/// Cost-model provenance in a [`PlanExplain`].
#[derive(Debug, Clone, Copy)]
pub struct CostModelExplain {
    /// True when the model enumerated every row instead of sampling.
    pub exact: bool,
    /// Rows visited per dimension lane while sampling.
    pub sampled_rows: usize,
}

impl PlanExplain {
    /// Renders the plan description as a JSON object — the payload of the
    /// gate's `explain` verb.
    pub fn to_json(&self) -> Json {
        let dims = self
            .dims
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("table", Json::Str(d.table.clone())),
                    ("rows", Json::Num(d.rows as f64)),
                    ("staged", Json::Num(f64::from(u8::from(d.staged)))),
                    ("residency", d.residency.map_or(Json::Null, Json::Num)),
                ])
            })
            .collect();
        let queries = self
            .queries
            .iter()
            .map(|q| {
                let filters = q
                    .filters
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("table", Json::Str(f.table.clone())),
                            ("probe", Json::Str(f.probe.to_string())),
                            ("estimated_fraction", Json::Num(f.estimated_fraction)),
                            ("ci", f.ci.map_or(Json::Null, Json::Num)),
                            ("samples", f.samples.map_or(Json::Null, |s| Json::Num(s as f64))),
                            ("sharing", Json::Str(f.sharing.to_string())),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("filters", Json::Arr(filters)),
                    ("histogram", Json::Num(f64::from(u8::from(q.histogram)))),
                    ("weighted_axes", Json::Num(q.weighted_axes as f64)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("fact_rows", Json::Num(self.fact_rows as f64)),
            ("shared_masks", Json::Num(self.shared_masks as f64)),
            (
                "cost_model",
                self.cost_model.map_or(Json::Null, |m| {
                    Json::obj(vec![
                        ("exact", Json::Num(f64::from(u8::from(m.exact)))),
                        ("sampled_rows", Json::Num(m.sampled_rows as f64)),
                    ])
                }),
            ),
            ("dims", Json::Arr(dims)),
            ("queries", Json::Arr(queries)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::domain::Domain;
    use crate::query::GroupAttr;
    use crate::schema::Dimension;
    use crate::table::Table;

    fn schema() -> StarSchema {
        let da = Domain::numeric("attr", 3).unwrap();
        let db = Domain::numeric("attr", 2).unwrap();
        let a = Table::new(
            "A",
            vec![Column::key("pk", vec![0, 1, 2]), Column::attr("attr", da, vec![0, 1, 2])],
        )
        .unwrap();
        let b = Table::new(
            "B",
            vec![Column::key("pk", vec![0, 1]), Column::attr("attr", db, vec![0, 1])],
        )
        .unwrap();
        let fact = Table::new(
            "F",
            vec![
                Column::key("fk_a", vec![0, 0, 1, 1, 2, 2]),
                Column::key("fk_b", vec![0, 1, 0, 1, 0, 1]),
                Column::measure("qty", vec![1, 2, 3, 4, 5, 6]),
            ],
        )
        .unwrap();
        StarSchema::new(
            fact,
            vec![Dimension::new(a, "pk", "fk_a"), Dimension::new(b, "pk", "fk_b")],
        )
        .unwrap()
    }

    #[test]
    fn fused_plan_answers_mixed_batch_in_one_scan() {
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        plan.add_query(&StarQuery::count("c").with(Predicate::point("A", "attr", 1))).unwrap();
        plan.add_query(&StarQuery::sum("s", "qty").with(Predicate::point("B", "attr", 1))).unwrap();
        plan.add_weighted(&[WeightedPredicate::new("A", "attr", vec![0.5, 0.0, 0.0])], &Agg::Count)
            .unwrap();
        assert_eq!(plan.num_queries(), 3);
        let before = fact_scan_count();
        let results = plan.execute(ScanOptions::default());
        assert_eq!(fact_scan_count() - before, 1, "three queries, one scan");
        assert_eq!(results[0].scalar().unwrap(), 2.0);
        assert_eq!(results[1].scalar().unwrap(), 12.0);
        assert!((results[2].scalar().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn describe_reports_plan_shape_without_executing() {
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        // The same predicate in two queries must show as shared; the
        // B-side filter stays private.
        plan.add_query(&StarQuery::count("c1").with(Predicate::point("A", "attr", 1))).unwrap();
        plan.add_query(
            &StarQuery::count("c2")
                .with(Predicate::point("A", "attr", 1))
                .with(Predicate::point("B", "attr", 0)),
        )
        .unwrap();
        let before = fact_scan_count();
        let ex = plan.describe();
        assert_eq!(fact_scan_count(), before, "describe never touches the fact table");
        assert_eq!(ex.fact_rows, 6);
        assert_eq!(ex.dims.len(), 2);
        assert_eq!(ex.dims[0].table, "A");
        assert_eq!(ex.queries.len(), 2);
        assert_eq!(ex.shared_masks, 1, "the repeated A filter promotes once");
        assert!(ex.queries.iter().all(|q| q
            .filters
            .iter()
            .filter(|f| f.table == "A")
            .all(|f| f.sharing == "shared")));
        assert!(ex.queries[1].filters.iter().any(|f| f.table == "B" && f.sharing == "private"));
        for q in &ex.queries {
            for f in &q.filters {
                assert!(matches!(f.probe, "word" | "bytes" | "bitset"));
                assert!((0.0..=1.0).contains(&f.estimated_fraction));
            }
        }
        let rendered = ex.to_json().render();
        let parsed = Json::parse(&rendered).expect("explain json parses");
        assert_eq!(parsed.get("fact_rows").and_then(Json::as_f64), Some(6.0));
        assert_eq!(parsed.get("queries").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        plan.add_query(
            &StarQuery::sum("g", "qty")
                .with(Predicate::range("A", "attr", 0, 1))
                .group_by(GroupAttr::new("B", "attr")),
        )
        .unwrap();
        plan.add_weighted(
            &[
                WeightedPredicate::new("A", "attr", vec![1.0, 0.5, 0.25]),
                WeightedPredicate::new("B", "attr", vec![2.0, 0.75]),
            ],
            &Agg::Sum("qty".into()),
        )
        .unwrap();
        let seq = plan.execute(ScanOptions::default());
        let par = plan.execute(ScanOptions::parallel(4));
        assert_eq!(seq, par);
    }

    #[test]
    fn histogram_path_answers_weighted_batches() {
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        // Mixed aggregate kinds over the same axes → two histograms.
        plan.add_weighted(&[WeightedPredicate::new("A", "attr", vec![1.0, 0.5, 0.0])], &Agg::Count)
            .unwrap();
        plan.add_weighted(
            &[
                WeightedPredicate::new("A", "attr", vec![0.0, 1.0, 1.0]),
                WeightedPredicate::new("B", "attr", vec![1.0, 0.25]),
            ],
            &Agg::Sum("qty".into()),
        )
        .unwrap();
        let hp = HistPlan::build(&plan.queries).expect("both queries eligible");
        assert_eq!(hp.axes.len(), 2, "A.attr and B.attr axes");
        assert_eq!(hp.space, 6);
        assert_eq!(hp.kinds.len(), 2, "Count and Sum histograms");
        let results = plan.execute(ScanOptions::default());
        // Query 0: rows with fk_a=0 weigh 1, fk_a=1 weigh 0.5 → 2 + 1 = 3.
        assert_eq!(results[0].scalar().unwrap(), 3.0);
        // Query 1: Σ qty·wA(a)·wB(b): rows 2..6:
        //   row2 (1,0): 3·1·1=3; row3 (1,1): 4·1·0.25=1; row4 (2,0): 5;
        //   row5 (2,1): 6·0.25=1.5 → 10.5.
        assert_eq!(results[1].scalar().unwrap(), 10.5);
    }

    #[test]
    fn wide_axis_falls_back_per_query_not_per_batch() {
        // One dimension with a domain past DENSE_GROUP_CAP: the query on it
        // must fall back to the row loop, while the small-axis query keeps
        // the histogram path.
        let wide_domain = (DENSE_GROUP_CAP + 1) as u32;
        let dwide = Domain::numeric("w", wide_domain).unwrap();
        let dsmall = Domain::numeric("s", 3).unwrap();
        let wide = Table::new(
            "W",
            vec![Column::key("pk", vec![0, 1]), Column::attr("w", dwide, vec![0, wide_domain - 1])],
        )
        .unwrap();
        let small = Table::new(
            "S",
            vec![Column::key("pk", vec![0, 1, 2]), Column::attr("s", dsmall, vec![0, 1, 2])],
        )
        .unwrap();
        let fact = Table::new(
            "F",
            vec![Column::key("fw", vec![0, 1, 1, 0]), Column::key("fs", vec![0, 1, 2, 2])],
        )
        .unwrap();
        let s = StarSchema::new(
            fact,
            vec![Dimension::new(wide, "pk", "fw"), Dimension::new(small, "pk", "fs")],
        )
        .unwrap();

        let mut wide_weights = vec![0.0; wide_domain as usize];
        wide_weights[0] = 1.0;
        wide_weights[wide_domain as usize - 1] = 0.5;
        let mut plan = ScanPlan::new(&s).unwrap();
        plan.add_weighted(&[WeightedPredicate::new("S", "s", vec![1.0, 0.5, 2.0])], &Agg::Count)
            .unwrap();
        plan.add_weighted(&[WeightedPredicate::new("W", "w", wide_weights)], &Agg::Count).unwrap();

        let hp = HistPlan::build(&plan.queries).expect("small-axis query still eligible");
        assert_eq!(hp.assignment[0], Some(0), "small query keeps the histogram path");
        assert_eq!(hp.assignment[1], None, "wide query falls back to the row loop");
        assert_eq!(hp.space, 3);

        let results = plan.execute(ScanOptions::default());
        // Query 0: rows hit s-codes 0, 1, 2, 2 → 1 + 0.5 + 2 + 2 = 5.5.
        assert_eq!(results[0].scalar().unwrap(), 5.5);
        // Query 1: rows hit w-codes 0, max, max, 0 → 1 + 0.5 + 0.5 + 1 = 3.
        assert_eq!(results[1].scalar().unwrap(), 3.0);
    }

    #[test]
    fn same_attr_predicates_multiply_into_one_axis() {
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        plan.add_weighted(
            &[
                WeightedPredicate::new("A", "attr", vec![1.0, 2.0, 4.0]),
                WeightedPredicate::new("A", "attr", vec![0.5, 0.5, 0.5]),
            ],
            &Agg::Count,
        )
        .unwrap();
        assert_eq!(plan.queries[0].weights.len(), 1, "merged into one axis");
        let results = plan.execute(ScanOptions::default());
        // Per-code weights 0.5, 1.0, 2.0 over fanout 2 each → 2·3.5 = 7.
        assert_eq!(results[0].scalar().unwrap(), 7.0);
    }

    #[test]
    fn dense_group_space_detection() {
        let s = schema();
        let g = GroupPlan::resolve(&s, &[GroupAttr::new("A", "attr"), GroupAttr::new("B", "attr")])
            .unwrap();
        assert_eq!(g.dense_space, Some(6));
        assert_eq!(g.decode(5), vec![2, 1], "row-major decode of the last cell");
        assert_eq!(g.decode(1), vec![0, 1]);
    }

    #[test]
    fn scan_options_clamp() {
        assert_eq!(ScanOptions::parallel(0).threads, 1);
        assert_eq!(ScanOptions::default().threads, 1);
        assert!(!ScanOptions::default().legacy_gather);
        assert_eq!(ScanOptions::default().cost_samples, DEFAULT_COST_SAMPLES);
        let legacy = ScanOptions::parallel(3).with_legacy_gather();
        assert!(legacy.legacy_gather);
        assert_eq!(legacy.threads, 3);
        // `with_threads` threads an existing option set without resetting
        // the cost-model / probe knobs (`parallel` starts from defaults).
        let tuned =
            ScanOptions::default().with_cost_samples(7).with_probe_caps(16, 256).with_threads(0);
        assert_eq!(tuned.threads, 1);
        assert_eq!(tuned.cost_samples, 7);
        assert_eq!((tuned.word_probe_cap, tuned.byte_probe_cap), (16, 256));
    }

    #[test]
    fn probe_classification_boundaries() {
        let word = Filter::new(0, BitSet::from_fn(64, |i| i % 2 == 0));
        assert!(matches!(word.probe, Probe::Word(_)), "64 rows → register word");
        let bytes = Filter::new(0, BitSet::from_fn(65, |i| i % 2 == 0));
        assert!(matches!(bytes.probe, Probe::Bytes(_)), "65 rows → byte LUT");
        let bytes_hi = Filter::new(0, BitSet::from_fn(1 << 16, |i| i == 0));
        assert!(matches!(bytes_hi.probe, Probe::Bytes(_)), "2^16 rows → byte LUT");
        let wide = Filter::new(0, BitSet::from_fn((1 << 16) + 1, |i| i == 0));
        assert!(matches!(wide.probe, Probe::Wide), "2^16 + 1 rows → packed bitset");
        let empty = Filter::new(0, BitSet::zeros(0));
        assert!(matches!(empty.probe, Probe::Word(0)), "0-row dimension → empty word");
    }

    #[test]
    fn probe_caps_override_classification() {
        // Shrunken caps exercise every probe regime on a 40-row mask — no
        // 2^16-row fixture needed.
        let bits = BitSet::from_fn(40, |i| i % 3 == 0);
        let word = Filter::build(0, bits.clone(), 64, 1 << 16, None);
        assert!(matches!(word.probe, Probe::Word(_)));
        let bytes = Filter::build(0, bits.clone(), 8, 1 << 16, None);
        assert!(matches!(bytes.probe, Probe::Bytes(_)), "word cap 8 demotes to byte LUT");
        let wide = Filter::build(0, bits.clone(), 8, 16, None);
        assert!(matches!(wide.probe, Probe::Wide), "byte cap 16 demotes to packed bitset");
        // A word cap above 64 still cannot admit masks past one register.
        let big = Filter::build(0, BitSet::from_fn(100, |_| true), 1 << 20, 1 << 16, None);
        assert!(matches!(big.probe, Probe::Bytes(_)), "word cap clamps at 64 bits");
        // All three classifications answer identically.
        let lane: Vec<u32> = (0..40).collect();
        assert_eq!(word.gather_word(&lane), bytes.gather_word(&lane));
        assert_eq!(word.gather_word(&lane), wide.gather_word(&lane));
    }

    #[test]
    fn cost_model_plans_are_bit_identical_to_static() {
        let s = schema();
        let queries = [
            StarQuery::count("c1")
                .with(Predicate::range("A", "attr", 1, 2))
                .with(Predicate::point("B", "attr", 0)),
            StarQuery::count("c2")
                .with(Predicate::range("A", "attr", 1, 2))
                .with(Predicate::point("B", "attr", 1)),
            StarQuery::sum("s", "qty").with(Predicate::point("A", "attr", 1)),
        ];
        let mut static_plan = ScanPlan::new(&s).unwrap();
        let mut cost_plan = ScanPlan::with_options(&s, ScanOptions::default()).unwrap();
        assert!(cost_plan.model.is_some(), "default options enable the model");
        assert!(cost_plan.model.as_ref().unwrap().is_exact(), "6-row fact → exact model");
        for q in &queries {
            static_plan.add_query(q).unwrap();
            cost_plan.add_query(q).unwrap();
        }
        assert_eq!(
            static_plan.execute(ScanOptions::default()),
            cost_plan.execute(ScanOptions::default())
        );
    }

    #[test]
    fn subsumed_private_mask_refines_from_the_shared_cache() {
        let s = schema();
        let mut plan = ScanPlan::with_options(&s, ScanOptions::default()).unwrap();
        // A.attr ∈ {1,2} recurs in two queries behind a 1/2-selective B
        // mask (prefix 0.5 → each private gather would cost ~1 full pass,
        // so promotion saves ~2 > 1); A.attr = 1 is a strict subset of it.
        plan.add_query(
            &StarQuery::count("c1")
                .with(Predicate::range("A", "attr", 1, 2))
                .with(Predicate::point("B", "attr", 0)),
        )
        .unwrap();
        plan.add_query(
            &StarQuery::count("c2")
                .with(Predicate::range("A", "attr", 1, 2))
                .with(Predicate::point("B", "attr", 1)),
        )
        .unwrap();
        plan.add_query(&StarQuery::count("c3").with(Predicate::point("A", "attr", 1))).unwrap();
        let program = plan.mask_program(None);
        assert_eq!(program.shared.len(), 1, "the recurring A range promotes");
        assert_eq!(program.shared_uses, vec![2]);
        assert_eq!(
            program.per_query[2].0,
            vec![0],
            "the subset mask ANDs the shared subsumer first"
        );
        assert_eq!(program.per_query[2].1.len(), 1, "…but still runs its own gather");
        // Refinement is exact: answers match the model-free and legacy paths.
        let results = plan.execute(ScanOptions::default());
        assert_eq!(results, plan.execute(ScanOptions::default().with_legacy_gather()));
        assert_eq!(results[0].scalar().unwrap(), 2.0);
        assert_eq!(results[1].scalar().unwrap(), 2.0);
        assert_eq!(results[2].scalar().unwrap(), 2.0);
    }

    #[test]
    fn cost_model_demotes_cache_resident_staging() {
        let s = schema();
        // Two users of dimension A: the static rule stages it, but the
        // model sees ≤ 3 distinct codes per chunk (cache-hot) and demotes.
        let queries = [
            StarQuery::count("c").with(Predicate::point("A", "attr", 1)),
            StarQuery::count("d").with(Predicate::point("A", "attr", 2)),
        ];
        let mut static_plan = ScanPlan::new(&s).unwrap();
        let mut cost_plan = ScanPlan::with_options(&s, ScanOptions::default()).unwrap();
        for q in &queries {
            static_plan.add_query(q).unwrap();
            cost_plan.add_query(q).unwrap();
        }
        let sp = static_plan.mask_program(None);
        assert_eq!(static_plan.staged_dims(None, &sp), vec![true, false]);
        let cp = cost_plan.mask_program(None);
        assert_eq!(
            cost_plan.staged_dims(None, &cp),
            vec![false, false],
            "tiny dimension stays unstaged under the model"
        );
        assert_eq!(
            static_plan.execute(ScanOptions::default()),
            cost_plan.execute(ScanOptions::default()),
            "staging is invisible to answers"
        );
    }

    #[test]
    fn adversarial_estimates_cannot_change_answers() {
        let s = schema();
        let queries = [
            StarQuery::count("c1")
                .with(Predicate::range("A", "attr", 1, 2))
                .with(Predicate::point("B", "attr", 0)),
            StarQuery::sum("s", "qty")
                .with(Predicate::point("A", "attr", 1))
                .with(Predicate::point("B", "attr", 1)),
        ];
        let mut truth_plan = ScanPlan::new(&s).unwrap();
        for q in &queries {
            truth_plan.add_query(q).unwrap();
        }
        let truth = truth_plan.execute(ScanOptions::default());
        // Feed the planner maximally wrong estimates in both directions.
        for (fa, fb, ra, rb) in [(0.0, 1.0, 1e6, 0.0), (1.0, 0.0, 0.0, 1e6), (0.5, 0.5, 1e6, 1e6)] {
            let mut model =
                crate::cost::CostModel::build(&s, &crate::cost::CostConfig::default()).unwrap();
            model.force_fraction(0, fa);
            model.force_fraction(1, fb);
            model.force_residency(0, ra);
            model.force_residency(1, rb);
            let mut plan = ScanPlan::with_options(&s, ScanOptions::default()).unwrap();
            plan.set_cost_model(Some(Arc::new(model)));
            for q in &queries {
                plan.add_query(q).unwrap();
            }
            assert_eq!(plan.execute(ScanOptions::default()), truth, "({fa}, {fb}, {ra}, {rb})");
        }
    }

    #[test]
    fn filters_sort_by_pass_fraction_then_dimension() {
        // dim 0: 3/4 pass; dim 1: 1/4 pass; dim 2: 1/4 pass.
        let mut filters = vec![
            Filter::new(0, BitSet::from_fn(4, |i| i != 0)),
            Filter::new(2, BitSet::from_fn(4, |i| i == 0)),
            Filter::new(1, BitSet::from_fn(4, |i| i == 3)),
        ];
        selectivity_order(&mut filters);
        let order: Vec<usize> = filters.iter().map(|f| f.dim).collect();
        assert_eq!(order, vec![1, 2, 0], "most selective first, ties by dim index");
    }

    #[test]
    fn no_filter_pure_count_short_circuits_to_len() {
        // Mixed batch: the unfiltered COUNT short-circuit must not disturb
        // neighboring queries, and must equal the fact row count exactly.
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        plan.add_query(&StarQuery::count("all")).unwrap();
        plan.add_query(&StarQuery::count("c").with(Predicate::point("A", "attr", 1))).unwrap();
        assert!(plan.queries[0].filters.is_empty() && plan.queries[0].is_pure_count());
        for options in [ScanOptions::default(), ScanOptions::default().with_legacy_gather()] {
            let results = plan.execute(options);
            assert_eq!(results[0].scalar().unwrap(), 6.0, "unfiltered count = fact rows");
            assert_eq!(results[1].scalar().unwrap(), 2.0);
        }
    }

    #[test]
    fn legacy_gather_is_bit_identical_to_staged() {
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        plan.add_query(&StarQuery::count("c").with(Predicate::point("A", "attr", 1))).unwrap();
        plan.add_query(
            &StarQuery::sum("g", "qty")
                .with(Predicate::range("A", "attr", 0, 1))
                .group_by(GroupAttr::new("B", "attr")),
        )
        .unwrap();
        plan.add_weighted(&[WeightedPredicate::new("A", "attr", vec![0.3, 1.7, 0.0])], &Agg::Count)
            .unwrap();
        let staged = plan.execute(ScanOptions::default());
        let legacy = plan.execute(ScanOptions::default().with_legacy_gather());
        assert_eq!(staged, legacy);
        let staged_par = plan.execute(ScanOptions::parallel(3));
        let legacy_par = plan.execute(ScanOptions::parallel(3).with_legacy_gather());
        assert_eq!(staged_par, legacy_par);
    }

    #[test]
    fn staged_dims_require_two_uses() {
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        plan.add_query(&StarQuery::count("c").with(Predicate::point("A", "attr", 1))).unwrap();
        let program = plan.mask_program(None);
        assert_eq!(plan.staged_dims(None, &program), vec![false, false], "single use → no staging");
        plan.add_query(&StarQuery::count("d").with(Predicate::point("A", "attr", 2))).unwrap();
        let program = plan.mask_program(None);
        assert_eq!(plan.staged_dims(None, &program), vec![true, false], "two uses of A → staged");
    }

    #[test]
    fn recurring_filters_promote_to_the_shared_mask_cache() {
        let s = schema();
        let mut plan = ScanPlan::new(&s).unwrap();
        // Two queries share the A.attr=1 mask; the B-side masks differ.
        plan.add_query(
            &StarQuery::count("c1")
                .with(Predicate::point("A", "attr", 1))
                .with(Predicate::point("B", "attr", 0)),
        )
        .unwrap();
        plan.add_query(
            &StarQuery::count("c2")
                .with(Predicate::point("A", "attr", 1))
                .with(Predicate::point("B", "attr", 1)),
        )
        .unwrap();
        plan.add_query(&StarQuery::count("c3").with(Predicate::point("A", "attr", 2))).unwrap();
        let program = plan.mask_program(None);
        assert_eq!(program.shared.len(), 1, "only the recurring A mask is shared");
        assert_eq!(program.shared[0].dim, 0);
        assert_eq!(program.per_query[0].0, vec![0]);
        assert_eq!(program.per_query[0].1.len(), 1, "B mask stays private");
        assert_eq!(program.per_query[1].0, vec![0]);
        assert_eq!(program.per_query[2].0, Vec::<usize>::new());
        assert_eq!(program.per_query[2].1.len(), 1);
        // And the shared split answers identically to the reference paths.
        let results = plan.execute(ScanOptions::default());
        let legacy = plan.execute(ScanOptions::default().with_legacy_gather());
        assert_eq!(results, legacy);
        assert_eq!(results[0].scalar().unwrap(), 1.0);
        assert_eq!(results[1].scalar().unwrap(), 1.0);
        assert_eq!(results[2].scalar().unwrap(), 2.0);
    }

    #[test]
    fn weight_histogram_matches_fused_scan_bit_for_bit() {
        let s = schema();
        // Arbitrary (non-dyadic) weights: bit-identity must come from doing
        // the same float ops in the same order, not from exact arithmetic.
        let batch = vec![
            WeightedQuery::count(vec![WeightedPredicate::new("A", "attr", vec![0.3, 1.7, 0.0])]),
            WeightedQuery {
                predicates: vec![
                    WeightedPredicate::new("A", "attr", vec![1.0, 0.1, 2.3]),
                    WeightedPredicate::new("B", "attr", vec![0.9, 1.1]),
                ],
                agg: Agg::Sum("qty".into()),
            },
        ];
        let axes =
            vec![("A".to_string(), "attr".to_string()), ("B".to_string(), "attr".to_string())];
        for threads in [1usize, 3] {
            let options = ScanOptions::parallel(threads);
            let fused = crate::exec::execute_weighted_batch_with(&s, &batch, options).unwrap();
            let count_hist = WeightHistogram::build(&s, &axes, &Agg::Count, options).unwrap();
            let sum_hist =
                WeightHistogram::build(&s, &axes, &Agg::Sum("qty".into()), options).unwrap();
            assert_eq!(
                count_hist.answer(&batch[0].predicates, &batch[0].agg).unwrap().to_bits(),
                fused[0].to_bits(),
                "count dot product diverged at threads={threads}"
            );
            assert_eq!(
                sum_hist.answer(&batch[1].predicates, &batch[1].agg).unwrap().to_bits(),
                fused[1].to_bits(),
                "sum dot product diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn weight_histogram_normalizes_axes_and_probes_eligibility() {
        let s = schema();
        // Duplicates collapse and axes sort into ascending dimension order
        // regardless of the caller's order.
        let messy = vec![
            ("B".to_string(), "attr".to_string()),
            ("A".to_string(), "attr".to_string()),
            ("B".to_string(), "attr".to_string()),
        ];
        let (axes, space) = WeightHistogram::plan_axes(&s, &messy).unwrap();
        assert_eq!(
            axes,
            vec![("A".to_string(), "attr".to_string()), ("B".to_string(), "attr".to_string())]
        );
        assert_eq!(space, Some(6));
        let hist = WeightHistogram::build(&s, &messy, &Agg::Count, ScanOptions::default()).unwrap();
        assert_eq!(hist.axes(), axes);
        assert_eq!(hist.space(), 6);
        // Same-axis predicates multiply into one weight vector: weights
        // 1·0.5, 2·0.5, 4·0.5 over fanout 2 each → 2 · 3.5 = 7.
        let merged = hist
            .answer(
                &[
                    WeightedPredicate::new("A", "attr", vec![1.0, 2.0, 4.0]),
                    WeightedPredicate::new("A", "attr", vec![0.5, 0.5, 0.5]),
                ],
                &Agg::Count,
            )
            .unwrap();
        assert_eq!(merged, 7.0);
    }

    #[test]
    fn weight_histogram_rejects_mismatches() {
        let s = schema();
        let axes = vec![("A".to_string(), "attr".to_string())];
        let hist = WeightHistogram::build(&s, &axes, &Agg::Count, ScanOptions::default()).unwrap();
        // Wrong aggregate.
        assert!(hist
            .answer(&[WeightedPredicate::new("A", "attr", vec![1.0; 3])], &Agg::Sum("qty".into()))
            .is_err());
        // Uncovered axis.
        assert!(hist
            .answer(&[WeightedPredicate::new("B", "attr", vec![1.0; 2])], &Agg::Count)
            .is_err());
        // Wrong weight length.
        assert!(hist
            .answer(&[WeightedPredicate::new("A", "attr", vec![1.0; 5])], &Agg::Count)
            .is_err());
        // Empty axis list refuses to build; oversized joint spaces refuse too.
        assert!(WeightHistogram::build(&s, &[], &Agg::Count, ScanOptions::default()).is_err());
        // Unknown table errors cleanly.
        assert!(WeightHistogram::plan_axes(&s, &[("Ghost".into(), "attr".into())]).is_err());
    }

    #[test]
    fn weight_histogram_counts_one_fact_scan() {
        let s = schema();
        let axes = vec![("A".to_string(), "attr".to_string())];
        let before = fact_scan_count();
        let hist = WeightHistogram::build(&s, &axes, &Agg::Count, ScanOptions::default()).unwrap();
        assert_eq!(fact_scan_count() - before, 1, "building W costs exactly one scan");
        let before = fact_scan_count();
        for _ in 0..4 {
            hist.answer(&[WeightedPredicate::new("A", "attr", vec![1.0, 0.5, 0.25])], &Agg::Count)
                .unwrap();
        }
        assert_eq!(fact_scan_count() - before, 0, "answering from W is scan-free");
    }
}
