//! Deterministic query normalization — the identity the answer cache keys on.
//!
//! Two star-join queries that differ only in presentation (label, predicate
//! order, `[v, v]` ranges vs. points, unsorted IN-sets, repeated constraints
//! on one attribute) compute the same aggregate, so a DP answer served for
//! one can be replayed for the other at **zero additional privacy budget**.
//! [`canonicalize`] maps every query to a [`CanonicalQuery`] normal form such
//! that presentation-equivalent queries produce identical (`Eq`/`Hash`-equal)
//! values:
//!
//! * the query label is dropped — it never affects the answer;
//! * all constraints on one `(table, attribute)` pair are **intersected**
//!   (the WHERE clause is a conjunction) into a single constraint;
//! * constraint shapes are collapsed: a degenerate range `[v, v]` becomes
//!   `Point(v)`, an IN-set is sorted and deduplicated, a one-element set
//!   becomes a point, a set of consecutive codes becomes a range;
//! * predicates are sorted by `(table, attribute, constraint)`;
//! * GROUP BY attributes are sorted and deduplicated — the engine returns a
//!   `BTreeMap` keyed in `group_by` order, so reordering changes key layout
//!   but never the histogram; callers that cache grouped answers get the
//!   canonical attribute order.
//!
//! An intersection can come up **empty** (`a = 1 AND a = 2`): the query is
//! then unsatisfiable *for every database instance*, which the normal form
//! records in [`CanonicalQuery::unsatisfiable`] rather than manufacturing an
//! unrepresentable empty constraint. Because that fact is derived from the
//! query alone — never from the data — a service may answer such queries
//! with an exact empty result without touching the privacy budget.

use crate::predicate::{Constraint, Predicate};
use crate::query::{Agg, GroupAttr, StarQuery};
use std::collections::BTreeMap;

/// The normal form of a [`StarQuery`]: label-free, order-insensitive, with
/// per-attribute constraints intersected and collapsed. Use this as the
/// cache/deduplication key for query answers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalQuery {
    /// The aggregate (unchanged by normalization).
    pub agg: Agg,
    /// Sorted predicates, at most one per `(table, attribute)` pair. Empty
    /// when `unsatisfiable` is set.
    pub predicates: Vec<Predicate>,
    /// Sorted, deduplicated grouping attributes.
    pub group_by: Vec<GroupAttr>,
    /// True iff some attribute's constraints intersect to the empty set, so
    /// the query returns an empty result on **every** database instance.
    pub unsatisfiable: bool,
}

impl CanonicalQuery {
    /// Rebuilds an executable [`StarQuery`] carrying `name` as its label.
    /// For an unsatisfiable canonical form there is no constraint encoding
    /// the empty set, so callers should short-circuit instead of executing.
    pub fn to_query(&self, name: impl Into<String>) -> StarQuery {
        StarQuery {
            name: name.into(),
            agg: self.agg.clone(),
            predicates: self.predicates.clone(),
            group_by: self.group_by.clone(),
        }
    }
}

/// The explicit, finite code set of a constraint intersection in progress.
/// Ranges stay symbolic (`Span`) until a set forces enumeration, so huge
/// ranges never materialize.
enum Acc {
    /// Contiguous `[lo, hi]`.
    Span(u32, u32),
    /// Sorted, deduplicated explicit codes.
    Codes(Vec<u32>),
}

impl Acc {
    /// `None` means the constraint matches nothing on its own — an empty
    /// IN-set or an inverted range (`lo > hi`). Such constraints are
    /// rejected by domain validation, but canonicalization must stay total
    /// over every representable query.
    fn from_constraint(c: &Constraint) -> Option<Acc> {
        match c {
            Constraint::Point(v) => Some(Acc::Span(*v, *v)),
            Constraint::Range { lo, hi } => (lo <= hi).then_some(Acc::Span(*lo, *hi)),
            Constraint::Set(vs) => {
                let mut sorted = vs.clone();
                sorted.sort_unstable();
                sorted.dedup();
                (!sorted.is_empty()).then_some(Acc::Codes(sorted))
            }
        }
    }

    /// Intersects with one more constraint; `None` means provably empty.
    fn intersect(self, c: &Constraint) -> Option<Acc> {
        match (self, Acc::from_constraint(c)?) {
            (Acc::Span(a, b), Acc::Span(c, d)) => {
                let (lo, hi) = (a.max(c), b.min(d));
                (lo <= hi).then_some(Acc::Span(lo, hi))
            }
            (Acc::Span(a, b), Acc::Codes(vs)) | (Acc::Codes(vs), Acc::Span(a, b)) => {
                let kept: Vec<u32> = vs.into_iter().filter(|v| (a..=b).contains(v)).collect();
                (!kept.is_empty()).then_some(Acc::Codes(kept))
            }
            (Acc::Codes(xs), Acc::Codes(ys)) => {
                // Both sides sorted — linear merge intersection.
                let mut kept = Vec::with_capacity(xs.len().min(ys.len()));
                let (mut i, mut j) = (0, 0);
                while i < xs.len() && j < ys.len() {
                    match xs[i].cmp(&ys[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            kept.push(xs[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                (!kept.is_empty()).then_some(Acc::Codes(kept))
            }
        }
    }

    /// The most compact constraint shape for the accumulated set.
    fn collapse(self) -> Constraint {
        match self {
            Acc::Span(lo, hi) if lo == hi => Constraint::Point(lo),
            Acc::Span(lo, hi) => Constraint::Range { lo, hi },
            Acc::Codes(vs) => {
                debug_assert!(!vs.is_empty(), "empty intersections are None");
                if vs.len() == 1 {
                    return Constraint::Point(vs[0]);
                }
                let consecutive = vs.windows(2).all(|w| w[1] == w[0] + 1);
                if consecutive {
                    Constraint::Range { lo: vs[0], hi: *vs.last().expect("non-empty") }
                } else {
                    Constraint::Set(vs)
                }
            }
        }
    }
}

/// True iff every code matching `a` also matches `b` (`a ⇒ b`) — the
/// constraint-level face of the planner's mask-subsumption test: when two
/// queries constrain the same attribute and one constraint implies the
/// other, the narrower pass mask is a subset of the wider one, so the
/// planner can AND-refine it from the wider shared mask instead of running
/// a second full gather. Decided symbolically (span containment, sorted-set
/// sweeps) — no mask materialization. Conservative only in never claiming a
/// false implication; unsatisfiable `a` implies anything.
pub fn implies(a: &Constraint, b: &Constraint) -> bool {
    let Some(a) = Acc::from_constraint(a) else {
        return true; // matches nothing → vacuously implied
    };
    let Some(b) = Acc::from_constraint(b) else {
        return false;
    };
    match (&a, &b) {
        (Acc::Span(alo, ahi), Acc::Span(blo, bhi)) => blo <= alo && ahi <= bhi,
        (Acc::Span(alo, ahi), Acc::Codes(vs)) => {
            // Every code of the span must appear in the (sorted) set; a
            // span longer than the set can't be contained, so huge ranges
            // never enumerate.
            ((*ahi - *alo) as usize) < vs.len()
                && (*alo..=*ahi).all(|v| vs.binary_search(&v).is_ok())
        }
        (Acc::Codes(vs), Acc::Span(blo, bhi)) => vs.iter().all(|v| (blo..=bhi).contains(&v)),
        (Acc::Codes(xs), Acc::Codes(ys)) => xs.iter().all(|v| ys.binary_search(v).is_ok()),
    }
}

/// Normalizes a query to its [`CanonicalQuery`] form. Deterministic: the
/// output depends only on the input query, never on hash-map iteration
/// order or any ambient state.
pub fn canonicalize(query: &StarQuery) -> CanonicalQuery {
    // Group constraints by (table, attr); BTreeMap gives the sorted order
    // the canonical predicate list needs.
    let mut by_attr: BTreeMap<(String, String), Option<Acc>> = BTreeMap::new();
    for p in &query.predicates {
        let slot = by_attr.entry((p.table.clone(), p.attr.clone())).or_insert(None);
        *slot = match slot.take() {
            None => Acc::from_constraint(&p.constraint),
            Some(acc) => acc.intersect(&p.constraint),
        };
        if slot.is_none() {
            // Empty intersection: the whole conjunction is unsatisfiable.
            return CanonicalQuery {
                agg: query.agg.clone(),
                predicates: Vec::new(),
                group_by: sorted_group_by(query),
                unsatisfiable: true,
            };
        }
    }

    let predicates = by_attr
        .into_iter()
        .map(|((table, attr), acc)| Predicate {
            table,
            attr,
            constraint: acc.expect("empty intersections returned early").collapse(),
        })
        .collect();

    CanonicalQuery {
        agg: query.agg.clone(),
        predicates,
        group_by: sorted_group_by(query),
        unsatisfiable: false,
    }
}

fn sorted_group_by(query: &StarQuery) -> Vec<GroupAttr> {
    let mut gs = query.group_by.clone();
    gs.sort();
    gs.dedup();
    gs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn key_of(c: &CanonicalQuery) -> u64 {
        let mut h = DefaultHasher::new();
        c.hash(&mut h);
        h.finish()
    }

    #[test]
    fn label_and_order_do_not_matter() {
        let a = StarQuery::count("first")
            .with(Predicate::point("B", "y", 2))
            .with(Predicate::range("A", "x", 0, 3));
        let b = StarQuery::count("second")
            .with(Predicate::range("A", "x", 0, 3))
            .with(Predicate::point("B", "y", 2));
        let (ca, cb) = (canonicalize(&a), canonicalize(&b));
        assert_eq!(ca, cb);
        assert_eq!(key_of(&ca), key_of(&cb));
    }

    #[test]
    fn degenerate_range_collapses_to_point() {
        let range = StarQuery::count("q").with(Predicate::range("A", "x", 5, 5));
        let point = StarQuery::count("q").with(Predicate::point("A", "x", 5));
        assert_eq!(canonicalize(&range), canonicalize(&point));
        assert_eq!(canonicalize(&range).predicates[0].constraint, Constraint::Point(5));
    }

    #[test]
    fn sets_sort_dedup_and_collapse() {
        let messy = StarQuery::count("q").with(Predicate::set("A", "x", vec![3, 1, 2, 3]));
        let c = canonicalize(&messy);
        // {1,2,3} is consecutive → a range.
        assert_eq!(c.predicates[0].constraint, Constraint::Range { lo: 1, hi: 3 });
        let single = StarQuery::count("q").with(Predicate::set("A", "x", vec![7, 7]));
        assert_eq!(canonicalize(&single).predicates[0].constraint, Constraint::Point(7));
        let sparse = StarQuery::count("q").with(Predicate::set("A", "x", vec![9, 1, 4]));
        assert_eq!(canonicalize(&sparse).predicates[0].constraint, Constraint::Set(vec![1, 4, 9]));
    }

    #[test]
    fn same_attr_constraints_intersect() {
        let q = StarQuery::count("q")
            .with(Predicate::range("A", "x", 0, 10))
            .with(Predicate::range("A", "x", 5, 20));
        let c = canonicalize(&q);
        assert_eq!(c.predicates.len(), 1);
        assert_eq!(c.predicates[0].constraint, Constraint::Range { lo: 5, hi: 10 });
        assert!(!c.unsatisfiable);

        let mixed = StarQuery::count("q")
            .with(Predicate::set("A", "x", vec![2, 4, 8]))
            .with(Predicate::range("A", "x", 3, 9));
        assert_eq!(canonicalize(&mixed).predicates[0].constraint, Constraint::Set(vec![4, 8]));
    }

    #[test]
    fn degenerate_single_constraints_are_unsatisfiable_not_panics() {
        // An empty IN-set matches nothing; canonicalization must stay total
        // even though domain validation would reject the query upstream.
        let empty_set = StarQuery::count("q").with(Predicate::set("A", "x", vec![]));
        let c = canonicalize(&empty_set);
        assert!(c.unsatisfiable);
        assert!(c.predicates.is_empty());
        // An inverted range also matches nothing.
        let inverted = StarQuery::count("q").with(Predicate::range("A", "x", 5, 2));
        assert!(canonicalize(&inverted).unsatisfiable);
        // Both canonicalize equal to a point-contradiction query: all three
        // return the empty result on every instance.
        let contradiction = StarQuery::count("q")
            .with(Predicate::point("A", "x", 1))
            .with(Predicate::point("A", "x", 2));
        assert_eq!(canonicalize(&inverted), canonicalize(&contradiction));
    }

    #[test]
    fn contradiction_is_unsatisfiable() {
        let q = StarQuery::count("q")
            .with(Predicate::point("A", "x", 1))
            .with(Predicate::point("A", "x", 2));
        let c = canonicalize(&q);
        assert!(c.unsatisfiable);
        assert!(c.predicates.is_empty());
        // Disjoint sets, too.
        let q2 = StarQuery::count("q")
            .with(Predicate::set("A", "x", vec![1, 3]))
            .with(Predicate::set("A", "x", vec![2, 4]));
        assert!(canonicalize(&q2).unsatisfiable);
    }

    #[test]
    fn different_attrs_stay_separate() {
        let q = StarQuery::count("q")
            .with(Predicate::point("A", "x", 1))
            .with(Predicate::point("A", "y", 2));
        let c = canonicalize(&q);
        assert_eq!(c.predicates.len(), 2);
        assert!(!c.unsatisfiable);
    }

    #[test]
    fn group_by_sorts_and_dedups() {
        let a = StarQuery::count("q")
            .group_by(GroupAttr::new("D", "year"))
            .group_by(GroupAttr::new("C", "nation"))
            .group_by(GroupAttr::new("D", "year"));
        let b = StarQuery::count("q")
            .group_by(GroupAttr::new("C", "nation"))
            .group_by(GroupAttr::new("D", "year"));
        assert_eq!(canonicalize(&a), canonicalize(&b));
        assert_eq!(canonicalize(&a).group_by.len(), 2);
    }

    #[test]
    fn distinct_queries_stay_distinct() {
        let a = StarQuery::count("q").with(Predicate::point("A", "x", 1));
        let b = StarQuery::count("q").with(Predicate::point("A", "x", 2));
        assert_ne!(canonicalize(&a), canonicalize(&b));
        let s = StarQuery::sum("q", "qty").with(Predicate::point("A", "x", 1));
        assert_ne!(canonicalize(&a), canonicalize(&s));
    }

    #[test]
    fn to_query_round_trips_semantics() {
        let q = StarQuery::count("orig")
            .with(Predicate::range("A", "x", 2, 2))
            .with(Predicate::point("B", "y", 0));
        let c = canonicalize(&q);
        let rebuilt = c.to_query("rebuilt");
        assert_eq!(rebuilt.name, "rebuilt");
        assert_eq!(canonicalize(&rebuilt), c, "canonicalization is idempotent");
    }

    #[test]
    fn implication_is_symbolic_containment() {
        let range = |lo, hi| Constraint::Range { lo, hi };
        // Span ⊆ span, point ⊆ span, reflexive.
        assert!(implies(&Constraint::Point(3), &range(1, 5)));
        assert!(implies(&range(2, 4), &range(1, 5)));
        assert!(implies(&range(1, 5), &range(1, 5)));
        assert!(!implies(&range(1, 5), &range(2, 4)));
        assert!(!implies(&range(1, 5), &Constraint::Point(3)));
        // Sets vs spans (both directions) and set vs set.
        assert!(implies(&Constraint::Set(vec![2, 4]), &range(1, 5)));
        assert!(!implies(&Constraint::Set(vec![2, 6]), &range(1, 5)));
        assert!(implies(&range(2, 3), &Constraint::Set(vec![1, 2, 3, 7])));
        assert!(!implies(&range(2, 4), &Constraint::Set(vec![1, 2, 3, 7])));
        assert!(implies(&Constraint::Set(vec![7, 2]), &Constraint::Set(vec![1, 2, 3, 7])));
        assert!(!implies(&Constraint::Set(vec![2, 8]), &Constraint::Set(vec![1, 2, 3, 7])));
        // A huge span can't hide in a small set (and must not enumerate).
        assert!(!implies(&range(0, u32::MAX), &Constraint::Set(vec![1, 2, 3])));
        // Unsatisfiable constraints imply anything; nothing implies them.
        assert!(implies(&Constraint::Set(vec![]), &Constraint::Point(0)));
        assert!(implies(&range(5, 1), &Constraint::Point(0)));
        assert!(!implies(&Constraint::Point(0), &Constraint::Set(vec![])));
    }
}
