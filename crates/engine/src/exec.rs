//! Star-join execution over compiled scan plans.
//!
//! Execution separates **planning** from **scanning** ([`crate::plan`]):
//!
//! 1. **Plan.** Foreign-key arrays, per-dimension packed pass bitsets
//!    (snowflake predicates folded into their parents), weight tables,
//!    group lookups and row-weight accessors are resolved once into a
//!    [`ScanPlan`].
//! 2. **Scan.** One chunked, columnar pass over the fact table answers
//!    *every* query in the plan — the fused multi-query kernel that lets a
//!    workload of `l` queries cost a single scan, optionally sharded
//!    across threads ([`ScanOptions::threads`]).
//!
//! [`execute`] and [`execute_weighted`] remain the single-query entry
//! points (now thin wrappers over one-query plans); [`execute_batch`] and
//! [`execute_weighted_batch`] are the fused forms. The legacy row-at-a-time
//! executor survives verbatim in [`reference`] as the semantic oracle for
//! equivalence tests and the baseline for scan benchmarks.

use crate::error::EngineError;
use crate::plan::{ScanOptions, ScanPlan, WeightedQuery};
use crate::predicate::WeightedPredicate;
use crate::query::{Agg, QueryResult, StarQuery};
use crate::schema::StarSchema;

/// Executes a star-join query, returning a scalar or group map.
pub fn execute(schema: &StarSchema, query: &StarQuery) -> Result<QueryResult, EngineError> {
    execute_with(schema, query, ScanOptions::default())
}

/// [`execute`] with explicit scan options (threads, cost-model sampling, probe caps).
pub fn execute_with(
    schema: &StarSchema,
    query: &StarQuery,
    options: ScanOptions,
) -> Result<QueryResult, EngineError> {
    let mut plan = ScanPlan::with_options(schema, options)?;
    plan.add_query(query)?;
    Ok(plan.execute(options).pop().expect("one planned query yields one result"))
}

/// Answers a batch of star-join queries in **one** fused scan of the fact
/// table, returning results in input order. Equivalent to mapping
/// [`execute`] but pays the fact scan once instead of `queries.len()`
/// times.
pub fn execute_batch(
    schema: &StarSchema,
    queries: &[StarQuery],
) -> Result<Vec<QueryResult>, EngineError> {
    execute_batch_with(schema, queries, ScanOptions::default())
}

/// [`execute_batch`] with explicit scan options (threads, cost-model sampling, probe caps).
pub fn execute_batch_with(
    schema: &StarSchema,
    queries: &[StarQuery],
    options: ScanOptions,
) -> Result<Vec<QueryResult>, EngineError> {
    let mut plan = ScanPlan::with_options(schema, options)?;
    for q in queries {
        plan.add_query(q)?;
    }
    Ok(plan.execute(options))
}

/// Executes the weighted (real-valued predicate) form: the result is
/// `Σ_rows Π_dims w_dim(attr(fk)) · w(row)`. Dimensions without a weighted
/// predicate contribute factor 1.
pub fn execute_weighted(
    schema: &StarSchema,
    predicates: &[WeightedPredicate],
    agg: &Agg,
) -> Result<f64, EngineError> {
    let mut plan = ScanPlan::with_options(schema, ScanOptions::default())?;
    plan.add_weighted(predicates, agg)?;
    plan.execute(ScanOptions::default())
        .pop()
        .expect("one planned query yields one result")
        .scalar()
}

/// Answers a batch of weighted queries in **one** fused scan of the fact
/// table, returning scalars in input order — how Workload Decomposition
/// answers all `l` reconstructed workload rows with a single scan.
pub fn execute_weighted_batch(
    schema: &StarSchema,
    queries: &[WeightedQuery],
) -> Result<Vec<f64>, EngineError> {
    execute_weighted_batch_with(schema, queries, ScanOptions::default())
}

/// [`execute_weighted_batch`] with explicit scan options (threads, cost-model sampling, probe caps).
pub fn execute_weighted_batch_with(
    schema: &StarSchema,
    queries: &[WeightedQuery],
    options: ScanOptions,
) -> Result<Vec<f64>, EngineError> {
    let mut plan = ScanPlan::with_options(schema, options)?;
    for q in queries {
        plan.add_weighted(&q.predicates, &q.agg)?;
    }
    plan.execute(options).into_iter().map(|r| r.scalar()).collect()
}

pub mod reference {
    //! The original row-at-a-time executor over `Vec<bool>` bitmaps, kept
    //! verbatim as the semantic oracle: equivalence property tests pin the
    //! vectorized kernels to it, and `scan_throughput` benches against it.

    use super::*;
    use crate::plan::RowWeight;
    use crate::predicate::Predicate;
    use std::collections::BTreeMap;

    /// Row-at-a-time [`super::execute`]: per-dimension `Vec<bool>` bitmaps,
    /// then one closure-dispatched scan of the fact table.
    pub fn execute(schema: &StarSchema, query: &StarQuery) -> Result<QueryResult, EngineError> {
        // Phase 1: per-dimension pass bitmaps.
        let bitmaps = dimension_bitmaps(schema, &query.predicates)?;

        // Group-by lookups: per group attribute, (dim index, codes by pk).
        let mut group_lookups: Vec<(usize, &[u32])> = Vec::with_capacity(query.group_by.len());
        for g in &query.group_by {
            let di = schema.dim_index(&g.table)?;
            let codes = schema.dims()[di].table.codes(&g.attr)?;
            group_lookups.push((di, codes));
        }

        // Per-dimension fk arrays, fetched once.
        let fks: Vec<&[u32]> =
            schema.dims().iter().map(|d| schema.fact().key(&d.fk)).collect::<Result<_, _>>()?;

        let weight = RowWeight::resolve(schema, &query.agg)?;
        let fact_rows = schema.fact().num_rows();

        if query.group_by.is_empty() {
            let mut total = 0.0;
            for row in 0..fact_rows {
                if row_passes(&bitmaps, &fks, row) {
                    total += weight.at(row);
                }
            }
            Ok(QueryResult::Scalar(total))
        } else {
            let mut groups: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
            let mut key = vec![0u32; group_lookups.len()];
            for row in 0..fact_rows {
                if row_passes(&bitmaps, &fks, row) {
                    for (slot, (di, codes)) in key.iter_mut().zip(&group_lookups) {
                        *slot = codes[fks[*di][row] as usize];
                    }
                    *groups.entry(key.clone()).or_insert(0.0) += weight.at(row);
                }
            }
            Ok(QueryResult::Groups(groups))
        }
    }

    /// Row-at-a-time [`super::execute_weighted`].
    pub fn execute_weighted(
        schema: &StarSchema,
        predicates: &[WeightedPredicate],
        agg: &Agg,
    ) -> Result<f64, EngineError> {
        // Per-dimension weight tables indexed by pk (product over multiple
        // weighted predicates on the same dimension).
        let mut tables: Vec<Option<Vec<f64>>> = vec![None; schema.num_dims()];
        for wp in predicates {
            let di = schema.dim_index(&wp.table)?;
            let dim = &schema.dims()[di];
            let codes = dim.table.codes(&wp.attr)?;
            let domain = dim.table.domain(&wp.attr)?;
            if wp.weights.len() != domain.size() as usize {
                return Err(EngineError::WeightLengthMismatch {
                    attr: wp.attr.clone(),
                    got: wp.weights.len(),
                    expected: domain.size(),
                });
            }
            let table = tables[di].get_or_insert_with(|| vec![1.0; dim.table.num_rows()]);
            for (slot, &code) in table.iter_mut().zip(codes) {
                *slot *= wp.weights[code as usize];
            }
        }

        let fks: Vec<&[u32]> =
            schema.dims().iter().map(|d| schema.fact().key(&d.fk)).collect::<Result<_, _>>()?;
        let weight = RowWeight::resolve(schema, agg)?;

        let mut total = 0.0;
        for row in 0..schema.fact().num_rows() {
            let mut w = weight.at(row);
            if w == 0.0 {
                continue;
            }
            for (di, table) in tables.iter().enumerate() {
                if let Some(t) = table {
                    w *= t[fks[di][row] as usize];
                    if w == 0.0 {
                        break;
                    }
                }
            }
            total += w;
        }
        Ok(total)
    }

    /// Builds per-dimension pass bitmaps for a predicate conjunction;
    /// `None` means "no predicate on this dimension" (all rows pass).
    pub(crate) fn dimension_bitmaps(
        schema: &StarSchema,
        predicates: &[Predicate],
    ) -> Result<Vec<Option<Vec<bool>>>, EngineError> {
        let mut bitmaps: Vec<Option<Vec<bool>>> = vec![None; schema.num_dims()];
        for pred in predicates {
            // Star predicate: directly on a dimension.
            if let Ok(di) = schema.dim_index(&pred.table) {
                let dim = &schema.dims()[di];
                let codes = dim.table.codes(&pred.attr)?;
                let domain = dim.table.domain(&pred.attr)?;
                pred.constraint.validate(domain)?;
                let bitmap = bitmaps[di].get_or_insert_with(|| vec![true; dim.table.num_rows()]);
                for (slot, &code) in bitmap.iter_mut().zip(codes) {
                    *slot = *slot && pred.constraint.matches(code);
                }
                continue;
            }
            // Snowflake predicate: on a sub-dimension, folded into the parent.
            if let Some((parent, sub)) = schema.subdim(&pred.table) {
                let sub_codes = sub.table.codes(&pred.attr)?;
                let domain = sub.table.domain(&pred.attr)?;
                pred.constraint.validate(domain)?;
                let sub_pass: Vec<bool> =
                    sub_codes.iter().map(|&c| pred.constraint.matches(c)).collect();
                let link = parent.table.key(&sub.fk_in_dim)?;
                let di = schema.dim_index(parent.table.name())?;
                let bitmap = bitmaps[di].get_or_insert_with(|| vec![true; parent.table.num_rows()]);
                for (slot, &sk) in bitmap.iter_mut().zip(link) {
                    *slot = *slot && sub_pass[sk as usize];
                }
                continue;
            }
            return Err(EngineError::UnknownTable(pred.table.clone()));
        }
        Ok(bitmaps)
    }

    #[inline]
    fn row_passes(bitmaps: &[Option<Vec<bool>>], fks: &[&[u32]], row: usize) -> bool {
        bitmaps.iter().enumerate().all(|(di, b)| match b {
            Some(bits) => bits[fks[di][row] as usize],
            None => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::domain::Domain;
    use crate::predicate::Predicate;
    use crate::query::GroupAttr;
    use crate::schema::{Dimension, SubDimension};
    use crate::table::Table;

    /// Two dimensions (A: 3 rows, B: 2 rows), 6 fact rows.
    ///
    /// A.attr = [0, 1, 2]; B.attr = [0, 1]
    /// fact fk_a = [0, 0, 1, 1, 2, 2], fk_b = [0, 1, 0, 1, 0, 1]
    /// fact qty  = [1, 2, 3, 4, 5, 6], cost = [1, 1, 1, 1, 1, 1]
    fn schema() -> StarSchema {
        let da = Domain::numeric("attr", 3).unwrap();
        let db = Domain::numeric("attr", 2).unwrap();
        let a = Table::new(
            "A",
            vec![Column::key("pk", vec![0, 1, 2]), Column::attr("attr", da, vec![0, 1, 2])],
        )
        .unwrap();
        let b = Table::new(
            "B",
            vec![Column::key("pk", vec![0, 1]), Column::attr("attr", db, vec![0, 1])],
        )
        .unwrap();
        let fact = Table::new(
            "F",
            vec![
                Column::key("fk_a", vec![0, 0, 1, 1, 2, 2]),
                Column::key("fk_b", vec![0, 1, 0, 1, 0, 1]),
                Column::measure("qty", vec![1, 2, 3, 4, 5, 6]),
                Column::measure("cost", vec![1, 1, 1, 1, 1, 1]),
            ],
        )
        .unwrap();
        StarSchema::new(
            fact,
            vec![Dimension::new(a, "pk", "fk_a"), Dimension::new(b, "pk", "fk_b")],
        )
        .unwrap()
    }

    #[test]
    fn count_without_predicates_is_fact_size() {
        let s = schema();
        let q = StarQuery::count("all");
        assert_eq!(execute(&s, &q).unwrap().scalar().unwrap(), 6.0);
    }

    #[test]
    fn count_with_point_predicate() {
        let s = schema();
        let q = StarQuery::count("q").with(Predicate::point("A", "attr", 1));
        // fk_a == 1 → rows 2, 3.
        assert_eq!(execute(&s, &q).unwrap().scalar().unwrap(), 2.0);
    }

    #[test]
    fn conjunction_across_dimensions() {
        let s = schema();
        let q = StarQuery::count("q")
            .with(Predicate::range("A", "attr", 1, 2))
            .with(Predicate::point("B", "attr", 0));
        // fk_a ∈ {1,2} and fk_b == 0 → rows 2 and 4.
        assert_eq!(execute(&s, &q).unwrap().scalar().unwrap(), 2.0);
    }

    #[test]
    fn sum_and_sumdiff() {
        let s = schema();
        let q = StarQuery::sum("q", "qty").with(Predicate::point("B", "attr", 1));
        // rows 1, 3, 5 → qty 2 + 4 + 6 = 12.
        assert_eq!(execute(&s, &q).unwrap().scalar().unwrap(), 12.0);
        let q = StarQuery::sum_diff("q", "qty", "cost").with(Predicate::point("B", "attr", 1));
        assert_eq!(execute(&s, &q).unwrap().scalar().unwrap(), 9.0);
    }

    #[test]
    fn group_by_partitions_count() {
        let s = schema();
        let q = StarQuery::count("q").group_by(GroupAttr::new("A", "attr"));
        let res = execute(&s, &q).unwrap();
        let groups = res.groups().unwrap();
        assert_eq!(groups.len(), 3);
        for v in groups.values() {
            assert_eq!(*v, 2.0);
        }
        // Group totals must equal the ungrouped count.
        assert_eq!(groups.values().sum::<f64>(), 6.0);
    }

    #[test]
    fn group_by_two_attrs() {
        let s = schema();
        let q = StarQuery::sum("q", "qty")
            .group_by(GroupAttr::new("A", "attr"))
            .group_by(GroupAttr::new("B", "attr"));
        let res = execute(&s, &q).unwrap();
        let groups = res.groups().unwrap();
        assert_eq!(groups.len(), 6, "each (a,b) pair is its own group");
        assert_eq!(groups[&vec![2u32, 1u32]], 6.0);
    }

    #[test]
    fn conjunction_on_same_dimension_intersects() {
        // Two predicates on the same dim attr: only codes satisfying both.
        let s = schema();
        let q = StarQuery::count("q")
            .with(Predicate::range("A", "attr", 0, 1))
            .with(Predicate::range("A", "attr", 1, 2));
        assert_eq!(execute(&s, &q).unwrap().scalar().unwrap(), 2.0, "only attr==1 rows");
    }

    #[test]
    fn unknown_table_or_attr_errors() {
        let s = schema();
        let q = StarQuery::count("q").with(Predicate::point("Z", "attr", 0));
        assert!(matches!(execute(&s, &q), Err(EngineError::UnknownTable(_))));
        let q = StarQuery::count("q").with(Predicate::point("A", "ghost", 0));
        assert!(matches!(execute(&s, &q), Err(EngineError::UnknownColumn { .. })));
    }

    #[test]
    fn constraint_outside_domain_errors() {
        let s = schema();
        let q = StarQuery::count("q").with(Predicate::point("A", "attr", 17));
        assert!(matches!(execute(&s, &q), Err(EngineError::InvalidConstraint(_))));
    }

    #[test]
    fn weighted_execution_matches_binary_when_indicator() {
        let s = schema();
        // Weighted predicate == indicator of A.attr ∈ {1,2}.
        let wp = WeightedPredicate::new("A", "attr", vec![0.0, 1.0, 1.0]);
        let got = execute_weighted(&s, &[wp], &Agg::Count).unwrap();
        let q = StarQuery::count("q").with(Predicate::range("A", "attr", 1, 2));
        let want = execute(&s, &q).unwrap().scalar().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn weighted_execution_fractional_weights() {
        let s = schema();
        let wp = WeightedPredicate::new("A", "attr", vec![0.5, 0.0, 0.0]);
        // Rows with fk_a == 0 (rows 0, 1) each weigh 0.5 → 1.0.
        let got = execute_weighted(&s, &[wp], &Agg::Count).unwrap();
        assert!((got - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_multiplies_across_dimensions() {
        let s = schema();
        let wa = WeightedPredicate::new("A", "attr", vec![1.0, 0.5, 0.0]);
        let wb = WeightedPredicate::new("B", "attr", vec![0.0, 2.0]);
        // Row weights: fk_a factor × fk_b factor:
        // row0 (0,0): 1.0×0 = 0;  row1 (0,1): 1×2 = 2;
        // row2 (1,0): 0;          row3 (1,1): 0.5×2 = 1;
        // row4 (2,0): 0;          row5 (2,1): 0×2 = 0.  Total 3.
        let got = execute_weighted(&s, &[wa, wb], &Agg::Count).unwrap();
        assert!((got - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_wrong_length_errors() {
        let s = schema();
        let wp = WeightedPredicate::new("A", "attr", vec![1.0, 1.0]); // domain is 3
        assert!(matches!(
            execute_weighted(&s, &[wp], &Agg::Count),
            Err(EngineError::WeightLengthMismatch { .. })
        ));
    }

    #[test]
    fn snowflake_predicate_folds_into_parent() {
        // Sub-table S with attr [0, 1]; dim A rows link sk = [0, 1, 0].
        let ds = Domain::numeric("sattr", 2).unwrap();
        let sub = Table::new(
            "S",
            vec![Column::key("pk", vec![0, 1]), Column::attr("sattr", ds, vec![0, 1])],
        )
        .unwrap();
        let da = Domain::numeric("attr", 3).unwrap();
        let a = Table::new(
            "A",
            vec![
                Column::key("pk", vec![0, 1, 2]),
                Column::attr("attr", da, vec![0, 1, 2]),
                Column::key("sk", vec![0, 1, 0]),
            ],
        )
        .unwrap();
        let fact = Table::new(
            "F",
            vec![Column::key("fk_a", vec![0, 1, 2, 2]), Column::measure("qty", vec![1, 1, 1, 1])],
        )
        .unwrap();
        let dim = Dimension::new(a, "pk", "fk_a").with_subdim(SubDimension {
            table: sub,
            pk: "pk".into(),
            fk_in_dim: "sk".into(),
        });
        let schema = StarSchema::new(fact, vec![dim]).unwrap();
        // S.sattr == 0 admits dim rows {0, 2} → fact rows 0, 2, 3.
        let q = StarQuery::count("q").with(Predicate::point("S", "sattr", 0));
        assert_eq!(execute(&schema, &q).unwrap().scalar().unwrap(), 3.0);
        // Conjunction with a star predicate on the same dimension.
        let q = StarQuery::count("q")
            .with(Predicate::point("S", "sattr", 0))
            .with(Predicate::range("A", "attr", 2, 2));
        assert_eq!(execute(&schema, &q).unwrap().scalar().unwrap(), 2.0);
    }

    #[test]
    fn batch_matches_singles_and_reference() {
        let s = schema();
        let queries = vec![
            StarQuery::count("q0").with(Predicate::point("A", "attr", 1)),
            StarQuery::sum("q1", "qty").with(Predicate::point("B", "attr", 1)),
            StarQuery::count("q2")
                .with(Predicate::range("A", "attr", 0, 1))
                .group_by(GroupAttr::new("B", "attr")),
            StarQuery::count("q3"),
        ];
        let batch = execute_batch(&s, &queries).unwrap();
        let parallel = execute_batch_with(&s, &queries, ScanOptions::parallel(3)).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let oracle = reference::execute(&s, q).unwrap();
            assert_eq!(batch[i], oracle, "batch[{i}]");
            assert_eq!(parallel[i], oracle, "parallel[{i}]");
        }
    }

    #[test]
    fn weighted_batch_matches_reference() {
        let s = schema();
        let items = vec![
            WeightedQuery::count(vec![WeightedPredicate::new("A", "attr", vec![1.0, 0.5, 0.0])]),
            WeightedQuery {
                predicates: vec![WeightedPredicate::new("B", "attr", vec![0.25, 2.0])],
                agg: Agg::Sum("qty".into()),
            },
        ];
        let batch = execute_weighted_batch(&s, &items).unwrap();
        for (i, item) in items.iter().enumerate() {
            let oracle = reference::execute_weighted(&s, &item.predicates, &item.agg).unwrap();
            assert_eq!(batch[i], oracle, "weighted batch[{i}] must be bit-identical");
        }
    }

    #[test]
    fn batch_error_reports_offending_query() {
        let s = schema();
        let queries = vec![
            StarQuery::count("ok"),
            StarQuery::count("bad").with(Predicate::point("Z", "a", 0)),
        ];
        assert!(matches!(execute_batch(&s, &queries), Err(EngineError::UnknownTable(_))));
    }
}
