//! Error type for the relational engine.

use std::fmt;

/// Errors raised while building schemas or executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced table does not exist in the schema.
    UnknownTable(String),
    /// A referenced column does not exist in a table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// A column exists but has the wrong kind for the operation.
    WrongColumnKind {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// What the caller expected ("key", "attribute", "measure").
        expected: &'static str,
    },
    /// Two columns in one table share a name.
    DuplicateColumn(String),
    /// Columns in one table have different lengths.
    LengthMismatch {
        /// Table name.
        table: String,
    },
    /// A primary key is not dense (`pk[i] != i`).
    NonDensePrimaryKey {
        /// Table name.
        table: String,
    },
    /// A foreign key value exceeds the referenced table's row count.
    ForeignKeyOutOfRange {
        /// Fact/dimension column holding the dangling reference.
        column: String,
        /// The offending key value.
        value: u32,
        /// Number of rows in the referenced table.
        referenced_rows: usize,
    },
    /// An attribute code lies outside its declared domain.
    CodeOutOfDomain {
        /// Column name.
        column: String,
        /// Offending code.
        code: u32,
        /// Domain size.
        domain: u32,
    },
    /// A predicate constraint is malformed (e.g. `lo > hi`, empty set,
    /// constants outside the domain).
    InvalidConstraint(String),
    /// A weighted predicate's weight vector length differs from the domain.
    WeightLengthMismatch {
        /// Attribute name.
        attr: String,
        /// Supplied weights length.
        got: usize,
        /// Expected domain size.
        expected: u32,
    },
    /// Two tables in one schema (fact, dimensions, sub-dimensions) share a
    /// name, making predicate and group-by resolution ambiguous.
    DuplicateTable(String),
    /// The result was a group map but a scalar was requested, or vice versa.
    WrongResultShape(&'static str),
    /// Schema-level invariant violation with a free-form message.
    InvalidSchema(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            EngineError::WrongColumnKind { table, column, expected } => {
                write!(f, "column `{table}.{column}` is not a {expected} column")
            }
            EngineError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            EngineError::LengthMismatch { table } => {
                write!(f, "columns of table `{table}` have differing lengths")
            }
            EngineError::NonDensePrimaryKey { table } => {
                write!(f, "primary key of `{table}` must be dense (pk[i] == i)")
            }
            EngineError::ForeignKeyOutOfRange { column, value, referenced_rows } => write!(
                f,
                "foreign key `{column}` value {value} exceeds referenced table ({referenced_rows} rows)"
            ),
            EngineError::CodeOutOfDomain { column, code, domain } => {
                write!(f, "code {code} in column `{column}` outside domain of size {domain}")
            }
            EngineError::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            EngineError::WeightLengthMismatch { attr, got, expected } => write!(
                f,
                "weight vector for `{attr}` has length {got}, domain expects {expected}"
            ),
            EngineError::DuplicateTable(t) => {
                write!(f, "table name `{t}` appears more than once in the schema")
            }
            EngineError::WrongResultShape(expected) => {
                write!(f, "query result does not have the expected shape: {expected}")
            }
            EngineError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = EngineError::UnknownColumn { table: "Part".into(), column: "mfgr".into() };
        assert!(e.to_string().contains("Part") && e.to_string().contains("mfgr"));
        let e = EngineError::ForeignKeyOutOfRange {
            column: "CK".into(),
            value: 99,
            referenced_rows: 10,
        };
        assert!(e.to_string().contains("99"));
    }
}
