//! Per-chunk staging buffers and SIMD-width gather loops for the scan
//! kernel.
//!
//! PR 3's measurements showed the fused fact scan is **gather-compute
//! bound**: at 8 fused queries the kernel re-read every referenced
//! dimension's foreign-key array from main memory once *per query* per
//! chunk, and extracted each pass bit through a packed-bitset word index +
//! shift with a serial `gathered |=` dependency chain. This module is the
//! fix, in two halves:
//!
//! * [`ChunkStage`] — a cache-resident staging area. Each dimension's fk
//!   codes for the current 4096-row chunk are copied **once per chunk**
//!   (one `memcpy` into an L1/L2-resident buffer) and shared by every
//!   query in the fused batch; a dimension referenced only once is served
//!   straight from the source array (staging would be a pure copy tax).
//!   The same buffer set stages the histogram-plan joint flat codes once
//!   per chunk so every histogram kind drains a flat `u32` array.
//! * `gather_word_*` — the three probe-specialized inner loops that turn
//!   64 staged fk codes into one qualifying-row mask word. Each is an
//!   8-wide manually unrolled loop with a pairwise OR-combine tree, so the
//!   eight per-row probes are independent (no loop-carried dependency
//!   until the balanced 3-level combine) and LLVM can autovectorize /
//!   software-pipeline them — plain safe Rust, no `std::simd`, verified by
//!   the bench gate rather than asm inspection.
//!
//! Everything here is bit-order preserving: staged codes are exact copies,
//! the mask words are the same AND-conjunction the unstaged kernel
//! computed, and flat codes use the same integer recurrence as
//! `HistPlan::flat_index` — so results stay bit-identical to
//! [`crate::exec::reference`].

use crate::bitset::BitSet;

/// Rows per scan chunk (64 mask words of 64 rows). Re-exported into
/// [`crate::plan`]; lives here so the staging buffers and the chunk loop
/// can never disagree about geometry.
pub(crate) const CHUNK_ROWS: usize = 4096;
pub(crate) const CHUNK_WORDS: usize = CHUNK_ROWS / 64;

/// Cache-resident staging area for one scan chunk: per-dimension fk code
/// copies (only for dimensions referenced by ≥ 2 gathers per chunk) plus
/// the histogram-plan flat-code buffer.
#[derive(Debug)]
pub(crate) struct ChunkStage {
    /// Per dimension: the staged fk codes of the current chunk (empty for
    /// unstaged dimensions).
    bufs: Vec<Vec<u32>>,
    /// Which dimensions to stage, fixed for the whole scan.
    staged: Vec<bool>,
    /// Joint flat codes of the current chunk ([`ChunkStage::stage_flat`]).
    flat: Vec<u32>,
    chunk_start: usize,
    len: usize,
}

impl ChunkStage {
    /// A stage for a scan over `staged.len()` dimensions; `staged[di]`
    /// marks the dimensions worth copying (referenced at least twice per
    /// chunk).
    pub(crate) fn new(staged: Vec<bool>) -> Self {
        let bufs = staged
            .iter()
            .map(|&s| if s { Vec::with_capacity(CHUNK_ROWS) } else { Vec::new() })
            .collect();
        ChunkStage { bufs, staged, flat: Vec::with_capacity(CHUNK_ROWS), chunk_start: 0, len: 0 }
    }

    /// Rows in the current chunk.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Begins a chunk: copies the staged dimensions' fk codes for rows
    /// `[chunk_start, chunk_start + len)` into the staging buffers.
    pub(crate) fn begin(&mut self, fks: &[&[u32]], chunk_start: usize, len: usize) {
        self.chunk_start = chunk_start;
        self.len = len;
        for (di, buf) in self.bufs.iter_mut().enumerate() {
            if self.staged[di] {
                buf.clear();
                buf.extend_from_slice(&fks[di][chunk_start..chunk_start + len]);
            }
        }
    }

    /// The chunk's fk codes for dimension `di`: the staged copy when one
    /// exists, else a direct slice of the source array.
    #[inline]
    pub(crate) fn dim<'s>(&'s self, fks: &'s [&[u32]], di: usize) -> &'s [u32] {
        if self.staged[di] {
            &self.bufs[di]
        } else {
            &fks[di][self.chunk_start..self.chunk_start + self.len]
        }
    }

    /// Stages the chunk's joint flat codes over `axes` (the histogram
    /// program's `(dim, codes, domain)` list), axis-major: the same
    /// `flat = flat · domain + code` integer recurrence as
    /// `HistPlan::flat_index`, so the staged values are exactly the per-row
    /// ones. Returns the staged buffer.
    pub(crate) fn stage_flat(&mut self, fks: &[&[u32]], axes: &[(usize, &[u32], usize)]) -> &[u32] {
        self.flat.clear();
        self.flat.resize(self.len, 0);
        for &(di, codes, domain) in axes {
            let fk: &[u32] = if self.staged[di] {
                &self.bufs[di]
            } else {
                &fks[di][self.chunk_start..self.chunk_start + self.len]
            };
            let domain = domain as u32;
            for (slot, &k) in self.flat.iter_mut().zip(fk) {
                *slot = *slot * domain + codes[k as usize];
            }
        }
        &self.flat
    }
}

/// Gathers one mask word from a dimension of ≤ 64 rows: the whole pass
/// bitset lives in the `table` register, so each probe is a shift + AND.
/// 8-wide unrolled with a pairwise OR-combine tree — the eight probes are
/// independent and the combine is a balanced 3-level reduction, so nothing
/// in the oct carries a dependency chain longer than three ORs.
#[inline]
pub(crate) fn gather_word_small(table: u64, fk: &[u32]) -> u64 {
    debug_assert!(fk.len() <= 64);
    let mut gathered = 0u64;
    let octs = fk.len() & !7;
    let mut i = 0;
    while i < octs {
        let b0 = (table >> fk[i]) & 1;
        let b1 = (table >> fk[i + 1]) & 1;
        let b2 = (table >> fk[i + 2]) & 1;
        let b3 = (table >> fk[i + 3]) & 1;
        let b4 = (table >> fk[i + 4]) & 1;
        let b5 = (table >> fk[i + 5]) & 1;
        let b6 = (table >> fk[i + 6]) & 1;
        let b7 = (table >> fk[i + 7]) & 1;
        let lo = (b0 | (b1 << 1)) | ((b2 | (b3 << 1)) << 2);
        let hi = (b4 | (b5 << 1)) | ((b6 | (b7 << 1)) << 2);
        gathered |= (lo | (hi << 4)) << i;
        i += 8;
    }
    while i < fk.len() {
        gathered |= ((table >> fk[i]) & 1) << i;
        i += 1;
    }
    gathered
}

/// Gathers one mask word through a byte-granular `{0, 1}` lookup table
/// (dimensions of ≤ 2^16 rows): each probe is one byte load, 8-wide
/// unrolled with a pairwise OR-combine tree (eight independent loads in
/// flight per iteration).
#[inline]
pub(crate) fn gather_word_bytes(lut: &[u8], fk: &[u32]) -> u64 {
    debug_assert!(fk.len() <= 64);
    let mut gathered = 0u64;
    let octs = fk.len() & !7;
    let mut i = 0;
    while i < octs {
        let b0 = lut[fk[i] as usize] as u64;
        let b1 = lut[fk[i + 1] as usize] as u64;
        let b2 = lut[fk[i + 2] as usize] as u64;
        let b3 = lut[fk[i + 3] as usize] as u64;
        let b4 = lut[fk[i + 4] as usize] as u64;
        let b5 = lut[fk[i + 5] as usize] as u64;
        let b6 = lut[fk[i + 6] as usize] as u64;
        let b7 = lut[fk[i + 7] as usize] as u64;
        let lo = (b0 | (b1 << 1)) | ((b2 | (b3 << 1)) << 2);
        let hi = (b4 | (b5 << 1)) | ((b6 | (b7 << 1)) << 2);
        gathered |= (lo | (hi << 4)) << i;
        i += 8;
    }
    while i < fk.len() {
        gathered |= (lut[fk[i] as usize] as u64) << i;
        i += 1;
    }
    gathered
}

/// Gathers one mask word from a packed bitset (dimensions past the byte-LUT
/// cap): word index + shift per probe, 8-wide unrolled with a pairwise
/// OR-combine tree.
#[inline]
pub(crate) fn gather_word_wide(bits: &BitSet, fk: &[u32]) -> u64 {
    debug_assert!(fk.len() <= 64);
    let mut gathered = 0u64;
    let octs = fk.len() & !7;
    let mut i = 0;
    while i < octs {
        let b0 = bits.get_bit(fk[i] as usize);
        let b1 = bits.get_bit(fk[i + 1] as usize);
        let b2 = bits.get_bit(fk[i + 2] as usize);
        let b3 = bits.get_bit(fk[i + 3] as usize);
        let b4 = bits.get_bit(fk[i + 4] as usize);
        let b5 = bits.get_bit(fk[i + 5] as usize);
        let b6 = bits.get_bit(fk[i + 6] as usize);
        let b7 = bits.get_bit(fk[i + 7] as usize);
        let lo = (b0 | (b1 << 1)) | ((b2 | (b3 << 1)) << 2);
        let hi = (b4 | (b5 << 1)) | ((b6 | (b7 << 1)) << 2);
        gathered |= (lo | (hi << 4)) << i;
        i += 8;
    }
    while i < fk.len() {
        gathered |= bits.get_bit(fk[i] as usize) << i;
        i += 1;
    }
    gathered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_gather(pass: impl Fn(u32) -> bool, fk: &[u32]) -> u64 {
        fk.iter().enumerate().fold(0u64, |m, (i, &k)| m | (u64::from(pass(k)) << i))
    }

    #[test]
    fn gather_loops_match_reference_at_every_lane_count() {
        // Every lane count 0..=64 exercises both the unrolled quads and the
        // scalar tail (including the boundary where one is empty).
        let bits = BitSet::from_fn(64, |i| i % 3 == 0 || i == 63);
        let word = bits.words()[0];
        let lut = bits.to_byte_lut();
        for lanes in 0..=64usize {
            let fk: Vec<u32> = (0..lanes).map(|i| ((i * 7) % 64) as u32).collect();
            let want = reference_gather(|k| bits.get(k as usize), &fk);
            assert_eq!(gather_word_small(word, &fk), want, "small, {lanes} lanes");
            assert_eq!(gather_word_bytes(&lut, &fk), want, "bytes, {lanes} lanes");
            assert_eq!(gather_word_wide(&bits, &fk), want, "wide, {lanes} lanes");
        }
    }

    #[test]
    fn wide_gather_crosses_word_boundaries() {
        let bits = BitSet::from_fn(200, |i| i % 5 == 0);
        let fk: Vec<u32> = (0..64).map(|i| ((i * 13) % 200) as u32).collect();
        let want = reference_gather(|k| bits.get(k as usize), &fk);
        assert_eq!(gather_word_wide(&bits, &fk), want);
        assert_eq!(gather_word_bytes(&bits.to_byte_lut(), &fk), want);
    }

    #[test]
    fn stage_copies_only_marked_dimensions() {
        let fk0: Vec<u32> = (0..100).collect();
        let fk1: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let fks: Vec<&[u32]> = vec![&fk0, &fk1];
        let mut stage = ChunkStage::new(vec![true, false]);
        stage.begin(&fks, 10, 20);
        assert_eq!(stage.len(), 20);
        assert_eq!(stage.dim(&fks, 0), &fk0[10..30], "staged copy");
        assert_eq!(stage.dim(&fks, 1), &fk1[10..30], "pass-through slice");
        // A second chunk replaces the staged contents.
        stage.begin(&fks, 40, 5);
        assert_eq!(stage.dim(&fks, 0), &fk0[40..45]);
    }

    #[test]
    fn staged_flat_codes_match_per_row_recurrence() {
        let fk0: Vec<u32> = vec![0, 1, 2, 0, 1];
        let fk1: Vec<u32> = vec![1, 0, 1, 1, 0];
        let fks: Vec<&[u32]> = vec![&fk0, &fk1];
        let codes0: Vec<u32> = vec![2, 0, 1];
        let codes1: Vec<u32> = vec![1, 0];
        let axes: Vec<(usize, &[u32], usize)> = vec![(0, &codes0, 3), (1, &codes1, 2)];
        let mut stage = ChunkStage::new(vec![true, false]);
        stage.begin(&fks, 0, 5);
        let flat = stage.stage_flat(&fks, &axes);
        let want: Vec<u32> = (0..5)
            .map(|row| {
                let mut f = 0u32;
                for &(di, codes, domain) in &axes {
                    f = f * domain as u32 + codes[fks[di][row] as usize];
                }
                f
            })
            .collect();
        assert_eq!(flat, &want[..]);
    }
}
