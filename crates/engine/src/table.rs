//! Named columnar tables.

use crate::column::Column;
use crate::domain::Domain;
use crate::error::EngineError;
use std::collections::HashMap;

/// An in-memory columnar table: equally long, uniquely named columns.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
    rows: usize,
}

impl Table {
    /// Builds a table; validates equal column lengths, unique names, and that
    /// every attribute code lies inside its declared domain.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self, EngineError> {
        let name = name.into();
        if columns.is_empty() {
            return Err(EngineError::InvalidSchema(format!("table `{name}` has no columns")));
        }
        let rows = columns[0].len();
        if columns.iter().any(|c| c.len() != rows) {
            return Err(EngineError::LengthMismatch { table: name });
        }
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name().to_string(), i).is_some() {
                return Err(EngineError::DuplicateColumn(c.name().to_string()));
            }
            if let (Some(codes), Some(domain)) = (c.as_codes(), c.domain()) {
                if let Some(&bad) = codes.iter().find(|&&v| !domain.contains(v)) {
                    return Err(EngineError::CodeOutOfDomain {
                        column: c.name().to_string(),
                        code: bad,
                        domain: domain.size(),
                    });
                }
            }
        }
        Ok(Table { name, columns, by_name, rows })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// All columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// True iff a column with this name exists.
    pub fn has_column(&self, column: &str) -> bool {
        self.by_name.contains_key(column)
    }

    /// Looks up a column by name.
    pub fn column(&self, column: &str) -> Result<&Column, EngineError> {
        self.by_name.get(column).map(|&i| &self.columns[i]).ok_or_else(|| {
            EngineError::UnknownColumn { table: self.name.clone(), column: column.to_string() }
        })
    }

    /// Key values of a key column.
    pub fn key(&self, column: &str) -> Result<&[u32], EngineError> {
        self.column(column)?.as_key().ok_or_else(|| EngineError::WrongColumnKind {
            table: self.name.clone(),
            column: column.to_string(),
            expected: "key",
        })
    }

    /// Codes of an attribute column.
    pub fn codes(&self, column: &str) -> Result<&[u32], EngineError> {
        self.column(column)?.as_codes().ok_or_else(|| EngineError::WrongColumnKind {
            table: self.name.clone(),
            column: column.to_string(),
            expected: "attribute",
        })
    }

    /// Values of a measure column.
    pub fn measure(&self, column: &str) -> Result<&[i64], EngineError> {
        self.column(column)?.as_measure().ok_or_else(|| EngineError::WrongColumnKind {
            table: self.name.clone(),
            column: column.to_string(),
            expected: "measure",
        })
    }

    /// Domain of an attribute column.
    pub fn domain(&self, column: &str) -> Result<&Domain, EngineError> {
        self.column(column)?.domain().ok_or_else(|| EngineError::WrongColumnKind {
            table: self.name.clone(),
            column: column.to_string(),
            expected: "attribute",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let d = Domain::numeric("color", 3).unwrap();
        Table::new(
            "t",
            vec![
                Column::key("pk", vec![0, 1, 2, 3]),
                Column::attr("color", d, vec![0, 1, 2, 1]),
                Column::measure("price", vec![5, 10, 15, 20]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.key("pk").unwrap(), &[0, 1, 2, 3]);
        assert_eq!(t.codes("color").unwrap(), &[0, 1, 2, 1]);
        assert_eq!(t.measure("price").unwrap(), &[5, 10, 15, 20]);
        assert_eq!(t.domain("color").unwrap().size(), 3);
        assert!(t.has_column("pk") && !t.has_column("nope"));
        assert_eq!(t.columns().len(), 3);
    }

    #[test]
    fn wrong_kind_errors() {
        let t = sample();
        assert!(matches!(t.key("color"), Err(EngineError::WrongColumnKind { .. })));
        assert!(matches!(t.codes("pk"), Err(EngineError::WrongColumnKind { .. })));
        assert!(matches!(t.measure("color"), Err(EngineError::WrongColumnKind { .. })));
        assert!(matches!(t.domain("price"), Err(EngineError::WrongColumnKind { .. })));
        assert!(matches!(t.column("ghost"), Err(EngineError::UnknownColumn { .. })));
    }

    #[test]
    fn validation_rejects_bad_tables() {
        assert!(Table::new("empty", vec![]).is_err());
        let err =
            Table::new("ragged", vec![Column::key("a", vec![0]), Column::key("b", vec![0, 1])]);
        assert!(matches!(err, Err(EngineError::LengthMismatch { .. })));
        let err = Table::new("dup", vec![Column::key("a", vec![0]), Column::key("a", vec![1])]);
        assert!(matches!(err, Err(EngineError::DuplicateColumn(_))));
        let d = Domain::numeric("x", 2).unwrap();
        let err = Table::new("bad_code", vec![Column::attr("x", d, vec![0, 5])]);
        assert!(matches!(err, Err(EngineError::CodeOutOfDomain { .. })));
    }
}
