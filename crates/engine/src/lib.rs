//! Columnar star/snowflake-schema relational engine.
//!
//! This crate is the data substrate of the DP-starJ reproduction: an
//! in-memory, columnar implementation of exactly the relational fragment the
//! paper queries — a star schema (`R0 ⋈ R1 ⋈ … ⋈ Rn`, Definition 1.1) whose
//! fact table references each dimension through a foreign key, with
//! conjunctive point/range predicates on dimension attributes and
//! COUNT / SUM / GROUP BY aggregation over fact measures.
//!
//! Key representation choices (documented because the mechanisms rely on
//! them):
//!
//! * **Dense primary keys.** Every dimension's primary key is its row index
//!   (`pk[i] == i`), validated at schema construction. Fact foreign keys then
//!   index dimension rows directly, making the star join a bitmap semi-join
//!   — the execution strategy real OLAP engines use for star queries.
//! * **Coded attributes.** Dimension attributes are categorical/ordinal codes
//!   `0..domain`, mirroring the paper's finite domains `dom(a_i)` whose sizes
//!   calibrate the Predicate Mechanism noise.
//! * **Weighted predicates.** Besides 0/1 constraints, the engine evaluates
//!   real-valued weight vectors over a domain — the `Q = Φ·W` formulation
//!   (paper Eq. 11) that Workload Decomposition's reconstructed predicate
//!   matrices require.
//! * **One-level snowflake.** A dimension may reference sub-dimension tables
//!   (the paper's Date → Month normalization, §5.3); sub-dimension predicates
//!   are resolved into parent-dimension bitmaps before the fact scan.
//!
//! # Example
//!
//! ```
//! use starj_engine::{
//!     execute, Column, Dimension, Domain, Predicate, StarQuery, StarSchema, Table,
//! };
//!
//! // One dimension (3 products), five fact rows.
//! let category = Domain::categorical("category", vec!["FOOD", "TOYS"]).unwrap();
//! let product = Table::new("Product", vec![
//!     Column::key("pk", vec![0, 1, 2]),
//!     Column::attr("category", category, vec![0, 0, 1]),
//! ]).unwrap();
//! let sales = Table::new("Sales", vec![
//!     Column::key("product", vec![0, 0, 1, 2, 2]),
//!     Column::measure("amount", vec![10, 20, 5, 7, 3]),
//! ]).unwrap();
//! let schema = StarSchema::new(sales, vec![Dimension::new(product, "pk", "product")]).unwrap();
//!
//! // SELECT sum(amount) FROM Sales, Product WHERE category = 'FOOD'.
//! let q = StarQuery::sum("food_sales", "amount")
//!     .with(Predicate::point("Product", "category", 0));
//! assert_eq!(execute(&schema, &q).unwrap().scalar().unwrap(), 35.0);
//! ```

pub mod bitset;
pub mod canon;
pub mod column;
pub mod cost;
pub mod domain;
pub mod error;
pub mod exec;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod sql;
mod stage;
pub mod stats;
pub mod table;

pub use bitset::BitSet;
pub use canon::{canonicalize, implies, CanonicalQuery};
pub use column::{Column, ColumnData};
pub use cost::{
    cost_model_for, invalidate_cost_model, CostConfig, CostModel, DimensionStats,
    PredicateEstimate, DEFAULT_COST_SAMPLES,
};
pub use domain::Domain;
pub use error::EngineError;
pub use exec::{
    execute, execute_batch, execute_batch_with, execute_weighted, execute_weighted_batch,
    execute_weighted_batch_with, execute_with,
};
pub use plan::{
    fact_scan_count, CostModelExplain, DimExplain, FilterExplain, PlanExplain, QueryExplain,
    ScanOptions, ScanPlan, WeightHistogram, WeightedQuery, DENSE_GROUP_CAP,
};
pub use predicate::{Constraint, Predicate, WeightedPredicate};
pub use query::{Agg, GroupAttr, QueryResult, StarQuery};
pub use schema::{Dimension, StarSchema, SubDimension};
pub use sql::{escape_label, to_sql, unescape_label};
pub use stats::{contributions, max_contribution, Contributions};
pub use table::Table;
