//! SQL rendering for star-join queries.
//!
//! The paper specifies its workloads as SQL (Appendix A); rendering a
//! [`StarQuery`] back to the equivalent SELECT statement makes experiment
//! logs auditable against the paper's text and gives downstream users a
//! familiar surface for inspecting the *noisy* queries PM produces.

use crate::predicate::{Constraint, Predicate};
use crate::query::{Agg, StarQuery};
use crate::schema::StarSchema;
use std::fmt::Write;

/// Renders a query as a SQL SELECT statement against a schema.
///
/// Labelled domains print their labels (`Customer.region = 'ASIA'`);
/// numeric domains print codes. The join conditions are derived from the
/// schema's foreign keys, including snowflake sub-dimension links for
/// predicates that reference sub-tables.
pub fn to_sql(schema: &StarSchema, query: &StarQuery) -> String {
    let mut tables: Vec<String> = vec![schema.fact().name().to_string()];
    let mut joins: Vec<String> = Vec::new();

    // Dimensions referenced by predicates or group-by attributes.
    let mut used_dims: Vec<String> = Vec::new();
    let mut used_subs: Vec<String> = Vec::new();
    let mut note_table = |name: &str| {
        if schema.dim(name).is_ok() {
            if !used_dims.iter().any(|d| d == name) {
                used_dims.push(name.to_string());
            }
            return;
        }
        if schema.subdim(name).is_some() && !used_subs.iter().any(|s| s == name) {
            used_subs.push(name.to_string());
        }
    };
    for p in &query.predicates {
        note_table(&p.table);
    }
    for g in &query.group_by {
        note_table(&g.table);
    }
    // Sub-dimension predicates also pull in their parent dimension.
    let sub_parents: Vec<String> = used_subs
        .iter()
        .filter_map(|s| schema.subdim(s).map(|(d, _)| d.table.name().to_string()))
        .collect();
    for parent in sub_parents {
        if !used_dims.contains(&parent) {
            used_dims.push(parent);
        }
    }

    for name in &used_dims {
        let dim = schema.dim(name).expect("validated above");
        tables.push(dim.table.name().to_string());
        joins.push(format!(
            "{}.{} = {}.{}",
            schema.fact().name(),
            dim.fk,
            dim.table.name(),
            dim.pk
        ));
    }
    for name in &used_subs {
        let (parent, sub) = schema.subdim(name).expect("validated above");
        tables.push(sub.table.name().to_string());
        joins.push(format!(
            "{}.{} = {}.{}",
            parent.table.name(),
            sub.fk_in_dim,
            sub.table.name(),
            sub.pk
        ));
    }

    let select = match &query.agg {
        Agg::Count => "count(*)".to_string(),
        Agg::Sum(m) => format!("sum({}.{m})", schema.fact().name()),
        Agg::SumDiff(a, b) => {
            format!("sum({0}.{a} - {0}.{b})", schema.fact().name())
        }
    };
    let mut sql = String::new();
    let _ = write!(sql, "SELECT {select}");
    if !query.group_by.is_empty() {
        for g in &query.group_by {
            let _ = write!(sql, ", {}.{}", g.table, g.attr);
        }
    }
    let _ = write!(sql, " FROM {}", tables.join(", "));

    let mut conditions = joins;
    for p in &query.predicates {
        conditions.push(render_predicate(schema, p));
    }
    if !conditions.is_empty() {
        let _ = write!(sql, " WHERE {}", conditions.join(" AND "));
    }
    if !query.group_by.is_empty() {
        let groups: Vec<String> =
            query.group_by.iter().map(|g| format!("{}.{}", g.table, g.attr)).collect();
        let _ = write!(sql, " GROUP BY {}", groups.join(", "));
    }
    sql.push(';');
    sql
}

/// Escapes a label for embedding in a single-quoted SQL string literal:
/// each embedded `'` doubles to `''` (the standard SQL escape), so labels
/// containing quotes render as well-formed SQL that [`unescape_label`]
/// inverts exactly.
pub fn escape_label(label: &str) -> String {
    label.replace('\'', "''")
}

/// Inverts [`escape_label`]: collapses each `''` back to `'`. The parser
/// side of the round trip (the gate crate) calls this on the body of a
/// quoted literal before resolving it against the domain's labels.
pub fn unescape_label(escaped: &str) -> String {
    escaped.replace("''", "'")
}

fn render_predicate(schema: &StarSchema, p: &Predicate) -> String {
    let label = |code: u32| -> String {
        let domain =
            schema.dim(&p.table).ok().and_then(|d| d.table.domain(&p.attr).ok()).or_else(|| {
                schema.subdim(&p.table).and_then(|(_, s)| s.table.domain(&p.attr).ok())
            });
        match domain.and_then(|d| d.label_of(code)) {
            Some(l) => format!("'{}'", escape_label(l)),
            None => code.to_string(),
        }
    };
    let col = format!("{}.{}", p.table, p.attr);
    match &p.constraint {
        Constraint::Point(v) => format!("{col} = {}", label(*v)),
        Constraint::Range { lo, hi } => {
            format!("{col} BETWEEN {} AND {}", label(*lo), label(*hi))
        }
        Constraint::Set(vs) => {
            let items: Vec<String> = vs.iter().map(|v| label(*v)).collect();
            format!("{col} IN ({})", items.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::domain::Domain;
    use crate::query::GroupAttr;
    use crate::schema::{Dimension, SubDimension};
    use crate::table::Table;

    fn schema() -> StarSchema {
        let region = Domain::categorical("region", vec!["NORTH", "SOUTH"]).unwrap();
        let cust = Table::new(
            "Customer",
            vec![Column::key("pk", vec![0, 1]), Column::attr("region", region, vec![0, 1])],
        )
        .unwrap();
        let year = Domain::numeric("year", 7).unwrap();
        let date = Table::new(
            "Date",
            vec![Column::key("dk", vec![0, 1]), Column::attr("year", year, vec![0, 1])],
        )
        .unwrap();
        let fact = Table::new(
            "Lineorder",
            vec![
                Column::key("custkey", vec![0, 1, 1]),
                Column::key("orderdate", vec![0, 0, 1]),
                Column::measure("revenue", vec![5, 6, 7]),
                Column::measure("cost", vec![1, 1, 1]),
            ],
        )
        .unwrap();
        StarSchema::new(
            fact,
            vec![Dimension::new(cust, "pk", "custkey"), Dimension::new(date, "dk", "orderdate")],
        )
        .unwrap()
    }

    #[test]
    fn count_query_renders_with_join_and_label() {
        let s = schema();
        let q = StarQuery::count("q").with(Predicate::point("Customer", "region", 1));
        let sql = to_sql(&s, &q);
        assert_eq!(
            sql,
            "SELECT count(*) FROM Lineorder, Customer \
             WHERE Lineorder.custkey = Customer.pk AND Customer.region = 'SOUTH';"
        );
    }

    #[test]
    fn numeric_domains_render_codes_and_ranges() {
        let s = schema();
        let q = StarQuery::sum("q", "revenue").with(Predicate::range("Date", "year", 0, 5));
        let sql = to_sql(&s, &q);
        assert!(sql.starts_with("SELECT sum(Lineorder.revenue) FROM Lineorder, Date"));
        assert!(sql.contains("Date.year BETWEEN 0 AND 5"));
    }

    #[test]
    fn set_constraint_renders_in_list() {
        let s = schema();
        let q = StarQuery::count("q").with(Predicate::set("Date", "year", vec![0, 2]));
        assert!(to_sql(&s, &q).contains("Date.year IN (0, 2)"));
    }

    #[test]
    fn group_by_and_sumdiff_render() {
        let s = schema();
        let q = StarQuery::sum_diff("q", "revenue", "cost")
            .with(Predicate::point("Customer", "region", 0))
            .group_by(GroupAttr::new("Date", "year"));
        let sql = to_sql(&s, &q);
        assert!(sql.contains("sum(Lineorder.revenue - Lineorder.cost), Date.year"));
        assert!(sql.ends_with("GROUP BY Date.year;"));
        // Date is joined because of the group-by even without a predicate.
        assert!(sql.contains("Lineorder.orderdate = Date.dk"));
    }

    #[test]
    fn snowflake_predicate_renders_two_hop_join() {
        let region = Domain::categorical("region", vec!["NORTH", "SOUTH"]).unwrap();
        let cust = Table::new(
            "Customer",
            vec![
                Column::key("pk", vec![0, 1]),
                Column::attr("region", region, vec![0, 1]),
                Column::key("nk", vec![0, 0]),
            ],
        )
        .unwrap();
        let nd = Domain::numeric("gdp", 3).unwrap();
        let nation = Table::new(
            "Nation",
            vec![Column::key("nk", vec![0]), Column::attr("gdp", nd, vec![2])],
        )
        .unwrap();
        let fact =
            Table::new("F", vec![Column::key("ck", vec![0, 1]), Column::measure("m", vec![1, 2])])
                .unwrap();
        let dim = Dimension::new(cust, "pk", "ck").with_subdim(SubDimension {
            table: nation,
            pk: "nk".into(),
            fk_in_dim: "nk".into(),
        });
        let s = StarSchema::new(fact, vec![dim]).unwrap();
        let q = StarQuery::count("q").with(Predicate::point("Nation", "gdp", 2));
        let sql = to_sql(&s, &q);
        assert!(sql.contains("F.ck = Customer.pk"), "parent join present: {sql}");
        assert!(sql.contains("Customer.nk = Nation.nk"), "sub-dimension join present: {sql}");
        assert!(sql.contains("Nation.gdp = 2"));
    }

    #[test]
    fn quote_bearing_labels_escape_on_render() {
        // Adversarial labels: embedded quotes, a label that *is* the escape
        // sequence, and SQL-looking text — all must render as well-formed
        // single-quoted literals with `''` doubling.
        let hostile =
            Domain::categorical("name", vec!["O'Brien", "''", "x' OR '1'='1", "plain"]).unwrap();
        let dim = Table::new(
            "Cust",
            vec![
                Column::key("pk", vec![0, 1, 2, 3]),
                Column::attr("name", hostile, vec![0, 1, 2, 3]),
            ],
        )
        .unwrap();
        let fact = Table::new("F", vec![Column::key("ck", vec![0, 1, 2, 3])]).unwrap();
        let s = StarSchema::new(fact, vec![Dimension::new(dim, "pk", "ck")]).unwrap();

        let q = StarQuery::count("q").with(Predicate::point("Cust", "name", 0));
        assert!(to_sql(&s, &q).contains("Cust.name = 'O''Brien'"));

        let q = StarQuery::count("q").with(Predicate::set("Cust", "name", vec![1, 2]));
        let sql = to_sql(&s, &q);
        assert!(sql.contains("Cust.name IN ('''''', 'x'' OR ''1''=''1')"), "got: {sql}");

        for label in ["O'Brien", "''", "x' OR '1'='1", "plain", ""] {
            assert_eq!(unescape_label(&escape_label(label)), label);
        }
    }

    #[test]
    fn paper_queries_render_against_ssb_shapes() {
        // Smoke: every SSB query renders with the right aggregate keyword.
        // (Full SSB rendering is covered in the ssb crate's tests via the
        // real schema; here we check stability of the fragment grammar.)
        let s = schema();
        let q = StarQuery::count("no_preds");
        assert_eq!(to_sql(&s, &q), "SELECT count(*) FROM Lineorder;");
    }
}
