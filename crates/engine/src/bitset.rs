//! Packed bitsets for dimension pass-masks.
//!
//! The scan kernel tests fact rows against per-dimension admission masks
//! billions of times per second, so the mask representation matters: a
//! `Vec<bool>` costs one byte (and one cache line per 64 entries) per
//! dimension row, while a packed `u64` bitset costs one bit and lets the
//! fact-phase combine 64 rows of admissibility with single AND/popcount
//! instructions. [`BitSet`] is that representation: fixed length, packed
//! into `u64` words, with the unused tail bits of the last word kept zero
//! so word-level operations ([`BitSet::words`], [`BitSet::count_ones`])
//! never see garbage.

/// A fixed-length packed bitset over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A bitset of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// A bitset of `len` ones (tail bits of the last word stay zero).
    pub fn ones(len: usize) -> Self {
        let mut set = BitSet { words: vec![u64::MAX; len.div_ceil(64)], len };
        set.mask_tail();
        set
    }

    /// Builds a bitset from a per-index predicate.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut set = BitSet::zeros(len);
        for i in 0..len {
            if f(i) {
                set.words[i >> 6] |= 1u64 << (i & 63);
            }
        }
        set
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the bitset has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        debug_assert!(index < self.len);
        (self.words[index >> 6] >> (index & 63)) & 1 == 1
    }

    /// The bit at `index` as a `u64` in `{0, 1}` — the branch-free form the
    /// scan kernel shifts into chunk masks.
    #[inline]
    pub fn get_bit(&self, index: usize) -> u64 {
        debug_assert!(index < self.len);
        (self.words[index >> 6] >> (index & 63)) & 1
    }

    /// Sets the bit at `index` to `value`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        debug_assert!(index < self.len);
        let mask = 1u64 << (index & 63);
        if value {
            self.words[index >> 6] |= mask;
        } else {
            self.words[index >> 6] &= !mask;
        }
    }

    /// Keeps only bits whose index satisfies `f` (in-place intersection with
    /// a predicate) — how per-predicate dimension masks are conjoined.
    pub fn retain(&mut self, mut f: impl FnMut(usize) -> bool) {
        for i in 0..self.len {
            if self.get(i) && !f(i) {
                self.words[i >> 6] &= !(1u64 << (i & 63));
            }
        }
    }

    /// In-place intersection with another bitset of the same length.
    pub fn and_assign(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// True iff every set bit of `self` is also set in `other` — the
    /// wordwise subset test (`self & !other == 0`) the planner uses to
    /// detect that one dimension mask subsumes another, so the narrower
    /// filter can be derived by AND-refinement of the wider shared mask
    /// instead of a second gather pass.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed words (tail bits of the last word are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The bits expanded to a byte-per-index `{0, 1}` lookup table — the
    /// mid-size fast-path representation of the scan kernel: for dimensions
    /// of at most 2^16 rows the table stays cache-resident and turns the
    /// per-row probe into a single byte load (no word indexing or shifts).
    pub fn to_byte_lut(&self) -> Box<[u8]> {
        (0..self.len).map(|i| self.get_bit(i) as u8).collect()
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((wi << 6) | bit)
            })
        })
    }

    fn mask_tail(&mut self) {
        let tail = self.len & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitSet::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        let o = BitSet::ones(70);
        assert_eq!(o.count_ones(), 70);
        // Tail bits beyond 70 stay zero so word-level popcounts are exact.
        assert_eq!(o.words()[1].count_ones(), 6);
        assert!(BitSet::zeros(0).is_empty());
        assert!(!o.is_empty());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::zeros(130);
        for i in [0usize, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i, true);
            assert!(b.get(i));
            assert_eq!(b.get_bit(i), 1);
        }
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    fn from_fn_and_retain_match_naive() {
        let b = BitSet::from_fn(200, |i| i % 3 == 0);
        assert_eq!(b.count_ones(), 67);
        let mut c = b.clone();
        c.retain(|i| i % 2 == 0);
        for i in 0..200 {
            assert_eq!(c.get(i), i % 6 == 0, "bit {i}");
        }
    }

    #[test]
    fn and_assign_intersects() {
        let mut a = BitSet::from_fn(100, |i| i % 2 == 0);
        let b = BitSet::from_fn(100, |i| i % 5 == 0);
        a.and_assign(&b);
        for i in 0..100 {
            assert_eq!(a.get(i), i % 10 == 0);
        }
    }

    #[test]
    fn byte_lut_matches_bits() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let b = BitSet::from_fn(len, |i| i % 3 == 1);
            let lut = b.to_byte_lut();
            assert_eq!(lut.len(), len);
            for i in 0..len {
                assert_eq!(lut[i], u8::from(b.get(i)), "len={len} bit {i}");
            }
        }
    }

    #[test]
    fn iter_ones_ascending() {
        let b = BitSet::from_fn(150, |i| i == 0 || i == 63 || i == 64 || i == 149);
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![0, 63, 64, 149]);
    }

    #[test]
    fn subset_detection() {
        let narrow = BitSet::from_fn(130, |i| i % 10 == 0);
        let wide = BitSet::from_fn(130, |i| i % 5 == 0);
        assert!(narrow.is_subset(&wide));
        assert!(!wide.is_subset(&narrow));
        assert!(narrow.is_subset(&narrow), "subset is reflexive");
        assert!(BitSet::zeros(130).is_subset(&narrow), "empty set is a subset of anything");
        let disjoint = BitSet::from_fn(130, |i| i % 10 == 1);
        assert!(!narrow.is_subset(&disjoint));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_assign_length_mismatch_panics() {
        let mut a = BitSet::zeros(10);
        a.and_assign(&BitSet::zeros(11));
    }
}
