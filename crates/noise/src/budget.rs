//! `(ε, δ)` privacy-budget bookkeeping.
//!
//! The paper's Algorithms 1 and 3 split a query budget evenly across the `n`
//! dimension-table predicates (`ε_i = ε/n`); Algorithm 2 splits a range
//! predicate's budget across its two endpoints; sequential composition (Dwork
//! & Roth) justifies summing budgets of sub-mechanisms that all touch the
//! same record. This module makes those rules explicit and validated.

use crate::error::NoiseError;

/// An `(ε, δ)` differential-privacy budget. `δ = 0` is pure ε-DP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    epsilon: f64,
    delta: f64,
}

impl PrivacyBudget {
    /// Pure ε-DP budget (`δ = 0`).
    pub fn pure(epsilon: f64) -> Result<Self, NoiseError> {
        PrivacyBudget::approx(epsilon, 0.0)
    }

    /// Approximate `(ε, δ)`-DP budget.
    pub fn approx(epsilon: f64, delta: f64) -> Result<Self, NoiseError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(NoiseError::InvalidEpsilon(epsilon));
        }
        if !(delta.is_finite() && (0.0..1.0).contains(&delta)) {
            return Err(NoiseError::InvalidDelta(delta));
        }
        Ok(PrivacyBudget { epsilon, delta })
    }

    /// The ε component.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ component.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// True iff this is a pure ε-DP budget.
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }

    /// Splits the budget evenly into `k` parts (`ε/k`, `δ/k` each) — the
    /// paper's `ε_i = ε/n` rule for `n` dimension predicates.
    pub fn split_even(&self, k: usize) -> Result<Vec<PrivacyBudget>, NoiseError> {
        if k == 0 {
            return Err(NoiseError::InvalidParam { name: "k", value: 0.0 });
        }
        let part = PrivacyBudget { epsilon: self.epsilon / k as f64, delta: self.delta / k as f64 };
        Ok(vec![part; k])
    }

    /// Splits the budget proportionally to non-negative `weights`.
    pub fn split_weighted(&self, weights: &[f64]) -> Result<Vec<PrivacyBudget>, NoiseError> {
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(NoiseError::InvalidWeights);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(NoiseError::InvalidWeights);
        }
        Ok(weights
            .iter()
            .map(|w| PrivacyBudget {
                epsilon: self.epsilon * w / total,
                delta: self.delta * w / total,
            })
            .collect())
    }

    /// Sequential composition: the total budget consumed by running each
    /// sub-mechanism on the same data (basic composition theorem).
    pub fn compose_sequential(parts: &[PrivacyBudget]) -> Result<PrivacyBudget, NoiseError> {
        if parts.is_empty() {
            return Err(NoiseError::InvalidWeights);
        }
        let epsilon = parts.iter().map(|p| p.epsilon).sum();
        let delta: f64 = parts.iter().map(|p| p.delta).sum();
        PrivacyBudget::approx(epsilon, delta.min(1.0 - f64::EPSILON))
    }

    /// Pairwise sequential composition: the cost of running `self` and then
    /// `other` on the same data. Convenience over
    /// [`PrivacyBudget::compose_sequential`] for running accumulators
    /// (e.g. a service's per-tenant spend ledger).
    pub fn compose_with(&self, other: &PrivacyBudget) -> Result<PrivacyBudget, NoiseError> {
        PrivacyBudget::compose_sequential(&[*self, *other])
    }

    /// The single admission rule shared by every budget check in the
    /// workspace: does charging `cost` on top of an already-spent
    /// `(spent_epsilon, spent_delta)` stay within `cap`?
    ///
    /// Both components use a small **relative** tolerance, absorbing the
    /// float drift of summing many charges while keeping zero caps exact:
    /// a pure ε-DP cap (`δ = 0`) admits only `δ = 0` costs, so approximate
    /// mechanisms can never sneak past a pure allotment.
    pub fn admits(
        cap: &PrivacyBudget,
        spent_epsilon: f64,
        spent_delta: f64,
        cost: &PrivacyBudget,
    ) -> bool {
        let tol = 1e-9;
        spent_epsilon + cost.epsilon <= cap.epsilon * (1.0 + tol)
            && spent_delta + cost.delta <= cap.delta * (1.0 + tol)
    }

    /// True iff spending `self` from scratch fits inside `cap` — the
    /// zero-spent special case of [`PrivacyBudget::admits`].
    pub fn fits_within(&self, cap: &PrivacyBudget) -> bool {
        PrivacyBudget::admits(cap, 0.0, 0.0, self)
    }

    /// Parallel composition: mechanisms run on *disjoint* partitions of the
    /// data cost only the maximum of their budgets.
    pub fn compose_parallel(parts: &[PrivacyBudget]) -> Result<PrivacyBudget, NoiseError> {
        if parts.is_empty() {
            return Err(NoiseError::InvalidWeights);
        }
        let epsilon = parts.iter().map(|p| p.epsilon).fold(0.0, f64::max);
        let delta = parts.iter().map(|p| p.delta).fold(0.0, f64::max);
        PrivacyBudget::approx(epsilon, delta)
    }
}

/// A running ledger that tracks budget consumption over the life of a
/// session — useful for workload experiments where many queries share one
/// global budget.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: PrivacyBudget,
    spent_epsilon: f64,
    spent_delta: f64,
}

impl BudgetLedger {
    /// Opens a ledger over the given total budget.
    pub fn new(total: PrivacyBudget) -> Self {
        BudgetLedger { total, spent_epsilon: 0.0, spent_delta: 0.0 }
    }

    /// Attempts to charge `cost` against the remaining budget; errors if the
    /// charge would exceed the total (per [`PrivacyBudget::admits`]).
    pub fn charge(&mut self, cost: PrivacyBudget) -> Result<(), NoiseError> {
        if !self.can_charge(&cost) {
            return Err(NoiseError::InvalidEpsilon(cost.epsilon));
        }
        self.spent_epsilon += cost.epsilon;
        self.spent_delta += cost.delta;
        Ok(())
    }

    /// True iff `cost` would fit without exceeding the total — the
    /// non-mutating admission test [`BudgetLedger::charge`] uses.
    pub fn can_charge(&self, cost: &PrivacyBudget) -> bool {
        PrivacyBudget::admits(&self.total, self.spent_epsilon, self.spent_delta, cost)
    }

    /// Returns a previously charged `cost` to the ledger — the rollback half
    /// of reserve/commit/rollback accounting. Clamped at zero so a spurious
    /// refund can never manufacture budget.
    pub fn refund(&mut self, cost: PrivacyBudget) {
        self.spent_epsilon = (self.spent_epsilon - cost.epsilon).max(0.0);
        self.spent_delta = (self.spent_delta - cost.delta).max(0.0);
    }

    /// Sets the spent totals to exact recovered values — the adoption half
    /// of WAL recovery (`starj-durable`). The bit patterns are installed
    /// verbatim, **not** validated against the total: a recovered spend
    /// that exceeds the allotment simply makes every future
    /// [`BudgetLedger::can_charge`] refuse, which is the fail-closed
    /// behaviour a ledger restored after a crash must have.
    pub fn restore_spent(&mut self, epsilon: f64, delta: f64) {
        self.spent_epsilon = epsilon;
        self.spent_delta = delta;
    }

    /// The total budget this ledger was opened with.
    pub fn total(&self) -> PrivacyBudget {
        self.total
    }

    /// ε spent so far.
    pub fn spent_epsilon(&self) -> f64 {
        self.spent_epsilon
    }

    /// δ spent so far.
    pub fn spent_delta(&self) -> f64 {
        self.spent_delta
    }

    /// ε still available.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.total.epsilon - self.spent_epsilon).max(0.0)
    }

    /// δ still available.
    pub fn remaining_delta(&self) -> f64 {
        (self.total.delta - self.spent_delta).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_budgets() {
        assert!(PrivacyBudget::pure(0.0).is_err());
        assert!(PrivacyBudget::pure(-1.0).is_err());
        assert!(PrivacyBudget::pure(f64::INFINITY).is_err());
        assert!(PrivacyBudget::approx(1.0, -0.1).is_err());
        assert!(PrivacyBudget::approx(1.0, 1.0).is_err());
    }

    #[test]
    fn split_even_matches_paper_rule() {
        let b = PrivacyBudget::pure(1.0).unwrap();
        let parts = b.split_even(4).unwrap();
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert!((p.epsilon() - 0.25).abs() < 1e-12);
            assert!(p.is_pure());
        }
        assert!(b.split_even(0).is_err());
    }

    #[test]
    fn split_then_compose_is_lossless() {
        let b = PrivacyBudget::approx(0.8, 1e-6).unwrap();
        let parts = b.split_even(5).unwrap();
        let back = PrivacyBudget::compose_sequential(&parts).unwrap();
        assert!((back.epsilon() - 0.8).abs() < 1e-12);
        assert!((back.delta() - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn weighted_split_is_proportional() {
        let b = PrivacyBudget::pure(1.0).unwrap();
        let parts = b.split_weighted(&[1.0, 3.0]).unwrap();
        assert!((parts[0].epsilon() - 0.25).abs() < 1e-12);
        assert!((parts[1].epsilon() - 0.75).abs() < 1e-12);
        assert!(b.split_weighted(&[]).is_err());
        assert!(b.split_weighted(&[-1.0, 2.0]).is_err());
        assert!(b.split_weighted(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn parallel_composition_takes_max() {
        let a = PrivacyBudget::pure(0.3).unwrap();
        let b = PrivacyBudget::pure(0.7).unwrap();
        let c = PrivacyBudget::compose_parallel(&[a, b]).unwrap();
        assert!((c.epsilon() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn compose_with_accumulates() {
        let a = PrivacyBudget::approx(0.3, 1e-7).unwrap();
        let b = PrivacyBudget::approx(0.2, 2e-7).unwrap();
        let c = a.compose_with(&b).unwrap();
        assert!((c.epsilon() - 0.5).abs() < 1e-12);
        assert!((c.delta() - 3e-7).abs() < 1e-15);
    }

    #[test]
    fn fits_within_honors_both_components() {
        let cap = PrivacyBudget::approx(1.0, 1e-6).unwrap();
        assert!(PrivacyBudget::approx(1.0, 1e-6).unwrap().fits_within(&cap));
        assert!(PrivacyBudget::pure(0.5).unwrap().fits_within(&cap));
        assert!(!PrivacyBudget::pure(1.1).unwrap().fits_within(&cap));
        assert!(!PrivacyBudget::approx(0.5, 1e-5).unwrap().fits_within(&cap));
    }

    #[test]
    fn pure_cap_admits_no_delta_at_all() {
        // A δ = 0 allotment is a *pure ε-DP* guarantee: even a 1e-9 δ cost
        // must be refused, not absorbed by tolerance.
        let cap = PrivacyBudget::pure(1.0).unwrap();
        let tiny_delta = PrivacyBudget::approx(0.1, 1e-9).unwrap();
        assert!(!tiny_delta.fits_within(&cap));
        let mut ledger = BudgetLedger::new(cap);
        assert!(!ledger.can_charge(&tiny_delta));
        assert!(ledger.charge(tiny_delta).is_err());
        // Pure costs still flow normally.
        assert!(ledger.charge(PrivacyBudget::pure(0.1).unwrap()).is_ok());
    }

    #[test]
    fn relative_delta_tolerance_absorbs_summation_drift() {
        // Ten 1e-7 charges sum to the 1e-6 cap despite float drift…
        let cap = PrivacyBudget::approx(10.0, 1e-6).unwrap();
        let mut ledger = BudgetLedger::new(cap);
        let step = PrivacyBudget::approx(0.1, 1e-7).unwrap();
        for _ in 0..10 {
            assert!(ledger.charge(step).is_ok());
        }
        // …and the eleventh is refused.
        assert!(ledger.charge(step).is_err());
    }

    #[test]
    fn ledger_refund_restores_capacity() {
        let total = PrivacyBudget::pure(1.0).unwrap();
        let mut ledger = BudgetLedger::new(total);
        let step = PrivacyBudget::pure(0.6).unwrap();
        assert!(ledger.charge(step).is_ok());
        assert!(!ledger.can_charge(&step), "second 0.6 must not fit in 1.0");
        ledger.refund(step);
        assert!(ledger.can_charge(&step));
        assert!(ledger.charge(step).is_ok());
        // Refunding more than was spent clamps at zero instead of minting ε.
        ledger.refund(PrivacyBudget::pure(5.0).unwrap());
        assert_eq!(ledger.spent_epsilon(), 0.0);
        assert!((ledger.remaining_epsilon() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_tracks_delta() {
        let total = PrivacyBudget::approx(1.0, 1e-6).unwrap();
        let mut ledger = BudgetLedger::new(total);
        let cost = PrivacyBudget::approx(0.1, 4e-7).unwrap();
        assert!(ledger.charge(cost).is_ok());
        assert!(ledger.charge(cost).is_ok());
        // ε would still fit, but δ (8e-7 spent of 1e-6) cannot absorb 4e-7.
        assert!(ledger.charge(cost).is_err());
        assert!((ledger.spent_delta() - 8e-7).abs() < 1e-15);
        assert!((ledger.remaining_delta() - 2e-7).abs() < 1e-15);
        assert_eq!(ledger.total(), total);
    }

    #[test]
    fn ledger_enforces_total() {
        let total = PrivacyBudget::pure(1.0).unwrap();
        let mut ledger = BudgetLedger::new(total);
        let half = PrivacyBudget::pure(0.5).unwrap();
        assert!(ledger.charge(half).is_ok());
        assert!(ledger.charge(half).is_ok());
        assert!(ledger.charge(half).is_err(), "over-spend must fail");
        assert!((ledger.spent_epsilon() - 1.0).abs() < 1e-9);
        assert!(ledger.remaining_epsilon() < 1e-9);
    }
}
