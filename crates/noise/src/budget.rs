//! `(ε, δ)` privacy-budget bookkeeping.
//!
//! The paper's Algorithms 1 and 3 split a query budget evenly across the `n`
//! dimension-table predicates (`ε_i = ε/n`); Algorithm 2 splits a range
//! predicate's budget across its two endpoints; sequential composition (Dwork
//! & Roth) justifies summing budgets of sub-mechanisms that all touch the
//! same record. This module makes those rules explicit and validated.

use crate::error::NoiseError;

/// An `(ε, δ)` differential-privacy budget. `δ = 0` is pure ε-DP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    epsilon: f64,
    delta: f64,
}

impl PrivacyBudget {
    /// Pure ε-DP budget (`δ = 0`).
    pub fn pure(epsilon: f64) -> Result<Self, NoiseError> {
        PrivacyBudget::approx(epsilon, 0.0)
    }

    /// Approximate `(ε, δ)`-DP budget.
    pub fn approx(epsilon: f64, delta: f64) -> Result<Self, NoiseError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(NoiseError::InvalidEpsilon(epsilon));
        }
        if !(delta.is_finite() && (0.0..1.0).contains(&delta)) {
            return Err(NoiseError::InvalidDelta(delta));
        }
        Ok(PrivacyBudget { epsilon, delta })
    }

    /// The ε component.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ component.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// True iff this is a pure ε-DP budget.
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }

    /// Splits the budget evenly into `k` parts (`ε/k`, `δ/k` each) — the
    /// paper's `ε_i = ε/n` rule for `n` dimension predicates.
    pub fn split_even(&self, k: usize) -> Result<Vec<PrivacyBudget>, NoiseError> {
        if k == 0 {
            return Err(NoiseError::InvalidParam { name: "k", value: 0.0 });
        }
        let part = PrivacyBudget {
            epsilon: self.epsilon / k as f64,
            delta: self.delta / k as f64,
        };
        Ok(vec![part; k])
    }

    /// Splits the budget proportionally to non-negative `weights`.
    pub fn split_weighted(&self, weights: &[f64]) -> Result<Vec<PrivacyBudget>, NoiseError> {
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(NoiseError::InvalidWeights);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(NoiseError::InvalidWeights);
        }
        Ok(weights
            .iter()
            .map(|w| PrivacyBudget {
                epsilon: self.epsilon * w / total,
                delta: self.delta * w / total,
            })
            .collect())
    }

    /// Sequential composition: the total budget consumed by running each
    /// sub-mechanism on the same data (basic composition theorem).
    pub fn compose_sequential(parts: &[PrivacyBudget]) -> Result<PrivacyBudget, NoiseError> {
        if parts.is_empty() {
            return Err(NoiseError::InvalidWeights);
        }
        let epsilon = parts.iter().map(|p| p.epsilon).sum();
        let delta: f64 = parts.iter().map(|p| p.delta).sum();
        PrivacyBudget::approx(epsilon, delta.min(1.0 - f64::EPSILON))
    }

    /// Parallel composition: mechanisms run on *disjoint* partitions of the
    /// data cost only the maximum of their budgets.
    pub fn compose_parallel(parts: &[PrivacyBudget]) -> Result<PrivacyBudget, NoiseError> {
        if parts.is_empty() {
            return Err(NoiseError::InvalidWeights);
        }
        let epsilon = parts.iter().map(|p| p.epsilon).fold(0.0, f64::max);
        let delta = parts.iter().map(|p| p.delta).fold(0.0, f64::max);
        PrivacyBudget::approx(epsilon, delta)
    }
}

/// A running ledger that tracks budget consumption over the life of a
/// session — useful for workload experiments where many queries share one
/// global budget.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: PrivacyBudget,
    spent_epsilon: f64,
    spent_delta: f64,
}

impl BudgetLedger {
    /// Opens a ledger over the given total budget.
    pub fn new(total: PrivacyBudget) -> Self {
        BudgetLedger { total, spent_epsilon: 0.0, spent_delta: 0.0 }
    }

    /// Attempts to charge `cost` against the remaining budget; errors if the
    /// charge would exceed the total.
    pub fn charge(&mut self, cost: PrivacyBudget) -> Result<(), NoiseError> {
        let tol = 1e-9;
        if self.spent_epsilon + cost.epsilon > self.total.epsilon * (1.0 + tol)
            || self.spent_delta + cost.delta > self.total.delta + tol
        {
            return Err(NoiseError::InvalidEpsilon(cost.epsilon));
        }
        self.spent_epsilon += cost.epsilon;
        self.spent_delta += cost.delta;
        Ok(())
    }

    /// ε spent so far.
    pub fn spent_epsilon(&self) -> f64 {
        self.spent_epsilon
    }

    /// ε still available.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.total.epsilon - self.spent_epsilon).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_budgets() {
        assert!(PrivacyBudget::pure(0.0).is_err());
        assert!(PrivacyBudget::pure(-1.0).is_err());
        assert!(PrivacyBudget::pure(f64::INFINITY).is_err());
        assert!(PrivacyBudget::approx(1.0, -0.1).is_err());
        assert!(PrivacyBudget::approx(1.0, 1.0).is_err());
    }

    #[test]
    fn split_even_matches_paper_rule() {
        let b = PrivacyBudget::pure(1.0).unwrap();
        let parts = b.split_even(4).unwrap();
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert!((p.epsilon() - 0.25).abs() < 1e-12);
            assert!(p.is_pure());
        }
        assert!(b.split_even(0).is_err());
    }

    #[test]
    fn split_then_compose_is_lossless() {
        let b = PrivacyBudget::approx(0.8, 1e-6).unwrap();
        let parts = b.split_even(5).unwrap();
        let back = PrivacyBudget::compose_sequential(&parts).unwrap();
        assert!((back.epsilon() - 0.8).abs() < 1e-12);
        assert!((back.delta() - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn weighted_split_is_proportional() {
        let b = PrivacyBudget::pure(1.0).unwrap();
        let parts = b.split_weighted(&[1.0, 3.0]).unwrap();
        assert!((parts[0].epsilon() - 0.25).abs() < 1e-12);
        assert!((parts[1].epsilon() - 0.75).abs() < 1e-12);
        assert!(b.split_weighted(&[]).is_err());
        assert!(b.split_weighted(&[-1.0, 2.0]).is_err());
        assert!(b.split_weighted(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn parallel_composition_takes_max() {
        let a = PrivacyBudget::pure(0.3).unwrap();
        let b = PrivacyBudget::pure(0.7).unwrap();
        let c = PrivacyBudget::compose_parallel(&[a, b]).unwrap();
        assert!((c.epsilon() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn ledger_enforces_total() {
        let total = PrivacyBudget::pure(1.0).unwrap();
        let mut ledger = BudgetLedger::new(total);
        let half = PrivacyBudget::pure(0.5).unwrap();
        assert!(ledger.charge(half).is_ok());
        assert!(ledger.charge(half).is_ok());
        assert!(ledger.charge(half).is_err(), "over-spend must fail");
        assert!((ledger.spent_epsilon() - 1.0).abs() < 1e-9);
        assert!(ledger.remaining_epsilon() < 1e-9);
    }
}
