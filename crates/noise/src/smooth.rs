//! Smooth upper bounds on local sensitivity (Nissim, Raskhodnikova & Smith).
//!
//! The paper's Definition 3.5: the β-smooth sensitivity is
//! `SS_Q(D) = max_{t ≥ 0} e^{-βt} · LS_Q^{(t)}(D)` where `LS^{(t)}` is the
//! local sensitivity at distance `t`. The LS and TM baselines (paper §4 and
//! §6) calibrate Cauchy or Laplace noise to such a bound. This module
//! provides the β calibration rules and closed-form/tabulated maximizations.

use crate::error::NoiseError;

/// β for the Cauchy mechanism with tail exponent γ: `β = ε / (2(γ+1))`.
/// The paper's instantiation γ=4 gives `β = ε/10`.
pub fn beta_cauchy(epsilon: f64, gamma: f64) -> Result<f64, NoiseError> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(NoiseError::InvalidEpsilon(epsilon));
    }
    if !(gamma.is_finite() && gamma >= 2.0) {
        return Err(NoiseError::InvalidParam { name: "gamma", value: gamma });
    }
    Ok(epsilon / (2.0 * (gamma + 1.0)))
}

/// β for the Laplace variant, which yields only `(ε, δ)`-DP:
/// `β = ε / (2 ln(2/δ))`.
pub fn beta_laplace(epsilon: f64, delta: f64) -> Result<f64, NoiseError> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(NoiseError::InvalidEpsilon(epsilon));
    }
    if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
        return Err(NoiseError::InvalidDelta(delta));
    }
    Ok(epsilon / (2.0 * (2.0_f64 / delta).ln()))
}

/// Smooth bound for the common linear-growth case
/// `LS^{(t)} = min(ls + slope·t, cap)`:
///
/// counting queries over joins grow their local sensitivity by at most
/// `slope` per added tuple, saturating at the (declared) global sensitivity
/// `cap`. The maximizer of `e^{-βt}(ls + slope·t)` is `t* = 1/β − ls/slope`;
/// the saturated branch `e^{-βt}·cap` is maximized at the first `t` reaching
/// the cap. All three candidates (0, t*, t_cap) are evaluated.
pub fn smooth_bound_linear(ls: f64, slope: f64, cap: f64, beta: f64) -> Result<f64, NoiseError> {
    if !(ls.is_finite() && ls >= 0.0) {
        return Err(NoiseError::InvalidSensitivity(ls));
    }
    if !(beta.is_finite() && beta > 0.0) {
        return Err(NoiseError::InvalidParam { name: "beta", value: beta });
    }
    if !(slope.is_finite() && slope >= 0.0) {
        return Err(NoiseError::InvalidParam { name: "slope", value: slope });
    }
    if !(cap.is_finite() && cap >= ls) {
        return Err(NoiseError::InvalidParam { name: "cap", value: cap });
    }
    let value_at = |t: f64| (-beta * t).exp() * (ls + slope * t).min(cap);
    let mut best = value_at(0.0);
    if slope > 0.0 {
        let t_star = 1.0 / beta - ls / slope;
        if t_star > 0.0 {
            best = best.max(value_at(t_star));
        }
        let t_cap = (cap - ls) / slope;
        if t_cap > 0.0 {
            best = best.max(value_at(t_cap));
        }
    }
    Ok(best)
}

/// Smooth bound computed from an arbitrary tabulated `LS^{(t)}` function,
/// scanned over `t = 0..=t_max`. Use when no closed form applies (e.g. the
/// degree-truncated k-star count of the TM baseline).
pub fn smooth_bound_table<F>(ls_at: F, beta: f64, t_max: u64) -> Result<f64, NoiseError>
where
    F: Fn(u64) -> f64,
{
    if !(beta.is_finite() && beta > 0.0) {
        return Err(NoiseError::InvalidParam { name: "beta", value: beta });
    }
    let mut best = 0.0_f64;
    for t in 0..=t_max {
        let ls = ls_at(t);
        if !ls.is_finite() || ls < 0.0 {
            return Err(NoiseError::InvalidSensitivity(ls));
        }
        let v = (-beta * t as f64).exp() * ls;
        if v > best {
            best = v;
        }
        // Early exit: e^{-βt}·LS can no longer beat `best` if LS is bounded by
        // cap and the envelope has dropped below best/cap — but LS is caller
        // defined, so only exit when the envelope alone is negligible.
        if (-beta * t as f64).exp() < 1e-15 {
            break;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_rules_match_paper() {
        // γ=4 ⇒ β = ε/10.
        assert!((beta_cauchy(1.0, 4.0).unwrap() - 0.1).abs() < 1e-12);
        assert!((beta_cauchy(0.5, 4.0).unwrap() - 0.05).abs() < 1e-12);
        // Laplace: β = ε / (2 ln(2/δ)).
        let b = beta_laplace(1.0, 1e-6).unwrap();
        assert!((b - 1.0 / (2.0 * (2.0e6_f64).ln())).abs() < 1e-12);
        assert!(beta_cauchy(0.0, 4.0).is_err());
        assert!(beta_laplace(1.0, 0.0).is_err());
    }

    #[test]
    fn smooth_linear_reduces_to_ls_when_beta_large() {
        // With a huge β the envelope collapses immediately: SS = LS.
        let ss = smooth_bound_linear(5.0, 1.0, 1e9, 100.0).unwrap();
        assert!((ss - 5.0).abs() < 1e-6);
    }

    #[test]
    fn smooth_linear_interior_optimum() {
        // ls=0, slope=1, no cap binding: max_t e^{-βt}·t = 1/(eβ).
        let beta = 0.1;
        let ss = smooth_bound_linear(0.0, 1.0, 1e12, beta).unwrap();
        let expected = 1.0 / (std::f64::consts::E * beta);
        assert!((ss - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn smooth_linear_respects_cap() {
        // A small cap turns the bound into ≈ cap (reached at small t).
        let ss = smooth_bound_linear(1.0, 1000.0, 50.0, 0.01).unwrap();
        assert!(ss <= 50.0 + 1e-9);
        assert!(ss > 40.0, "cap should be nearly attained, got {ss}");
    }

    #[test]
    fn smooth_linear_zero_slope_is_ls() {
        let ss = smooth_bound_linear(7.0, 0.0, 7.0, 0.1).unwrap();
        assert!((ss - 7.0).abs() < 1e-12);
    }

    #[test]
    fn smooth_linear_never_below_ls() {
        for &(ls, slope, cap, beta) in
            &[(0.0, 1.0, 100.0, 0.1), (3.0, 2.0, 50.0, 0.05), (10.0, 0.5, 10.0, 1.0)]
        {
            let ss = smooth_bound_linear(ls, slope, cap, beta).unwrap();
            assert!(ss >= ls - 1e-12, "SS {ss} < LS {ls}");
        }
    }

    #[test]
    fn table_matches_closed_form_on_linear_case() {
        let beta = 0.07;
        let (ls, slope, cap) = (2.0_f64, 1.0_f64, 1e6_f64);
        let closed = smooth_bound_linear(ls, slope, cap, beta).unwrap();
        let table = smooth_bound_table(|t| (ls + slope * t as f64).min(cap), beta, 10_000).unwrap();
        assert!((closed - table).abs() / closed < 1e-2, "closed {closed} vs table {table}");
    }

    #[test]
    fn table_rejects_negative_ls() {
        assert!(smooth_bound_table(|_| -1.0, 0.1, 10).is_err());
    }

    #[test]
    fn smoothness_property_holds_empirically() {
        // SS(D) and SS(D') differ by at most e^β when LS profiles shift by one
        // distance step — the defining property of β-smoothness.
        let beta = 0.1;
        let ls_at = |t: u64| (3.0 + t as f64).min(1e9);
        let ls_at_shifted = |t: u64| (3.0 + (t + 1) as f64).min(1e9);
        let ss = smooth_bound_table(ls_at, beta, 5000).unwrap();
        let ss_neighbor = smooth_bound_table(ls_at_shifted, beta, 5000).unwrap();
        assert!(ss_neighbor <= ss * beta.exp() + 1e-9);
        assert!(ss <= ss_neighbor * beta.exp() + 1e-9);
    }
}
