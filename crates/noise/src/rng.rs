//! Seedable, splittable randomness for reproducible experiments.
//!
//! Every mechanism and generator in the workspace draws randomness through
//! [`StarRng`]. A run is fully determined by one `u64` seed; independent
//! streams (e.g. "data generation" vs. "mechanism noise") are derived with
//! [`StarRng::derive`] so adding a consumer never perturbs the draws seen by
//! another.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 finalizer — a strong 64-bit mixing function used both to expand
/// seeds and to derive independent stream seeds from string tags.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a string tag into a 64-bit stream discriminator (FNV-1a).
#[inline]
fn hash_tag(tag: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in tag.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic random source wrapping [`StdRng`].
///
/// `StarRng` implements [`RngCore`], so it interoperates with everything in
/// the `rand` ecosystem while adding convenience draws used across the
/// workspace.
#[derive(Debug, Clone)]
pub struct StarRng {
    seed: u64,
    inner: StdRng,
}

impl StarRng {
    /// Creates a generator from a 64-bit seed. The seed is expanded via
    /// SplitMix64 into the 32 bytes required by `StdRng`.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        StarRng { seed, inner: StdRng::from_seed(bytes) }
    }

    /// The seed this generator was constructed from (derived generators
    /// report their derived seed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream keyed by `tag`. The derivation depends
    /// only on the original seed and the tag, never on how many values have
    /// been drawn, so adding draws in one component does not shift another.
    pub fn derive(&self, tag: &str) -> StarRng {
        StarRng::from_seed(self.seed ^ hash_tag(tag).rotate_left(17))
    }

    /// Derives an independent stream keyed by an index (e.g. a trial number).
    pub fn derive_index(&self, index: u64) -> StarRng {
        let mut s = self.seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        StarRng::from_seed(splitmix64(&mut s))
    }

    /// Uniform draw from the **open** interval `(0, 1)` — never returns an
    /// exact 0, which keeps `ln(u)` finite in inverse-CDF samplers.
    pub fn open01(&mut self) -> f64 {
        loop {
            let u: f64 = self.inner.gen();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`. Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        self.inner.gen_range(lo..=hi)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn coin(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }
}

impl RngCore for StarRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StarRng::from_seed(42);
        let mut b = StarRng::from_seed(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StarRng::from_seed(1);
        let mut b = StarRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn derive_is_stable_and_independent_of_draws() {
        let root = StarRng::from_seed(7);
        let mut used = root.clone();
        for _ in 0..100 {
            used.next_u64();
        }
        // Deriving from a drained clone yields the same stream: derivation
        // depends on the seed, not generator state.
        let mut d1 = root.derive("noise");
        let mut d2 = used.derive("noise");
        for _ in 0..16 {
            assert_eq!(d1.next_u64(), d2.next_u64());
        }
    }

    #[test]
    fn derive_different_tags_differ() {
        let root = StarRng::from_seed(7);
        let mut a = root.derive("alpha");
        let mut b = root.derive("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_index_differs_per_index() {
        let root = StarRng::from_seed(9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            let mut r = root.derive_index(i);
            assert!(seen.insert(r.next_u64()), "trial streams must not collide");
        }
    }

    #[test]
    fn open01_is_in_open_interval() {
        let mut rng = StarRng::from_seed(3);
        for _ in 0..10_000 {
            let u = rng.open01();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn below_and_index_respect_bounds() {
        let mut rng = StarRng::from_seed(4);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
            assert!(rng.index(5) < 5);
            let v = rng.range_inclusive(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn coin_respects_extremes() {
        let mut rng = StarRng::from_seed(5);
        for _ in 0..100 {
            assert!(!rng.coin(0.0));
            assert!(rng.coin(1.0));
        }
    }

    #[test]
    fn unit_mean_is_near_half() {
        let mut rng = StarRng::from_seed(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean of U(0,1) was {mean}");
    }
}
