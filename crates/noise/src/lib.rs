//! Differential-privacy noise primitives for the DP-starJ reproduction.
//!
//! This crate is the lowest layer of the workspace. It provides:
//!
//! * [`rng::StarRng`] — a seedable, splittable random source so every
//!   experiment in the paper reproduction is deterministic under a seed;
//! * [`laplace::Laplace`] — the Laplace mechanism's noise distribution,
//!   calibrated from a sensitivity and a privacy budget;
//! * [`cauchy::GeneralCauchy`] — the general Cauchy distribution with density
//!   proportional to `1 / (1 + |z/s|^γ)` used by smooth-sensitivity
//!   mechanisms (the paper instantiates `γ = 4`, for which the unit-scale
//!   variance is exactly 1);
//! * [`budget::PrivacyBudget`] — `(ε, δ)` bookkeeping with the splitting and
//!   sequential-composition rules the paper's Algorithms 1–4 rely on;
//! * [`smooth`] — closed-form smooth upper bounds on local sensitivity
//!   (Nissim et al.), used by the LS and TM baselines;
//! * [`samplers`] — hand-rolled statistical samplers (exponential, gamma,
//!   normal, Gaussian mixtures, Zipf) used to generate the skewed workloads
//!   of the paper's Figures 7 and 11 without external distribution crates;
//! * [`discrete::DiscreteLaplace`] — the geometric mechanism, the
//!   integer-typed alternative for perturbing predicate constants.
//!
//! # Example
//!
//! ```
//! use starj_noise::{Laplace, PrivacyBudget, StarRng};
//!
//! // Split ε = 1 across three predicates, the paper's ε_i = ε/n rule.
//! let budget = PrivacyBudget::pure(1.0).unwrap();
//! let parts = budget.split_even(3).unwrap();
//! assert!((parts[0].epsilon() - 1.0 / 3.0).abs() < 1e-12);
//!
//! // Calibrate Laplace noise for a domain-size-7 predicate constant.
//! let lap = Laplace::from_sensitivity(7.0, parts[0].epsilon()).unwrap();
//! let mut rng = StarRng::from_seed(42);
//! let noisy_year = 3.0 + lap.sample(&mut rng);
//! assert!(noisy_year.is_finite());
//! ```

pub mod budget;
pub mod cauchy;
pub mod discrete;
pub mod error;
pub mod laplace;
pub mod rng;
pub mod samplers;
pub mod smooth;

pub use budget::{BudgetLedger, PrivacyBudget};
pub use cauchy::GeneralCauchy;
pub use discrete::DiscreteLaplace;
pub use error::NoiseError;
pub use laplace::Laplace;
pub use rng::StarRng;
