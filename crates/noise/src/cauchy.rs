//! The general Cauchy distribution used by smooth-sensitivity mechanisms.
//!
//! Nissim et al.'s framework (the paper's §4, "Cauchy Mechanism") adds noise
//! from the distribution with density proportional to `1 / (1 + |z/s|^γ)`.
//! For `γ = 4` — the paper's choice — the unit-scale variance is exactly 1,
//! which is why the paper quotes a noise level of `(10·LS/ε)²` when
//! `β = ε / (2(γ+1)) = ε/10`.

use crate::error::NoiseError;
use crate::rng::StarRng;

/// General Cauchy distribution: density `∝ 1 / (1 + |z/scale|^gamma)`.
///
/// `gamma = 2` recovers the standard Cauchy; `gamma ≥ 3` is required for the
/// mean to exist and `gamma ≥ 4` (interpreted strictly: gamma > 3) for finite
/// variance. Sampling uses rejection from a standard Cauchy proposal, whose
/// tails dominate every admissible `gamma ≥ 2`.
#[derive(Debug, Clone)]
pub struct GeneralCauchy {
    scale: f64,
    gamma: f64,
    /// Rejection bound: max over z of `(1+z²) / (1+|z|^γ)`.
    bound: f64,
}

impl GeneralCauchy {
    /// Creates a general Cauchy distribution. Requires `scale > 0` and
    /// `gamma ≥ 2`.
    pub fn new(scale: f64, gamma: f64) -> Result<Self, NoiseError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(NoiseError::InvalidScale(scale));
        }
        if !(gamma.is_finite() && gamma >= 2.0) {
            return Err(NoiseError::InvalidParam { name: "gamma", value: gamma });
        }
        Ok(GeneralCauchy { scale, gamma, bound: rejection_bound(gamma) })
    }

    /// The paper's instantiation: `γ = 4`, scale calibrated so that the
    /// mechanism `Q(D) + sample()` is ε-DP for a β-smooth bound `smooth` on
    /// local sensitivity, i.e. `scale = 2(γ+1)·smooth / ε`.
    pub fn for_smooth_sensitivity(
        smooth: f64,
        epsilon: f64,
        gamma: f64,
    ) -> Result<Self, NoiseError> {
        if !(smooth.is_finite() && smooth >= 0.0) {
            return Err(NoiseError::InvalidSensitivity(smooth));
        }
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(NoiseError::InvalidEpsilon(epsilon));
        }
        let s =
            if smooth == 0.0 { f64::MIN_POSITIVE } else { 2.0 * (gamma + 1.0) * smooth / epsilon };
        GeneralCauchy::new(s, gamma)
    }

    /// The scale parameter.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The tail exponent γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Variance for `γ = 4` is `scale²` (the unit-scale second moment of
    /// `1/(1+z⁴)` is exactly 1). Returns `None` when the variance diverges
    /// (`γ ≤ 3`) and a numeric value otherwise.
    pub fn variance(&self) -> Option<f64> {
        if self.gamma <= 3.0 {
            return None;
        }
        if (self.gamma - 4.0).abs() < 1e-12 {
            return Some(self.scale * self.scale);
        }
        // E[z²] for density ∝ 1/(1+|z|^γ): ratio of Beta-function integrals,
        // ∫ z²/(1+z^γ) dz / ∫ 1/(1+z^γ) dz = [Γ(3/γ)Γ(1-3/γ)] / [Γ(1/γ)Γ(1-1/γ)]
        // = sin(π/γ) / sin(3π/γ) after reflection.
        let g = self.gamma;
        let ratio = (std::f64::consts::PI / g).sin() / (3.0 * std::f64::consts::PI / g).sin();
        Some(self.scale * self.scale * ratio)
    }

    /// Draws one sample via rejection from a standard Cauchy proposal.
    pub fn sample(&self, rng: &mut StarRng) -> f64 {
        loop {
            // Standard Cauchy proposal via inverse CDF.
            let u = rng.open01();
            let z = (std::f64::consts::PI * (u - 0.5)).tan();
            // Accept with probability f(z) / (M·g(z)) where both densities are
            // unnormalized: f = 1/(1+|z|^γ), g = 1/(1+z²).
            let f = 1.0 / (1.0 + z.abs().powf(self.gamma));
            let g = 1.0 / (1.0 + z * z);
            if rng.unit() * self.bound * g <= f {
                return z * self.scale;
            }
        }
    }
}

/// Max over `z ≥ 0` of `(1+z²)/(1+z^γ)`, found by a fine grid scan plus local
/// refinement (the maximizer always lies in `[0, 2]` for `γ ≥ 2`).
fn rejection_bound(gamma: f64) -> f64 {
    let ratio = |z: f64| (1.0 + z * z) / (1.0 + z.powf(gamma));
    let mut best = 1.0_f64;
    let mut best_z = 0.0_f64;
    let mut z = 0.0;
    while z <= 2.0 {
        let r = ratio(z);
        if r > best {
            best = r;
            best_z = z;
        }
        z += 1e-3;
    }
    // Local refinement around the grid optimum.
    let mut lo = (best_z - 1e-3).max(0.0);
    let mut hi = best_z + 1e-3;
    for _ in 0..60 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if ratio(m1) < ratio(m2) {
            lo = m1;
        } else {
            hi = m2;
        }
    }
    // A tiny safety factor keeps the rejection valid despite grid error.
    ratio((lo + hi) / 2.0).max(best) * (1.0 + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(GeneralCauchy::new(0.0, 4.0).is_err());
        assert!(GeneralCauchy::new(1.0, 1.5).is_err());
        assert!(GeneralCauchy::new(f64::NAN, 4.0).is_err());
        assert!(GeneralCauchy::for_smooth_sensitivity(1.0, 0.0, 4.0).is_err());
        assert!(GeneralCauchy::for_smooth_sensitivity(-1.0, 1.0, 4.0).is_err());
    }

    #[test]
    fn smooth_calibration_matches_paper() {
        // γ=4 ⇒ scale = 10·smooth/ε, matching the paper's (10·LS/ε)² noise level.
        let d = GeneralCauchy::for_smooth_sensitivity(3.0, 0.5, 4.0).unwrap();
        assert!((d.scale() - 10.0 * 3.0 / 0.5).abs() < 1e-9);
        assert!((d.variance().unwrap() - d.scale() * d.scale()).abs() < 1e-6);
    }

    #[test]
    fn gamma2_variance_diverges() {
        let d = GeneralCauchy::new(1.0, 2.0).unwrap();
        assert!(d.variance().is_none());
    }

    #[test]
    fn samples_are_symmetric() {
        let d = GeneralCauchy::new(1.0, 4.0).unwrap();
        let mut rng = StarRng::from_seed(17);
        let n = 50_000;
        let pos = (0..n).filter(|_| d.sample(&mut rng) > 0.0).count() as f64 / n as f64;
        assert!((pos - 0.5).abs() < 0.02, "positive fraction {pos}");
    }

    #[test]
    fn gamma4_variance_matches_empirical() {
        let d = GeneralCauchy::new(2.0, 4.0).unwrap();
        let mut rng = StarRng::from_seed(23);
        let n = 400_000;
        let var: f64 = (0..n).map(|_| d.sample(&mut rng).powi(2)).sum::<f64>() / n as f64;
        let expected = d.variance().unwrap();
        // γ=4 has heavy-ish tails, so the variance estimator converges slowly;
        // use a generous window.
        assert!((var - expected).abs() / expected < 0.25, "variance {var} vs expected {expected}");
    }

    #[test]
    fn median_scales_with_scale_parameter() {
        let mut rng = StarRng::from_seed(29);
        let n = 60_000;
        let median_abs = |scale: f64, rng: &mut StarRng| {
            let d = GeneralCauchy::new(scale, 4.0).unwrap();
            let mut v: Vec<f64> = (0..n).map(|_| d.sample(rng).abs()).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[n / 2]
        };
        let m1 = median_abs(1.0, &mut rng);
        let m5 = median_abs(5.0, &mut rng);
        assert!((m5 / m1 - 5.0).abs() < 0.5, "median |x| should scale linearly: {m1} vs {m5}");
    }

    #[test]
    fn rejection_bound_dominates_ratio() {
        for &gamma in &[2.0, 3.0, 4.0, 6.0] {
            let b = rejection_bound(gamma);
            let mut z: f64 = 0.0;
            while z < 10.0 {
                let r = (1.0 + z * z) / (1.0 + z.powf(gamma));
                assert!(r <= b * (1.0 + 1e-6), "bound violated at z={z} for γ={gamma}");
                z += 0.01;
            }
        }
    }
}
