//! Error type shared by all noise primitives.

use std::fmt;

/// Errors produced when constructing or using a noise primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A distribution scale parameter was non-positive or non-finite.
    InvalidScale(f64),
    /// A privacy budget `ε` was non-positive or non-finite.
    InvalidEpsilon(f64),
    /// A privacy parameter `δ` was outside `[0, 1)`.
    InvalidDelta(f64),
    /// A sensitivity value was negative or non-finite.
    InvalidSensitivity(f64),
    /// Weights supplied for a split or a mixture were unusable
    /// (empty, negative, non-finite, or summing to zero).
    InvalidWeights,
    /// A named parameter was out of its legal range.
    InvalidParam {
        /// Parameter name as it appears in the constructor.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidScale(s) => write!(f, "invalid distribution scale: {s}"),
            NoiseError::InvalidEpsilon(e) => write!(f, "invalid privacy budget epsilon: {e}"),
            NoiseError::InvalidDelta(d) => write!(f, "invalid privacy parameter delta: {d}"),
            NoiseError::InvalidSensitivity(s) => write!(f, "invalid sensitivity: {s}"),
            NoiseError::InvalidWeights => write!(
                f,
                "weights must be non-empty, finite, non-negative and sum to a positive value"
            ),
            NoiseError::InvalidParam { name, value } => {
                write!(f, "parameter `{name}` out of range: {value}")
            }
        }
    }
}

impl std::error::Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            NoiseError::InvalidScale(-1.0).to_string(),
            NoiseError::InvalidEpsilon(0.0).to_string(),
            NoiseError::InvalidDelta(1.5).to_string(),
            NoiseError::InvalidSensitivity(f64::NAN).to_string(),
            NoiseError::InvalidWeights.to_string(),
            NoiseError::InvalidParam { name: "gamma", value: 1.0 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(NoiseError::InvalidParam { name: "gamma", value: 1.0 }
            .to_string()
            .contains("gamma"));
    }
}
