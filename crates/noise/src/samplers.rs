//! Hand-rolled statistical samplers.
//!
//! `rand_distr` is not on the offline dependency allowlist, so the
//! distributions needed to reproduce the paper's skewed-data experiments
//! (Figures 7 & 11: exponential, gamma, Gaussian-mixture fact data; graph
//! generation needs Zipf/power-law degrees) are implemented and tested here.

use crate::error::NoiseError;
use crate::rng::StarRng;

/// Exponential distribution with rate `λ > 0` (mean `1/λ`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `λ`.
    pub fn new(rate: f64) -> Result<Self, NoiseError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(NoiseError::InvalidParam { name: "rate", value: rate });
        }
        Ok(Exponential { rate })
    }

    /// Inverse-CDF sample: `-ln(u)/λ`.
    pub fn sample(&self, rng: &mut StarRng) -> f64 {
        -rng.open01().ln() / self.rate
    }

    /// Distribution mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Normal distribution sampled with the Marsaglia polar method.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution `N(mean, std²)`.
    pub fn new(mean: f64, std: f64) -> Result<Self, NoiseError> {
        if !mean.is_finite() {
            return Err(NoiseError::InvalidParam { name: "mean", value: mean });
        }
        if !(std.is_finite() && std > 0.0) {
            return Err(NoiseError::InvalidParam { name: "std", value: std });
        }
        Ok(Normal { mean, std })
    }

    /// One standard-normal draw, shifted and scaled.
    pub fn sample(&self, rng: &mut StarRng) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }
}

/// One `N(0,1)` draw via the Marsaglia polar method.
pub fn standard_normal(rng: &mut StarRng) -> f64 {
    loop {
        let u = 2.0 * rng.unit() - 1.0;
        let v = 2.0 * rng.unit() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Gamma distribution with shape `k > 0` and scale `θ > 0`
/// (mean `kθ`, variance `kθ²`), sampled with Marsaglia–Tsang.
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    pub fn new(shape: f64, scale: f64) -> Result<Self, NoiseError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(NoiseError::InvalidParam { name: "shape", value: shape });
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(NoiseError::InvalidParam { name: "scale", value: scale });
        }
        Ok(Gamma { shape, scale })
    }

    /// Distribution mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// One sample. For `k < 1` uses the boost `Gamma(k) = Gamma(k+1)·U^{1/k}`.
    pub fn sample(&self, rng: &mut StarRng) -> f64 {
        if self.shape < 1.0 {
            let boosted = Gamma { shape: self.shape + 1.0, scale: self.scale };
            let u = rng.open01();
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        // Marsaglia–Tsang (2000): d = k - 1/3, c = 1/sqrt(9d).
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.open01();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * self.scale;
            }
        }
    }
}

/// A weighted mixture of normal components — the paper's Figure 11 varies the
/// skew of the fact data with two-component Gaussian mixtures `GM_{a,b}(μ,σ)`.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    components: Vec<(f64, Normal)>,
    /// Cumulative weights for selection.
    cum: Vec<f64>,
}

impl GaussianMixture {
    /// Creates a mixture from `(weight, mean, std)` triples. Weights are
    /// normalized; each must be non-negative and at least one positive.
    pub fn new(components: &[(f64, f64, f64)]) -> Result<Self, NoiseError> {
        if components.is_empty() {
            return Err(NoiseError::InvalidWeights);
        }
        let total: f64 = components.iter().map(|c| c.0).sum();
        if !(total.is_finite() && total > 0.0)
            || components.iter().any(|c| !c.0.is_finite() || c.0 < 0.0)
        {
            return Err(NoiseError::InvalidWeights);
        }
        let mut comps = Vec::with_capacity(components.len());
        let mut cum = Vec::with_capacity(components.len());
        let mut acc = 0.0;
        for &(w, mu, sigma) in components {
            comps.push((w / total, Normal::new(mu, sigma)?));
            acc += w / total;
            cum.push(acc);
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        Ok(GaussianMixture { components: comps, cum })
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Mixture mean `Σ wᵢ μᵢ`.
    pub fn mean(&self) -> f64 {
        self.components.iter().map(|(w, n)| w * n.mean).sum()
    }

    /// One sample: pick a component by weight, then draw from it.
    pub fn sample(&self, rng: &mut StarRng) -> f64 {
        let u = rng.unit();
        let idx = self.cum.partition_point(|&c| c < u).min(self.components.len() - 1);
        self.components[idx].1.sample(rng)
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = i) ∝ 1/(i+1)^s`. Backed by a precomputed CDF table with
/// binary-search sampling — `n` up to a few hundred thousand is cheap and is
/// exactly the regime of the paper's graph datasets.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, NoiseError> {
        if n == 0 {
            return Err(NoiseError::InvalidParam { name: "n", value: 0.0 });
        }
        if !(s.is_finite() && s > 0.0) {
            return Err(NoiseError::InvalidParam { name: "s", value: s });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the distribution has no ranks (never constructible).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample_index(&self, rng: &mut StarRng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::new(0.5).unwrap();
        let mut rng = StarRng::from_seed(1);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert!(samples.iter().all(|&x| x > 0.0));
        assert!(Exponential::new(0.0).is_err());
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StarRng::from_seed(2);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let d = Gamma::new(3.0, 2.0).unwrap();
        let mut rng = StarRng::from_seed(3);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((var - 12.0).abs() < 0.8, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let d = Gamma::new(0.5, 1.0).unwrap();
        let mut rng = StarRng::from_seed(4);
        let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((var - 0.5).abs() < 0.05, "var {var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let gm = GaussianMixture::new(&[(1.0, 0.0, 1.0), (3.0, 8.0, 1.0)]).unwrap();
        assert!((gm.mean() - 6.0).abs() < 1e-12);
        let mut rng = StarRng::from_seed(5);
        let samples: Vec<f64> = (0..100_000).map(|_| gm.sample(&mut rng)).collect();
        let (mean, _) = mean_var(&samples);
        assert!((mean - 6.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn mixture_is_bimodal() {
        let gm = GaussianMixture::new(&[(1.0, -10.0, 0.5), (1.0, 10.0, 0.5)]).unwrap();
        let mut rng = StarRng::from_seed(6);
        let near_zero = (0..50_000).map(|_| gm.sample(&mut rng)).filter(|x| x.abs() < 5.0).count();
        assert_eq!(near_zero, 0, "no mass should fall between the two modes");
    }

    #[test]
    fn mixture_rejects_bad_weights() {
        assert!(GaussianMixture::new(&[]).is_err());
        assert!(GaussianMixture::new(&[(-1.0, 0.0, 1.0)]).is_err());
        assert!(GaussianMixture::new(&[(0.0, 0.0, 1.0)]).is_err());
    }

    #[test]
    fn zipf_frequencies_decay() {
        let z = Zipf::new(100, 1.2).unwrap();
        let mut rng = StarRng::from_seed(7);
        let mut counts = vec![0u32; 100];
        for _ in 0..200_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9], "rank 0 should beat rank 9");
        assert!(counts[9] > counts[99], "rank 9 should beat rank 99");
        // Ratio of first to second rank should be near 2^1.2 ≈ 2.3.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0_f64.powf(1.2)).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 2.0).unwrap();
        assert_eq!(z.len(), 7);
        let mut rng = StarRng::from_seed(8);
        for _ in 0..10_000 {
            assert!(z.sample_index(&mut rng) < 7);
        }
    }
}
