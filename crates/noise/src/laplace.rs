//! The Laplace distribution, the workhorse of ε-differential privacy.
//!
//! The paper's Theorem 3.2 (Laplace Mechanism) releases `Q(D) + Lap(GS_Q/ε)`;
//! the Predicate Mechanism (Algorithm 2) adds `Lap(dom(a_i)/ε)` to predicate
//! constants. Both are instances of [`Laplace`].

use crate::error::NoiseError;
use crate::rng::StarRng;

/// Zero-mean Laplace distribution with scale `b > 0`.
///
/// Density `f(x) = exp(-|x|/b) / (2b)`, variance `2b²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale.
    pub fn new(scale: f64) -> Result<Self, NoiseError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(NoiseError::InvalidScale(scale));
        }
        Ok(Laplace { scale })
    }

    /// Calibrates the scale for the Laplace mechanism: `b = sensitivity / ε`.
    pub fn from_sensitivity(sensitivity: f64, epsilon: f64) -> Result<Self, NoiseError> {
        if !(sensitivity.is_finite() && sensitivity >= 0.0) {
            return Err(NoiseError::InvalidSensitivity(sensitivity));
        }
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(NoiseError::InvalidEpsilon(epsilon));
        }
        // A zero-sensitivity query needs no noise; represent it with the
        // smallest positive scale so sampling still works uniformly.
        let scale = if sensitivity == 0.0 { f64::MIN_POSITIVE } else { sensitivity / epsilon };
        Ok(Laplace { scale })
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The distribution variance, `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one sample via the inverse CDF:
    /// `x = -b · sgn(u) · ln(1 - 2|u|)` for `u ~ U(-1/2, 1/2)`.
    pub fn sample(&self, rng: &mut StarRng) -> f64 {
        let u = rng.open01() - 0.5;
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-x.abs() / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }
}

/// Convenience: one Laplace draw with the given scale.
pub fn laplace_noise(scale: f64, rng: &mut StarRng) -> Result<f64, NoiseError> {
    Ok(Laplace::new(scale)?.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(Laplace::from_sensitivity(1.0, 0.0).is_err());
        assert!(Laplace::from_sensitivity(-1.0, 1.0).is_err());
        assert!(Laplace::from_sensitivity(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn calibration_matches_mechanism_definition() {
        let l = Laplace::from_sensitivity(7.0, 0.5).unwrap();
        assert!((l.scale() - 14.0).abs() < 1e-12);
        assert!((l.variance() - 2.0 * 14.0 * 14.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sensitivity_means_negligible_noise() {
        let l = Laplace::from_sensitivity(0.0, 1.0).unwrap();
        let mut rng = StarRng::from_seed(1);
        for _ in 0..100 {
            assert!(l.sample(&mut rng).abs() < 1e-290);
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let l = Laplace::new(3.0).unwrap();
        let mut rng = StarRng::from_seed(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| l.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} should be near 0");
        let expected = l.variance();
        assert!(
            (var - expected).abs() / expected < 0.05,
            "variance {var} should be near {expected}"
        );
    }

    #[test]
    fn cdf_pdf_consistency() {
        let l = Laplace::new(2.0).unwrap();
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(l.cdf(-1e9) < 1e-12);
        assert!((l.cdf(1e9) - 1.0).abs() < 1e-12);
        // Numeric derivative of the CDF approximates the PDF.
        for &x in &[-3.0, -0.5, 0.25, 1.0, 4.0] {
            let h = 1e-6;
            let d = (l.cdf(x + h) - l.cdf(x - h)) / (2.0 * h);
            assert!((d - l.pdf(x)).abs() < 1e-5, "pdf/cdf mismatch at {x}");
        }
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let l = Laplace::new(1.0).unwrap();
        let mut rng = StarRng::from_seed(21);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| l.sample(&mut rng)).collect();
        for &q in &[-2.0, -1.0, 0.0, 1.0, 2.0] {
            let emp = samples.iter().filter(|&&x| x <= q).count() as f64 / n as f64;
            assert!((emp - l.cdf(q)).abs() < 0.01, "empirical CDF at {q}: {emp} vs {}", l.cdf(q));
        }
    }
}
