//! The discrete Laplace (two-sided geometric) distribution.
//!
//! Predicate constants live on integer domains, so perturbing them with a
//! *discrete* mechanism is the type-correct alternative to rounding a
//! continuous Laplace draw (Ghosh–Roughgarden–Sundararajan's geometric
//! mechanism is the discrete optimum for counting queries). DP-starJ's
//! Algorithm 2 rounds continuous noise; the `pma` module exposes this
//! distribution as an ablation alternative.

use crate::error::NoiseError;
use crate::rng::StarRng;

/// Zero-mean discrete Laplace: `P(k) ∝ α^{|k|}` over the integers, with
/// `α = exp(-1/scale)`. Matching the continuous mechanism's calibration,
/// `scale = sensitivity / ε` gives ε-DP for integer-valued queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteLaplace {
    scale: f64,
    alpha: f64,
}

impl DiscreteLaplace {
    /// Creates a discrete Laplace distribution with the given scale.
    pub fn new(scale: f64) -> Result<Self, NoiseError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(NoiseError::InvalidScale(scale));
        }
        Ok(DiscreteLaplace { scale, alpha: (-1.0 / scale).exp() })
    }

    /// Calibrates the scale as `sensitivity / ε`.
    pub fn from_sensitivity(sensitivity: f64, epsilon: f64) -> Result<Self, NoiseError> {
        if !(sensitivity.is_finite() && sensitivity >= 0.0) {
            return Err(NoiseError::InvalidSensitivity(sensitivity));
        }
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(NoiseError::InvalidEpsilon(epsilon));
        }
        DiscreteLaplace::new((sensitivity / epsilon).max(f64::MIN_POSITIVE))
    }

    /// The scale parameter.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The geometric decay `α = e^{-1/scale}`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Distribution variance: `2α / (1 − α)²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.alpha / ((1.0 - self.alpha) * (1.0 - self.alpha))
    }

    /// One integer sample: difference of two geometric draws, the standard
    /// two-sided geometric construction.
    pub fn sample(&self, rng: &mut StarRng) -> i64 {
        let g1 = self.geometric(rng);
        let g2 = self.geometric(rng);
        g1 - g2
    }

    /// Geometric(1 − α) over {0, 1, 2, …} by inverse CDF.
    fn geometric(&self, rng: &mut StarRng) -> i64 {
        if self.alpha <= 0.0 {
            return 0;
        }
        let u = rng.open01();
        // P(X ≥ k) = α^k  ⇒  X = floor(ln u / ln α).
        let k = (u.ln() / self.alpha.ln()).floor();
        if k.is_finite() {
            k.clamp(0.0, 1e18) as i64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(DiscreteLaplace::new(0.0).is_err());
        assert!(DiscreteLaplace::new(-2.0).is_err());
        assert!(DiscreteLaplace::new(f64::NAN).is_err());
        assert!(DiscreteLaplace::from_sensitivity(1.0, 0.0).is_err());
        assert!(DiscreteLaplace::from_sensitivity(-1.0, 1.0).is_err());
    }

    #[test]
    fn zero_sensitivity_is_nearly_silent() {
        let d = DiscreteLaplace::from_sensitivity(0.0, 1.0).unwrap();
        let mut rng = StarRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_are_symmetric_integers() {
        let d = DiscreteLaplace::new(3.0).unwrap();
        let mut rng = StarRng::from_seed(2);
        let n = 100_000;
        let mut pos = 0usize;
        let mut neg = 0usize;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            if s > 0 {
                pos += 1;
            } else if s < 0 {
                neg += 1;
            }
        }
        let ratio = pos as f64 / neg as f64;
        assert!((ratio - 1.0).abs() < 0.05, "symmetry broken: {ratio}");
    }

    #[test]
    fn variance_matches_theory() {
        let d = DiscreteLaplace::new(2.0).unwrap();
        let mut rng = StarRng::from_seed(3);
        let n = 300_000;
        let var: f64 = (0..n).map(|_| (d.sample(&mut rng) as f64).powi(2)).sum::<f64>() / n as f64;
        let expected = d.variance();
        assert!((var - expected).abs() / expected < 0.05, "variance {var} vs theory {expected}");
    }

    #[test]
    fn variance_approaches_continuous_laplace_for_large_scale() {
        // For scale ≫ 1 the discrete variance 2α/(1−α)² → 2·scale².
        let d = DiscreteLaplace::new(50.0).unwrap();
        let continuous = 2.0 * 50.0 * 50.0;
        assert!((d.variance() - continuous).abs() / continuous < 0.05);
    }

    #[test]
    fn small_scale_concentrates_at_zero() {
        let d = DiscreteLaplace::new(0.2).unwrap();
        let mut rng = StarRng::from_seed(4);
        let zeros = (0..10_000).filter(|_| d.sample(&mut rng) == 0).count();
        assert!(zeros > 9_500, "scale 0.2 should almost always emit 0: {zeros}");
    }
}
