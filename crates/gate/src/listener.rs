//! The wire listener: a dependency-free blocking-accept front door.
//!
//! [`Gate::bind`] opens a TCP listener and serves the protocol in
//! [`crate::wire`] with one accept thread plus one thread per connection —
//! the same "std threads, no async runtime" shape as the service's
//! coalescer worker pool (the workspace ships no tokio). Per connection:
//!
//! * **auth** — the first thing every request resolves is its token
//!   against [`GateConfig::tokens`]; an unknown token is a structured
//!   `unauthorized` refusal and costs nothing. The `metrics` verb is
//!   additionally gated behind [`GateConfig::admin_tokens`] — its
//!   exposition spans every tenant, so a plain tenant token gets a
//!   `forbidden` refusal instead;
//! * **pipelining with FIFO responses** — a client may stream many
//!   requests without waiting; answers come back in request order.
//!   Requests the service parks in its coalescer queue
//!   ([`starj_service::Submitted::Queued`]) ride in a per-connection
//!   FIFO; front entries are resolved (blocking) whenever the connection
//!   goes idle, the peer closes, or …
//! * **backpressure** — … more than [`GateConfig::max_in_flight`] answers
//!   are outstanding: the reader stops pulling frames until the front of
//!   the queue resolves, so a flooding client backs up its own TCP
//!   stream instead of the server's memory, and the fair coalescer queue
//!   sees at most `max_in_flight` of its jobs at a time;
//! * **request-id threading** — each request's wire id is entered into
//!   the ambient [`starj_telemetry::WireRequestScope`] around parse and
//!   submit, so trace spans adopt it as their trace id and every audit
//!   event the request ever produces (including refunds settled later on
//!   a coalescer worker thread) carries it.
//!
//! Dropping the [`Gate`] stops accepting, joins every thread, and
//! resolves all outstanding answers first — no request is abandoned.

use crate::sql::parse_query;
use crate::wire::{
    answer_frame, frame_of, gate_refusal, refusal, router_code, write_frame, WireRequest,
};
use starj_engine::{canonicalize, to_sql, StarSchema};
use starj_router::Router;
use starj_service::{ServiceAnswer, ServiceError, Submitted};
use starj_telemetry::{Json, WireRequestScope};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-door configuration.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// `(token, tenant)` pairs: the token a client presents and the
    /// tenant id its requests are billed to.
    pub tokens: Vec<(String, String)>,
    /// Tokens allowed to call the `metrics` verb. The exposition covers
    /// **every** tenant (identities, ε/δ spends, query hashes, timing),
    /// so a plain tenant token must not read it — tenant tokens get a
    /// `forbidden` refusal. Empty (the default) disables the verb.
    pub admin_tokens: Vec<String>,
    /// Maximum queued (not yet answered) requests per connection before
    /// the reader stops pulling frames. Clamped to ≥ 1.
    pub max_in_flight: usize,
    /// Maximum frame size in bytes; larger frames close the connection
    /// with a `frame_too_large` refusal.
    pub max_frame: usize,
    /// How often blocked reads wake up to notice shutdown or drain idle
    /// queues.
    pub poll_interval: Duration,
    /// How long a connection may sit **mid-frame** — length prefix or
    /// body partially received — before the gate gives up on it: the
    /// reader answers a `timeout` refusal and closes. This bounds the
    /// lifetime a slowloris-style trickle writer can pin a connection
    /// thread; a client idle *between* frames is never timed out.
    /// `Duration::ZERO` disables the deadline.
    pub read_timeout: Duration,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tokens: Vec::new(),
            admin_tokens: Vec::new(),
            max_in_flight: 32,
            max_frame: 1 << 20,
            poll_interval: Duration::from_millis(5),
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A bound, serving front door. Dropping it shuts the listener down and
/// joins every spawned thread.
#[derive(Debug)]
pub struct Gate {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Gate {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `router` behind it.
    pub fn bind(router: Arc<Router>, config: GateConfig, addr: &str) -> std::io::Result<Gate> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let config = Arc::new(GateConfig { max_in_flight: config.max_in_flight.max(1), ..config });

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new().name("starj-gate-accept".into()).spawn(move || {
                let mut next_conn = 0u64;
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let router = Arc::clone(&router);
                    let config = Arc::clone(&config);
                    let shutdown = Arc::clone(&shutdown);
                    let name = format!("starj-gate-conn-{next_conn}");
                    next_conn += 1;
                    let handle = std::thread::Builder::new()
                        .name(name)
                        .spawn(move || serve_connection(stream, &router, &config, &shutdown))
                        .expect("spawn gate connection thread");
                    let mut held = conns.lock().unwrap_or_else(|e| e.into_inner());
                    // Reap finished connections so the handle list stays
                    // proportional to live connections, not total served.
                    let (done, live): (Vec<_>, Vec<_>) =
                        held.drain(..).partition(|h| h.is_finished());
                    for h in done {
                        let _ = h.join();
                    }
                    *held = live;
                    held.push(handle);
                }
            })?
        };

        Ok(Gate { addr, shutdown, accept: Some(accept), conns })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Gate {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut held = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            held.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---- per-connection serving ------------------------------------------------

/// One response slot in the per-connection FIFO.
enum Entry {
    /// Already rendered; waiting its turn behind earlier slots.
    Ready(Json),
    /// Parked in the service's coalescer; resolving blocks.
    InFlight { id: u64, pending: Submitted<ServiceAnswer>, schema: Arc<StarSchema> },
}

fn resolve(entry: Entry) -> Json {
    match entry {
        Entry::Ready(json) => json,
        Entry::InFlight { id, pending, schema } => match pending.wait() {
            Ok(answer) => rendered_answer(id, &answer, &schema),
            Err(err) => service_refusal(id, &err),
        },
    }
}

fn rendered_answer(id: u64, answer: &ServiceAnswer, schema: &StarSchema) -> Json {
    let noisy_sql = answer.noisy_query.as_ref().map(|q| to_sql(schema, q));
    answer_frame(id, answer, noisy_sql)
}

fn service_refusal(id: u64, err: &ServiceError) -> Json {
    refusal(id, crate::wire::service_code(err), &err.to_string())
}

fn serve_connection(
    mut stream: TcpStream,
    router: &Arc<Router>,
    config: &GateConfig,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(config.poll_interval));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::default();
    let mut queue: VecDeque<Entry> = VecDeque::new();

    loop {
        match reader.step(&mut stream, config.max_frame) {
            Ok(Event::Idle) => {
                // The client paused: flush everything outstanding so
                // answers are not held hostage to the next request, then
                // notice shutdown.
                if flush(&mut stream, &mut queue, 0).is_err() {
                    return;
                }
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if reader.stalled(config.read_timeout) {
                    // A half-received frame outlived the read deadline:
                    // the peer is trickling bytes (or wedged). Refuse and
                    // close rather than pin this thread indefinitely.
                    let note = refusal(
                        0,
                        "timeout",
                        &format!(
                            "closed: a partial frame stalled past the {}ms read timeout",
                            config.read_timeout.as_millis()
                        ),
                    );
                    let _ = write_frame(&mut stream, &frame_of(&note));
                    return;
                }
            }
            Ok(Event::Eof) => {
                let _ = flush(&mut stream, &mut queue, 0);
                return;
            }
            Ok(Event::Frame(body)) => {
                match WireRequest::decode(&body) {
                    Err((id, code, message)) => {
                        // Malformed frames refuse but keep the connection:
                        // the framing itself was intact.
                        queue.push_back(Entry::Ready(refusal(id, code, &message)));
                    }
                    Ok(request) => handle_request(router, config, request, &mut queue),
                }
                // Send whatever is deliverable, then enforce the
                // in-flight cap before reading more.
                if flush_ready(&mut stream, &mut queue).is_err()
                    || flush(&mut stream, &mut queue, config.max_in_flight).is_err()
                {
                    return;
                }
                // Notice shutdown here too: a client streaming frames
                // back-to-back never yields an Idle event, and the drop
                // path joins this thread — it must not need the client's
                // cooperation to terminate. The request just handled is
                // flushed first, so nothing is abandoned.
                if shutdown.load(Ordering::SeqCst) {
                    let _ = flush(&mut stream, &mut queue, 0);
                    return;
                }
            }
            Err(FrameError::TooLarge(len)) => {
                // The stream is no longer frame-aligned; refuse and close.
                let _ = flush(&mut stream, &mut queue, 0);
                let note = refusal(
                    0,
                    "frame_too_large",
                    &format!("frame of {len} bytes exceeds the {}-byte cap", config.max_frame),
                );
                let _ = write_frame(&mut stream, &frame_of(&note));
                return;
            }
            Err(FrameError::Io) => return,
        }
    }
}

/// Serves one decoded request, pushing its response (or parked handle)
/// onto the connection's FIFO.
fn handle_request(
    router: &Arc<Router>,
    config: &GateConfig,
    request: WireRequest,
    queue: &mut VecDeque<Entry>,
) {
    let id = request.id();
    match request {
        WireRequest::Metrics { ref token, .. } => {
            // The exposition is gate-wide: every tenant's identity,
            // spend, query hashes, and timing. Admin tokens only — a
            // tenant token reading it would be cross-tenant disclosure.
            if config.admin_tokens.iter().any(|t| t == token) {
                queue.push_back(Entry::Ready(Json::obj(vec![
                    ("id", Json::Num(id as f64)),
                    ("ok", Json::Num(1.0)),
                    ("prometheus", Json::Str(router.prometheus_text())),
                    ("audit_jsonl", Json::Str(router.audit_jsonl())),
                ])));
            } else if authorize(config, token).is_some() {
                queue.push_back(Entry::Ready(refusal(
                    id,
                    "forbidden",
                    "the metrics verb requires an admin token",
                )));
            } else {
                queue.push_back(Entry::Ready(refusal(id, "unauthorized", "unknown auth token")));
            }
        }
        WireRequest::Sql { token, dataset, sql, epsilon, name, .. } => {
            let Some(tenant) = authorize(config, &token) else {
                queue.push_back(Entry::Ready(refusal(id, "unauthorized", "unknown auth token")));
                return;
            };
            // The ambient wire id covers parse through submit: trace
            // spans started and audit contexts captured inside the
            // submit path adopt it (and carry it to worker threads).
            let _scope = WireRequestScope::enter(id);
            let schema = match router.dataset_schema(&dataset) {
                Ok(schema) => schema,
                Err(err) => {
                    queue.push_back(Entry::Ready(refusal(id, router_code(&err), &err.to_string())));
                    return;
                }
            };
            let label = name.as_deref().unwrap_or("sql");
            let query = match parse_query(&schema, &sql, label) {
                // Serve the canonical form so presentation variants hit
                // the same cache entry — except unsatisfiable queries,
                // where `to_query` is lossy (it drops the contradictory
                // predicates); submit those as parsed and let the service
                // detect the contradiction and answer free.
                Ok(query) => {
                    let canon = canonicalize(&query);
                    if canon.unsatisfiable {
                        query
                    } else {
                        canon.to_query(label)
                    }
                }
                Err(err) => {
                    queue.push_back(Entry::Ready(gate_refusal(id, &err)));
                    return;
                }
            };
            match router.pm_submit(&dataset, &tenant, &query, epsilon) {
                Ok(Submitted::Ready(answer)) => {
                    queue.push_back(Entry::Ready(rendered_answer(id, &answer, &schema)));
                }
                Ok(pending @ Submitted::Queued(_)) => {
                    queue.push_back(Entry::InFlight { id, pending, schema });
                }
                Err(err) => {
                    queue.push_back(Entry::Ready(refusal(id, router_code(&err), &err.to_string())));
                }
            }
        }
    }
}

/// Resolves a tenant token to the tenant id it bills to.
fn authorize(config: &GateConfig, token: &str) -> Option<String> {
    config.tokens.iter().find(|(t, _)| t == token).map(|(_, tenant)| tenant.clone())
}

/// Writes queue entries from the front until at most `keep_in_flight`
/// unresolved entries remain (resolving blocks on parked answers).
fn flush(
    stream: &mut TcpStream,
    queue: &mut VecDeque<Entry>,
    keep_in_flight: usize,
) -> std::io::Result<()> {
    flush_ready(stream, queue)?;
    while queue.len() > keep_in_flight {
        let entry = queue.pop_front().expect("len checked");
        let json = resolve(entry);
        write_frame(stream, &frame_of(&json))?;
        flush_ready(stream, queue)?;
    }
    Ok(())
}

/// Writes already-rendered entries from the front without blocking on
/// parked ones (FIFO: stops at the first in-flight entry).
fn flush_ready(stream: &mut TcpStream, queue: &mut VecDeque<Entry>) -> std::io::Result<()> {
    while matches!(queue.front(), Some(Entry::Ready(_))) {
        let Some(Entry::Ready(json)) = queue.pop_front() else { unreachable!() };
        write_frame(stream, &frame_of(&json))?;
    }
    Ok(())
}

// ---- frame reading across read timeouts ------------------------------------

enum Event {
    Frame(Vec<u8>),
    Idle,
    Eof,
}

enum FrameError {
    TooLarge(usize),
    Io,
}

/// Accumulates one length-prefixed frame across short read timeouts, so a
/// frame split over many TCP segments survives the poll loop.
#[derive(Default)]
struct FrameReader {
    /// Bytes of the 4-byte length prefix read so far.
    len_buf: [u8; 4],
    len_got: usize,
    /// The frame body being filled once the length is known.
    body: Vec<u8>,
    body_got: usize,
    /// When the first byte of the frame in progress arrived; `None`
    /// between frames. Drives [`GateConfig::read_timeout`].
    partial_since: Option<std::time::Instant>,
}

impl FrameReader {
    /// True when a partially received frame has sat longer than
    /// `timeout` (zero disables the deadline).
    fn stalled(&self, timeout: Duration) -> bool {
        !timeout.is_zero() && self.partial_since.is_some_and(|since| since.elapsed() >= timeout)
    }

    fn step(&mut self, stream: &mut TcpStream, max_frame: usize) -> Result<Event, FrameError> {
        use std::io::Read;
        loop {
            if self.len_got < 4 {
                match stream.read(&mut self.len_buf[self.len_got..]) {
                    Ok(0) => {
                        return if self.len_got == 0 {
                            Ok(Event::Eof)
                        } else {
                            // Mid-prefix EOF: a truncated frame, not clean.
                            Err(FrameError::Io)
                        };
                    }
                    Ok(n) => {
                        if self.partial_since.is_none() {
                            self.partial_since = Some(std::time::Instant::now());
                        }
                        self.len_got += n;
                        if self.len_got == 4 {
                            let len = u32::from_be_bytes(self.len_buf) as usize;
                            if len > max_frame {
                                return Err(FrameError::TooLarge(len));
                            }
                            self.body = vec![0u8; len];
                            self.body_got = 0;
                        }
                    }
                    Err(e) if is_timeout(&e) => return Ok(Event::Idle),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return Err(FrameError::Io),
                }
                continue;
            }
            if self.body_got == self.body.len() {
                self.len_got = 0;
                self.partial_since = None;
                return Ok(Event::Frame(std::mem::take(&mut self.body)));
            }
            match stream.read(&mut self.body[self.body_got..]) {
                Ok(0) => return Err(FrameError::Io),
                Ok(n) => self.body_got += n,
                Err(e) if is_timeout(&e) => return Ok(Event::Idle),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(FrameError::Io),
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_frame;

    #[test]
    fn frame_reader_survives_byte_dribble() {
        // Feed a frame one byte at a time through a pair of connected
        // sockets; the reader must reassemble it across timeouts.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut out = TcpStream::connect(addr).unwrap();
            let mut frame = Vec::new();
            write_frame(&mut std::io::Cursor::new(&mut frame), b"dribble").unwrap();
            for b in frame {
                out.write_all(&[b]).unwrap();
                out.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(2))).unwrap();
        let mut reader = FrameReader::default();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let body = loop {
            match reader.step(&mut stream, 1024) {
                Ok(Event::Frame(body)) => break body,
                Ok(Event::Idle) => assert!(std::time::Instant::now() < deadline, "timed out"),
                Ok(Event::Eof) => panic!("unexpected EOF"),
                Err(_) => panic!("unexpected frame error"),
            }
        };
        assert_eq!(body, b"dribble");
        writer.join().unwrap();
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut out = TcpStream::connect(addr).unwrap();
            out.write_all(&u32::MAX.to_be_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut reader = FrameReader::default();
        loop {
            match reader.step(&mut stream, 1024) {
                Err(FrameError::TooLarge(len)) => {
                    assert_eq!(len, u32::MAX as usize);
                    break;
                }
                Ok(Event::Idle) => {}
                other => panic!(
                    "expected TooLarge, got {:?}",
                    match other {
                        Ok(Event::Frame(_)) => "frame",
                        Ok(Event::Eof) => "eof",
                        Ok(Event::Idle) => "idle",
                        Err(FrameError::Io) => "io",
                        Err(FrameError::TooLarge(_)) => unreachable!(),
                    }
                ),
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn partial_frame_clock_arms_mid_frame_and_clears_on_completion() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut out = TcpStream::connect(addr).unwrap();
            let mut frame = Vec::new();
            write_frame(&mut std::io::Cursor::new(&mut frame), b"slow").unwrap();
            // Send half the frame, stall, then finish it.
            out.write_all(&frame[..3]).unwrap();
            out.flush().unwrap();
            std::thread::sleep(Duration::from_millis(40));
            out.write_all(&frame[3..]).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(2))).unwrap();
        let mut reader = FrameReader::default();
        assert!(!reader.stalled(Duration::from_millis(1)), "no partial frame yet");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut saw_stall = false;
        loop {
            match reader.step(&mut stream, 1024) {
                Ok(Event::Frame(body)) => {
                    assert_eq!(body, b"slow");
                    break;
                }
                Ok(Event::Idle) => {
                    assert!(std::time::Instant::now() < deadline, "timed out");
                    saw_stall |= reader.stalled(Duration::from_millis(10));
                    // A generous deadline must NOT fire for a brief stall.
                    assert!(!reader.stalled(Duration::from_secs(60)));
                }
                Ok(Event::Eof) => panic!("unexpected EOF"),
                Err(_) => panic!("unexpected frame error"),
            }
        }
        assert!(saw_stall, "the mid-frame stall should have tripped the short deadline");
        assert!(
            !reader.stalled(Duration::from_millis(1)),
            "completing the frame clears the partial clock"
        );
        assert!(!reader.stalled(Duration::ZERO), "zero disables the deadline");
        writer.join().unwrap();
    }

    #[test]
    fn read_frame_is_reexported_for_clients() {
        // Silences the "unused import" the module doc promises about.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        assert_eq!(read_frame(&mut std::io::Cursor::new(buf), 16).unwrap().unwrap(), b"x");
    }
}
