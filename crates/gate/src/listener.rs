//! The wire listener: a dependency-free blocking-accept front door.
//!
//! [`Gate::bind`] opens a TCP listener and serves the protocol in
//! [`crate::wire`] with one accept thread plus one thread per connection —
//! the same "std threads, no async runtime" shape as the service's
//! coalescer worker pool (the workspace ships no tokio). Per connection:
//!
//! * **auth** — the first thing every request resolves is its token
//!   against [`GateConfig::tokens`]; an unknown token is a structured
//!   `unauthorized` refusal and costs nothing. The operator verbs
//!   (`metrics`, `subscribe`, `explain`) are additionally gated behind
//!   [`GateConfig::admin_tokens`] — expositions and event streams span
//!   every tenant and explain reports are un-noised, so a plain tenant
//!   token gets a `forbidden` refusal instead;
//! * **live streaming** — a `subscribe` turns the connection into an
//!   event stream: whenever the reader goes idle (and after each served
//!   frame) the connection drains its bounded per-subscriber ring onto
//!   the wire. A consumer slower than the event rate loses oldest-first
//!   and is told so via `dropped` notice frames; it can never grow the
//!   server's memory or stall the serving path;
//! * **pipelining with FIFO responses** — a client may stream many
//!   requests without waiting; answers come back in request order.
//!   Requests the service parks in its coalescer queue
//!   ([`starj_service::Submitted::Queued`]) ride in a per-connection
//!   FIFO; front entries are resolved (blocking) whenever the connection
//!   goes idle, the peer closes, or …
//! * **backpressure** — … more than [`GateConfig::max_in_flight`] answers
//!   are outstanding: the reader stops pulling frames until the front of
//!   the queue resolves, so a flooding client backs up its own TCP
//!   stream instead of the server's memory, and the fair coalescer queue
//!   sees at most `max_in_flight` of its jobs at a time;
//! * **request-id threading** — each request's wire id is entered into
//!   the ambient [`starj_telemetry::WireRequestScope`] around parse and
//!   submit, so trace spans adopt it as their trace id and every audit
//!   event the request ever produces (including refunds settled later on
//!   a coalescer worker thread) carries it.
//!
//! Dropping the [`Gate`] stops accepting, joins every thread, and
//! resolves all outstanding answers first — no request is abandoned.

use crate::metrics::GateMetrics;
use crate::sql::parse_query;
use crate::wire::{
    answer_frame, frame_of, gate_refusal, refusal, router_code, write_frame, WireRequest,
};
use starj_engine::{canonicalize, to_sql, StarSchema};
use starj_router::Router;
use starj_service::{ServiceAnswer, ServiceError, Submitted};
use starj_telemetry::{
    Json, RequestKind, Subscription, Telemetry, TelemetryConfig, TraceContextScope, TraceOutcome,
    WireRequestScope,
};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Ring capacity for a `subscribe` whose request omits `capacity`.
const DEFAULT_SUBSCRIBE_CAPACITY: usize = 256;

/// Front-door configuration.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// `(token, tenant)` pairs: the token a client presents and the
    /// tenant id its requests are billed to.
    pub tokens: Vec<(String, String)>,
    /// Tokens allowed to call the `metrics` verb. The exposition covers
    /// **every** tenant (identities, ε/δ spends, query hashes, timing),
    /// so a plain tenant token must not read it — tenant tokens get a
    /// `forbidden` refusal. Empty (the default) disables the verb.
    pub admin_tokens: Vec<String>,
    /// Maximum queued (not yet answered) requests per connection before
    /// the reader stops pulling frames. Clamped to ≥ 1.
    pub max_in_flight: usize,
    /// Maximum frame size in bytes; larger frames close the connection
    /// with a `frame_too_large` refusal.
    pub max_frame: usize,
    /// How often blocked reads wake up to notice shutdown or drain idle
    /// queues.
    pub poll_interval: Duration,
    /// How long a connection may sit **mid-frame** — length prefix or
    /// body partially received — before the gate gives up on it: the
    /// reader answers a `timeout` refusal and closes. This bounds the
    /// lifetime a slowloris-style trickle writer can pin a connection
    /// thread; a client idle *between* frames is never timed out.
    /// `Duration::ZERO` disables the deadline.
    pub read_timeout: Duration,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tokens: Vec::new(),
            admin_tokens: Vec::new(),
            max_in_flight: 32,
            max_frame: 1 << 20,
            poll_interval: Duration::from_millis(5),
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// State shared by every connection thread of one gate: the config plus
/// the listener's own metrics and (bus-backed) telemetry hub.
#[derive(Debug)]
pub struct GateShared {
    config: GateConfig,
    metrics: GateMetrics,
    /// The gate's telemetry hub. Enabled only when the router carries an
    /// [`starj_telemetry::EventBus`]: its sole job is publishing the
    /// per-request root span (component `gate`) onto the stream, so
    /// without a bus it is fully disabled and request serving skips even
    /// the clock reads.
    telemetry: Telemetry,
}

/// A bound, serving front door. Dropping it shuts the listener down and
/// joins every spawned thread.
#[derive(Debug)]
pub struct Gate {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<GateShared>,
}

impl Gate {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `router` behind it.
    pub fn bind(router: Arc<Router>, config: GateConfig, addr: &str) -> std::io::Result<Gate> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let telemetry = match router.bus() {
            Some(bus) => Telemetry::new(&TelemetryConfig {
                trace_capacity: 256,
                audit_capacity: 0,
                slow_query_us: u64::MAX,
                slow_log_capacity: 0,
                bus: Some(Arc::clone(bus)),
                component: "gate".to_string(),
            }),
            None => Telemetry::disabled(),
        };
        let shared = Arc::new(GateShared {
            config: GateConfig { max_in_flight: config.max_in_flight.max(1), ..config },
            metrics: GateMetrics::default(),
            telemetry,
        });

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new().name("starj-gate-accept".into()).spawn(move || {
                let mut next_conn = 0u64;
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    GateMetrics::inc(&shared.metrics.connections_total);
                    let router = Arc::clone(&router);
                    let shared = Arc::clone(&shared);
                    let shutdown = Arc::clone(&shutdown);
                    let name = format!("starj-gate-conn-{next_conn}");
                    next_conn += 1;
                    let handle = std::thread::Builder::new()
                        .name(name)
                        .spawn(move || serve_connection(stream, &router, &shared, &shutdown))
                        .expect("spawn gate connection thread");
                    let mut held = conns.lock().unwrap_or_else(|e| e.into_inner());
                    // Reap finished connections so the handle list stays
                    // proportional to live connections, not total served.
                    let (done, live): (Vec<_>, Vec<_>) =
                        held.drain(..).partition(|h| h.is_finished());
                    for h in done {
                        let _ = h.join();
                    }
                    *held = live;
                    held.push(handle);
                }
            })?
        };

        Ok(Gate { addr, shutdown, accept: Some(accept), conns, shared })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The listener's own counters (connections, frames, verbs, refusals).
    pub fn metrics(&self) -> &GateMetrics {
        &self.shared.metrics
    }
}

impl Drop for Gate {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut held = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            held.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---- per-connection serving ------------------------------------------------

/// One response slot in the per-connection FIFO.
enum Entry {
    /// Already rendered; waiting its turn behind earlier slots.
    Ready(Json),
    /// Parked in the service's coalescer; resolving blocks.
    InFlight { id: u64, pending: Submitted<ServiceAnswer>, schema: Arc<StarSchema> },
}

fn resolve(entry: Entry) -> Json {
    match entry {
        Entry::Ready(json) => json,
        Entry::InFlight { id, pending, schema } => match pending.wait() {
            Ok(answer) => rendered_answer(id, &answer, &schema),
            Err(err) => service_refusal(id, &err),
        },
    }
}

fn rendered_answer(id: u64, answer: &ServiceAnswer, schema: &StarSchema) -> Json {
    let noisy_sql = answer.noisy_query.as_ref().map(|q| to_sql(schema, q));
    answer_frame(id, answer, noisy_sql)
}

fn service_refusal(id: u64, err: &ServiceError) -> Json {
    refusal(id, crate::wire::service_code(err), &err.to_string())
}

/// Decrements `active_connections` on scope exit, whatever the exit path.
struct ActiveGuard<'a>(&'a AtomicU64);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One connection's live `subscribe` stream, at most one per connection.
struct LiveSubscription {
    /// The subscribe request's id; every event frame echoes it.
    id: u64,
    sub: Subscription,
    /// Drops already reported to the client, so each pump only announces
    /// the delta since the previous notice.
    drops_reported: u64,
}

fn serve_connection(
    mut stream: TcpStream,
    router: &Arc<Router>,
    shared: &GateShared,
    shutdown: &AtomicBool,
) {
    let config = &shared.config;
    let metrics = &shared.metrics;
    GateMetrics::inc(&metrics.active_connections);
    let _active = ActiveGuard(&metrics.active_connections);
    let _ = stream.set_read_timeout(Some(config.poll_interval));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::default();
    let mut queue: VecDeque<Entry> = VecDeque::new();
    let mut subscription: Option<LiveSubscription> = None;

    loop {
        match reader.step(&mut stream, config.max_frame) {
            Ok(Event::Idle) => {
                // The client paused: flush everything outstanding so
                // answers are not held hostage to the next request, then
                // push any queued stream events, then notice shutdown.
                if flush(&mut stream, &mut queue, 0, metrics).is_err()
                    || pump_subscription(&mut stream, &mut subscription, metrics).is_err()
                {
                    return;
                }
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if reader.stalled(config.read_timeout) {
                    // A half-received frame outlived the read deadline:
                    // the peer is trickling bytes (or wedged). Refuse and
                    // close rather than pin this thread indefinitely.
                    let note = refusal(
                        0,
                        "timeout",
                        &format!(
                            "closed: a partial frame stalled past the {}ms read timeout",
                            config.read_timeout.as_millis()
                        ),
                    );
                    let _ = send_frame(&mut stream, metrics, &note);
                    return;
                }
            }
            Ok(Event::Eof) => {
                let _ = flush(&mut stream, &mut queue, 0, metrics);
                return;
            }
            Ok(Event::Frame(body)) => {
                GateMetrics::inc(&metrics.frames_in);
                match WireRequest::decode(&body) {
                    Err((id, code, message)) => {
                        // Malformed frames refuse but keep the connection:
                        // the framing itself was intact.
                        queue.push_back(Entry::Ready(refusal(id, code, &message)));
                    }
                    Ok(request) => {
                        handle_request(router, shared, request, &mut queue, &mut subscription)
                    }
                }
                // Send whatever is deliverable, then enforce the
                // in-flight cap before reading more.
                if flush_ready(&mut stream, &mut queue, metrics).is_err()
                    || flush(&mut stream, &mut queue, config.max_in_flight, metrics).is_err()
                    || pump_subscription(&mut stream, &mut subscription, metrics).is_err()
                {
                    return;
                }
                // Notice shutdown here too: a client streaming frames
                // back-to-back never yields an Idle event, and the drop
                // path joins this thread — it must not need the client's
                // cooperation to terminate. The request just handled is
                // flushed first, so nothing is abandoned.
                if shutdown.load(Ordering::SeqCst) {
                    let _ = flush(&mut stream, &mut queue, 0, metrics);
                    return;
                }
            }
            Err(FrameError::TooLarge(len)) => {
                // The stream is no longer frame-aligned; refuse and close.
                let _ = flush(&mut stream, &mut queue, 0, metrics);
                let note = refusal(
                    0,
                    "frame_too_large",
                    &format!("frame of {len} bytes exceeds the {}-byte cap", config.max_frame),
                );
                let _ = send_frame(&mut stream, metrics, &note);
                return;
            }
            Err(FrameError::Io) => return,
        }
    }
}

/// The single chokepoint every outbound frame passes through: counts it,
/// and when it is a refusal (`ok` = 0) tallies its stable code.
fn send_frame(stream: &mut TcpStream, metrics: &GateMetrics, json: &Json) -> std::io::Result<()> {
    GateMetrics::inc(&metrics.frames_out);
    if json.get("ok").and_then(Json::as_f64) == Some(0.0) {
        metrics.refusal(json.get("code").and_then(Json::as_str).unwrap_or("unknown"));
    }
    write_frame(stream, &frame_of(json))
}

/// Drains the connection's live subscription (if any) onto the wire:
/// every queued event becomes one frame echoing the subscription's id,
/// and newly dropped events are announced with a `dropped` notice frame
/// so loss is visible to the consumer that caused it.
fn pump_subscription(
    stream: &mut TcpStream,
    subscription: &mut Option<LiveSubscription>,
    metrics: &GateMetrics,
) -> std::io::Result<()> {
    let Some(live) = subscription.as_mut() else { return Ok(()) };
    let dropped = live.sub.dropped();
    if dropped > live.drops_reported {
        let delta = dropped - live.drops_reported;
        GateMetrics::add(&metrics.events_dropped, delta);
        live.drops_reported = dropped;
        let notice = Json::obj(vec![
            ("id", Json::Num(live.id as f64)),
            ("ok", Json::Num(1.0)),
            ("event", Json::Str("dropped".into())),
            ("dropped", Json::Num(delta as f64)),
            ("dropped_total", Json::Num(dropped as f64)),
        ]);
        send_frame(stream, metrics, &notice)?;
    }
    for event in live.sub.drain() {
        let mut json = event.to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.insert(0, ("ok".to_string(), Json::Num(1.0)));
            pairs.insert(0, ("id".to_string(), Json::Num(live.id as f64)));
        }
        GateMetrics::inc(&metrics.events_streamed);
        send_frame(stream, metrics, &json)?;
    }
    Ok(())
}

/// Serves one decoded request, pushing its response (or parked handle)
/// onto the connection's FIFO.
fn handle_request(
    router: &Arc<Router>,
    shared: &GateShared,
    request: WireRequest,
    queue: &mut VecDeque<Entry>,
    subscription: &mut Option<LiveSubscription>,
) {
    let config = &shared.config;
    let id = request.id();
    match request {
        WireRequest::Metrics { ref token, .. } => {
            GateMetrics::inc(&shared.metrics.verb_metrics);
            // The exposition is gate-wide: every tenant's identity,
            // spend, query hashes, and timing. Admin tokens only — a
            // tenant token reading it would be cross-tenant disclosure.
            if is_admin(config, token) {
                // The gate's own families use disjoint names, so the
                // concatenation is still one well-formed exposition.
                let mut prometheus = router.prometheus_text();
                prometheus.push_str(&shared.metrics.prometheus_text());
                queue.push_back(Entry::Ready(Json::obj(vec![
                    ("id", Json::Num(id as f64)),
                    ("ok", Json::Num(1.0)),
                    ("prometheus", Json::Str(prometheus)),
                    ("audit_jsonl", Json::Str(router.audit_jsonl())),
                ])));
            } else {
                queue.push_back(Entry::Ready(admin_refusal(config, id, token, "metrics")));
            }
        }
        WireRequest::Subscribe { ref token, capacity, .. } => {
            GateMetrics::inc(&shared.metrics.verb_subscribe);
            // The stream interleaves every tenant's audit events and
            // spans, so it is admin-gated exactly like `metrics`.
            if !is_admin(config, token) {
                queue.push_back(Entry::Ready(admin_refusal(config, id, token, "subscribe")));
                return;
            }
            let Some(bus) = router.bus() else {
                queue.push_back(Entry::Ready(refusal(
                    id,
                    "no_stream",
                    "this router was built without an event bus; nothing to subscribe to",
                )));
                return;
            };
            if subscription.is_some() {
                queue.push_back(Entry::Ready(refusal(
                    id,
                    "already_subscribed",
                    "this connection already carries a subscription",
                )));
                return;
            }
            let sub = bus.subscribe(capacity.unwrap_or(DEFAULT_SUBSCRIBE_CAPACITY));
            queue.push_back(Entry::Ready(Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("ok", Json::Num(1.0)),
                ("kind", Json::Str("subscribed".into())),
                ("capacity", Json::Num(sub.capacity() as f64)),
            ])));
            *subscription = Some(LiveSubscription { id, sub, drops_reported: 0 });
        }
        WireRequest::Explain { ref token, ref dataset, ref sql, profile, .. } => {
            GateMetrics::inc(&shared.metrics.verb_explain);
            // Explain reports carry exact, un-noised plan statistics
            // (sampled selectivities, row counts) — admin only.
            if !is_admin(config, token) {
                queue.push_back(Entry::Ready(admin_refusal(config, id, token, "explain")));
                return;
            }
            let _scope = WireRequestScope::enter(id);
            let schema = match router.dataset_schema(dataset) {
                Ok(schema) => schema,
                Err(err) => {
                    queue.push_back(Entry::Ready(refusal(id, router_code(&err), &err.to_string())));
                    return;
                }
            };
            let query = match parse_query(&schema, sql, "explain") {
                Ok(query) => query,
                Err(err) => {
                    queue.push_back(Entry::Ready(gate_refusal(id, &err)));
                    return;
                }
            };
            match router.explain(dataset, &query, profile) {
                Ok(report) => {
                    let mut json = report.to_json();
                    if let Json::Obj(pairs) = &mut json {
                        pairs.insert(0, ("dataset".to_string(), Json::Str(dataset.clone())));
                        pairs.insert(0, ("kind".to_string(), Json::Str("explain".into())));
                        pairs.insert(0, ("ok".to_string(), Json::Num(1.0)));
                        pairs.insert(0, ("id".to_string(), Json::Num(id as f64)));
                    }
                    queue.push_back(Entry::Ready(json));
                }
                Err(err) => {
                    queue.push_back(Entry::Ready(refusal(id, router_code(&err), &err.to_string())));
                }
            }
        }
        WireRequest::Sql { token, dataset, sql, epsilon, name, .. } => {
            GateMetrics::inc(&shared.metrics.verb_sql);
            let Some(tenant) = authorize(config, &token) else {
                queue.push_back(Entry::Ready(refusal(id, "unauthorized", "unknown auth token")));
                return;
            };
            // The ambient wire id covers parse through submit: trace
            // spans started and audit contexts captured inside the
            // submit path adopt it (and carry it to worker threads).
            let _scope = WireRequestScope::enter(id);
            // The gate's root span. Started *inside* the wire scope so
            // its trace id is the wire id, and entered as the ambient
            // parent so the router fan-out / service spans this request
            // produces all hang off it — one wire id stitches the whole
            // gate → router → shard → worker timeline back together.
            let trace = shared.telemetry.trace_start(RequestKind::Gate, &tenant);
            // Only with tracing on: a disabled builder's child context is
            // all zeros and would clobber the wire-id scope above.
            let _span_scope = shared
                .telemetry
                .tracing_enabled()
                .then(|| TraceContextScope::enter(trace.child_context()));
            let schema = match router.dataset_schema(&dataset) {
                Ok(schema) => schema,
                Err(err) => {
                    queue.push_back(Entry::Ready(refusal(id, router_code(&err), &err.to_string())));
                    return;
                }
            };
            let label = name.as_deref().unwrap_or("sql");
            let query = match parse_query(&schema, &sql, label) {
                // Serve the canonical form so presentation variants hit
                // the same cache entry — except unsatisfiable queries,
                // where `to_query` is lossy (it drops the contradictory
                // predicates); submit those as parsed and let the service
                // detect the contradiction and answer free.
                Ok(query) => {
                    let canon = canonicalize(&query);
                    if canon.unsatisfiable {
                        query
                    } else {
                        canon.to_query(label)
                    }
                }
                Err(err) => {
                    queue.push_back(Entry::Ready(gate_refusal(id, &err)));
                    return;
                }
            };
            match router.pm_submit(&dataset, &tenant, &query, epsilon) {
                Ok(Submitted::Ready(answer)) => {
                    let outcome = if answer.cached {
                        TraceOutcome::Cached
                    } else if answer.cost.is_none() {
                        TraceOutcome::Free
                    } else {
                        TraceOutcome::Ok
                    };
                    shared.telemetry.trace_finish(trace, outcome);
                    queue.push_back(Entry::Ready(rendered_answer(id, &answer, &schema)));
                }
                Ok(pending @ Submitted::Queued(_)) => {
                    // The root span covers parse + submit; the queued
                    // evaluation gets its own (child) spans on the
                    // coalescer side.
                    shared.telemetry.trace_finish(trace, TraceOutcome::Ok);
                    queue.push_back(Entry::InFlight { id, pending, schema });
                }
                Err(err) => {
                    // Refusals never land in the span ring or the stream —
                    // dropping the builder unfinished is the refusal path.
                    queue.push_back(Entry::Ready(refusal(id, router_code(&err), &err.to_string())));
                }
            }
        }
    }
}

/// True iff `token` may use the admin verbs (`metrics`, `subscribe`,
/// `explain`).
fn is_admin(config: &GateConfig, token: &str) -> bool {
    config.admin_tokens.iter().any(|t| t == token)
}

/// The right refusal for a non-admin token on an admin verb: `forbidden`
/// for a valid tenant token, `unauthorized` for an unknown one.
fn admin_refusal(config: &GateConfig, id: u64, token: &str, verb: &str) -> Json {
    if authorize(config, token).is_some() {
        refusal(id, "forbidden", &format!("the {verb} verb requires an admin token"))
    } else {
        refusal(id, "unauthorized", "unknown auth token")
    }
}

/// Resolves a tenant token to the tenant id it bills to.
fn authorize(config: &GateConfig, token: &str) -> Option<String> {
    config.tokens.iter().find(|(t, _)| t == token).map(|(_, tenant)| tenant.clone())
}

/// Writes queue entries from the front until at most `keep_in_flight`
/// unresolved entries remain (resolving blocks on parked answers).
fn flush(
    stream: &mut TcpStream,
    queue: &mut VecDeque<Entry>,
    keep_in_flight: usize,
    metrics: &GateMetrics,
) -> std::io::Result<()> {
    flush_ready(stream, queue, metrics)?;
    while queue.len() > keep_in_flight {
        let entry = queue.pop_front().expect("len checked");
        let json = resolve(entry);
        send_frame(stream, metrics, &json)?;
        flush_ready(stream, queue, metrics)?;
    }
    Ok(())
}

/// Writes already-rendered entries from the front without blocking on
/// parked ones (FIFO: stops at the first in-flight entry).
fn flush_ready(
    stream: &mut TcpStream,
    queue: &mut VecDeque<Entry>,
    metrics: &GateMetrics,
) -> std::io::Result<()> {
    while matches!(queue.front(), Some(Entry::Ready(_))) {
        let Some(Entry::Ready(json)) = queue.pop_front() else { unreachable!() };
        send_frame(stream, metrics, &json)?;
    }
    Ok(())
}

// ---- frame reading across read timeouts ------------------------------------

enum Event {
    Frame(Vec<u8>),
    Idle,
    Eof,
}

enum FrameError {
    TooLarge(usize),
    Io,
}

/// Accumulates one length-prefixed frame across short read timeouts, so a
/// frame split over many TCP segments survives the poll loop.
#[derive(Default)]
struct FrameReader {
    /// Bytes of the 4-byte length prefix read so far.
    len_buf: [u8; 4],
    len_got: usize,
    /// The frame body being filled once the length is known.
    body: Vec<u8>,
    body_got: usize,
    /// When the first byte of the frame in progress arrived; `None`
    /// between frames. Drives [`GateConfig::read_timeout`].
    partial_since: Option<std::time::Instant>,
}

impl FrameReader {
    /// True when a partially received frame has sat longer than
    /// `timeout` (zero disables the deadline).
    fn stalled(&self, timeout: Duration) -> bool {
        !timeout.is_zero() && self.partial_since.is_some_and(|since| since.elapsed() >= timeout)
    }

    fn step(&mut self, stream: &mut TcpStream, max_frame: usize) -> Result<Event, FrameError> {
        use std::io::Read;
        loop {
            if self.len_got < 4 {
                match stream.read(&mut self.len_buf[self.len_got..]) {
                    Ok(0) => {
                        return if self.len_got == 0 {
                            Ok(Event::Eof)
                        } else {
                            // Mid-prefix EOF: a truncated frame, not clean.
                            Err(FrameError::Io)
                        };
                    }
                    Ok(n) => {
                        if self.partial_since.is_none() {
                            self.partial_since = Some(std::time::Instant::now());
                        }
                        self.len_got += n;
                        if self.len_got == 4 {
                            let len = u32::from_be_bytes(self.len_buf) as usize;
                            if len > max_frame {
                                return Err(FrameError::TooLarge(len));
                            }
                            self.body = vec![0u8; len];
                            self.body_got = 0;
                        }
                    }
                    Err(e) if is_timeout(&e) => return Ok(Event::Idle),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return Err(FrameError::Io),
                }
                continue;
            }
            if self.body_got == self.body.len() {
                self.len_got = 0;
                self.partial_since = None;
                return Ok(Event::Frame(std::mem::take(&mut self.body)));
            }
            match stream.read(&mut self.body[self.body_got..]) {
                Ok(0) => return Err(FrameError::Io),
                Ok(n) => self.body_got += n,
                Err(e) if is_timeout(&e) => return Ok(Event::Idle),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(FrameError::Io),
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_frame;

    #[test]
    fn frame_reader_survives_byte_dribble() {
        // Feed a frame one byte at a time through a pair of connected
        // sockets; the reader must reassemble it across timeouts.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut out = TcpStream::connect(addr).unwrap();
            let mut frame = Vec::new();
            write_frame(&mut std::io::Cursor::new(&mut frame), b"dribble").unwrap();
            for b in frame {
                out.write_all(&[b]).unwrap();
                out.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(2))).unwrap();
        let mut reader = FrameReader::default();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let body = loop {
            match reader.step(&mut stream, 1024) {
                Ok(Event::Frame(body)) => break body,
                Ok(Event::Idle) => assert!(std::time::Instant::now() < deadline, "timed out"),
                Ok(Event::Eof) => panic!("unexpected EOF"),
                Err(_) => panic!("unexpected frame error"),
            }
        };
        assert_eq!(body, b"dribble");
        writer.join().unwrap();
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut out = TcpStream::connect(addr).unwrap();
            out.write_all(&u32::MAX.to_be_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut reader = FrameReader::default();
        loop {
            match reader.step(&mut stream, 1024) {
                Err(FrameError::TooLarge(len)) => {
                    assert_eq!(len, u32::MAX as usize);
                    break;
                }
                Ok(Event::Idle) => {}
                other => panic!(
                    "expected TooLarge, got {:?}",
                    match other {
                        Ok(Event::Frame(_)) => "frame",
                        Ok(Event::Eof) => "eof",
                        Ok(Event::Idle) => "idle",
                        Err(FrameError::Io) => "io",
                        Err(FrameError::TooLarge(_)) => unreachable!(),
                    }
                ),
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn partial_frame_clock_arms_mid_frame_and_clears_on_completion() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            use std::io::Write;
            let mut out = TcpStream::connect(addr).unwrap();
            let mut frame = Vec::new();
            write_frame(&mut std::io::Cursor::new(&mut frame), b"slow").unwrap();
            // Send half the frame, stall, then finish it.
            out.write_all(&frame[..3]).unwrap();
            out.flush().unwrap();
            std::thread::sleep(Duration::from_millis(40));
            out.write_all(&frame[3..]).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(Duration::from_millis(2))).unwrap();
        let mut reader = FrameReader::default();
        assert!(!reader.stalled(Duration::from_millis(1)), "no partial frame yet");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut saw_stall = false;
        loop {
            match reader.step(&mut stream, 1024) {
                Ok(Event::Frame(body)) => {
                    assert_eq!(body, b"slow");
                    break;
                }
                Ok(Event::Idle) => {
                    assert!(std::time::Instant::now() < deadline, "timed out");
                    saw_stall |= reader.stalled(Duration::from_millis(10));
                    // A generous deadline must NOT fire for a brief stall.
                    assert!(!reader.stalled(Duration::from_secs(60)));
                }
                Ok(Event::Eof) => panic!("unexpected EOF"),
                Err(_) => panic!("unexpected frame error"),
            }
        }
        assert!(saw_stall, "the mid-frame stall should have tripped the short deadline");
        assert!(
            !reader.stalled(Duration::from_millis(1)),
            "completing the frame clears the partial clock"
        );
        assert!(!reader.stalled(Duration::ZERO), "zero disables the deadline");
        writer.join().unwrap();
    }

    #[test]
    fn read_frame_is_reexported_for_clients() {
        // Silences the "unused import" the module doc promises about.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        assert_eq!(read_frame(&mut std::io::Cursor::new(buf), 16).unwrap().unwrap(), b"x");
    }
}
