//! Gate/listener metrics: what the front door itself is doing.
//!
//! The service and router expositions cover everything *behind* the gate
//! (queries served, budgets, kernels); this module covers the wire layer
//! in front of it — connections, frames, per-verb traffic, refusals by
//! code, streamed/dropped subscription events — plus the process-level
//! `starj_build_info` gauge and uptime every scrape wants. All counters
//! are relaxed atomics on the hot path; the one `Mutex` (refusal codes)
//! is taken only when a refusal is actually written.

use starj_telemetry::PromText;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Listener-level counters, shared by every connection thread.
#[derive(Debug)]
pub struct GateMetrics {
    /// Connections accepted over the gate's lifetime.
    pub connections_total: AtomicU64,
    /// Connections currently being served.
    pub active_connections: AtomicU64,
    /// Request frames decoded off the wire (malformed frames included).
    pub frames_in: AtomicU64,
    /// Response/event frames written to the wire.
    pub frames_out: AtomicU64,
    /// `sql` requests handled.
    pub verb_sql: AtomicU64,
    /// `metrics` requests handled.
    pub verb_metrics: AtomicU64,
    /// `subscribe` requests handled.
    pub verb_subscribe: AtomicU64,
    /// `explain` requests handled.
    pub verb_explain: AtomicU64,
    /// Subscription events streamed to subscribers.
    pub events_streamed: AtomicU64,
    /// Subscription events dropped at slow subscribers (ring overwrite).
    pub events_dropped: AtomicU64,
    /// Refusal frames written, tallied by their stable `code`.
    refusals: Mutex<BTreeMap<String, u64>>,
    /// When the gate bound — drives the uptime gauge.
    started: Instant,
}

impl Default for GateMetrics {
    fn default() -> Self {
        GateMetrics {
            connections_total: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            verb_sql: AtomicU64::new(0),
            verb_metrics: AtomicU64::new(0),
            verb_subscribe: AtomicU64::new(0),
            verb_explain: AtomicU64::new(0),
            events_streamed: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            refusals: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }
}

impl GateMetrics {
    /// Adds one (relaxed; tallies, not synchronization points).
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` (relaxed).
    pub fn add(counter: &AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Tallies one refusal under its stable code.
    pub fn refusal(&self, code: &str) {
        let mut map = self.refusals.lock().unwrap_or_else(|e| e.into_inner());
        *map.entry(code.to_string()).or_insert(0) += 1;
    }

    /// The refusal tally, sorted by code.
    pub fn refusal_counts(&self) -> Vec<(String, u64)> {
        let map = self.refusals.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Seconds since the gate bound.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The gate's own Prometheus text-format exposition. Metric names are
    /// disjoint from the service/router families, so appending this to a
    /// [`starj_router::Router::prometheus_text`] snapshot still lints
    /// clean (no duplicate headers).
    pub fn prometheus_text(&self) -> String {
        let mut p = PromText::new();
        p.header("starj_build_info", "Build metadata; value is always 1.", "gauge");
        p.sample(
            "starj_build_info",
            &[("version", env!("CARGO_PKG_VERSION")), ("crate", "starj-gate")],
            1.0,
        );
        p.header(
            "starj_gate_uptime_seconds",
            "Seconds since the gate bound its listener.",
            "gauge",
        );
        p.sample("starj_gate_uptime_seconds", &[], self.uptime_seconds());
        p.header("starj_gate_active_connections", "Connections currently being served.", "gauge");
        p.sample(
            "starj_gate_active_connections",
            &[],
            self.active_connections.load(Ordering::Relaxed) as f64,
        );
        for (name, help, value) in [
            ("connections", "Connections accepted.", &self.connections_total),
            ("frames_in", "Request frames read off the wire.", &self.frames_in),
            ("frames_out", "Response/event frames written to the wire.", &self.frames_out),
            ("events_streamed", "Subscription events streamed.", &self.events_streamed),
            (
                "events_dropped",
                "Subscription events dropped at slow subscribers.",
                &self.events_dropped,
            ),
        ] {
            let metric = format!("starj_gate_{name}_total");
            p.header(&metric, help, "counter");
            p.sample(&metric, &[], value.load(Ordering::Relaxed) as f64);
        }
        p.header("starj_gate_requests_total", "Requests handled, by verb.", "counter");
        for (verb, counter) in [
            ("sql", &self.verb_sql),
            ("metrics", &self.verb_metrics),
            ("subscribe", &self.verb_subscribe),
            ("explain", &self.verb_explain),
        ] {
            p.sample(
                "starj_gate_requests_total",
                &[("verb", verb)],
                counter.load(Ordering::Relaxed) as f64,
            );
        }
        let refusals = self.refusal_counts();
        p.header("starj_gate_refusals_total", "Refusal frames written, by stable code.", "counter");
        if refusals.is_empty() {
            p.sample("starj_gate_refusals_total", &[("code", "none")], 0.0);
        }
        for (code, count) in &refusals {
            p.sample("starj_gate_refusals_total", &[("code", code)], *count as f64);
        }
        p.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_lints_and_carries_every_family() {
        let m = GateMetrics::default();
        GateMetrics::inc(&m.connections_total);
        GateMetrics::inc(&m.active_connections);
        GateMetrics::add(&m.frames_in, 3);
        GateMetrics::inc(&m.verb_sql);
        m.refusal("unauthorized");
        m.refusal("unauthorized");
        m.refusal("budget_exhausted");
        let text = m.prometheus_text();
        let report = starj_telemetry::prom::lint(&text).expect("gate exposition lints clean");
        assert!(report.families >= 8, "families: {}", report.families);
        assert!(text.contains("starj_build_info{"));
        assert!(text.contains("starj_gate_refusals_total{code=\"unauthorized\"} 2\n"));
        assert!(text.contains("starj_gate_requests_total{verb=\"sql\"} 1\n"));
    }

    #[test]
    fn refusal_tally_is_sorted_by_code() {
        let m = GateMetrics::default();
        m.refusal("zeta");
        m.refusal("alpha");
        let codes: Vec<String> = m.refusal_counts().into_iter().map(|(c, _)| c).collect();
        assert_eq!(codes, ["alpha", "zeta"]);
    }
}
