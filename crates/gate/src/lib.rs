//! # starj-gate — the SQL front door
//!
//! Everything below this crate answers star-join queries as Rust values;
//! this crate is the boundary where **untrusted text** enters the system.
//! It has two halves:
//!
//! * [`sql`] — a hand-rolled recursive-descent parser for the exact SQL
//!   dialect [`starj_engine::to_sql`] renders, resolving names against a
//!   [`starj_engine::StarSchema`] and lowering to a
//!   [`starj_engine::StarQuery`] via the engine's canonicalization pass.
//!   Total over hostile input: typed, byte-position-carrying
//!   [`GateError`]s, never a panic. `parse(to_sql(q))` is
//!   canon-equivalent to `q` (the round-trip property
//!   `tests/gate_sql.rs` proves over random snowflake schemas).
//! * [`listener`] — a dependency-free blocking-accept TCP listener
//!   ([`Gate`]) speaking length-prefixed JSON frames ([`wire`]), with
//!   per-tenant token auth, a per-connection in-flight cap that
//!   backpressures into the service's fair coalescer queue, structured
//!   refusals for every service/router error, admin-token-gated operator
//!   verbs (`metrics`, `subscribe` for live audit/span streaming,
//!   `explain` for no-budget plan reports), listener-level counters
//!   ([`metrics`]), and the client's request id threaded into trace
//!   spans and audit events.
//!
//! The privacy posture is deliberate: the gate holds **no** privacy
//! state. Admission, budget accounting, caching, and noise all stay in
//! `starj-service`; a parse here spends nothing, and every refusal says
//! so in a machine-readable code.

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod listener;
pub mod metrics;
pub mod sql;
pub mod wire;

pub use client::{sql_request, ClientConfig, GateClient, GateClientError};
pub use error::GateError;
pub use listener::{Gate, GateConfig};
pub use metrics::GateMetrics;
pub use sql::{parse_canonical, parse_query};
pub use wire::{router_code, service_code, WireRequest};
