//! Typed, position-carrying errors for the SQL front door.
//!
//! Everything that arrives over the wire is untrusted, so every failure
//! mode is a value, never a panic: the lexer and parser report the byte
//! offset they stopped at, the resolver reports the offset of the name or
//! literal it could not bind, and the listener maps each variant to a
//! stable machine-readable refusal code (see [`GateError::code`]).

use std::fmt;

/// Errors the SQL front door can return for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// The SQL text failed to lex: an unterminated string literal, a byte
    /// outside the dialect's alphabet, or a numeric literal overflowing
    /// `u32`. `pos` is the byte offset of the offending input.
    Lex {
        /// Byte offset into the SQL text.
        pos: usize,
        /// What went wrong.
        message: String,
    },
    /// The token stream failed to parse against the dialect grammar.
    /// `pos` is the byte offset of the unexpected token.
    Parse {
        /// Byte offset into the SQL text.
        pos: usize,
        /// What the parser was expecting.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// The statement parsed but a name or literal failed to bind against
    /// the schema: an unknown table or attribute, a label outside its
    /// domain, a code beyond the domain size, a join condition that does
    /// not match any declared foreign key, …
    Resolve {
        /// Byte offset of the name or literal that failed to bind.
        pos: usize,
        /// What failed to resolve.
        message: String,
    },
}

impl GateError {
    /// The byte offset in the SQL text the error anchors to.
    pub fn pos(&self) -> usize {
        match self {
            GateError::Lex { pos, .. }
            | GateError::Parse { pos, .. }
            | GateError::Resolve { pos, .. } => *pos,
        }
    }

    /// The stable machine-readable refusal code the wire protocol uses.
    pub fn code(&self) -> &'static str {
        match self {
            GateError::Lex { .. } | GateError::Parse { .. } => "parse_error",
            GateError::Resolve { .. } => "resolve_error",
        }
    }
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Lex { pos, message } => {
                write!(f, "SQL lex error at byte {pos}: {message}")
            }
            GateError::Parse { pos, expected, found } => {
                write!(f, "SQL parse error at byte {pos}: expected {expected}, found {found}")
            }
            GateError::Resolve { pos, message } => {
                write!(f, "SQL resolve error at byte {pos}: {message}")
            }
        }
    }
}

impl std::error::Error for GateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_position() {
        let e = GateError::Parse { pos: 17, expected: "FROM".into(), found: "end of input".into() };
        let msg = e.to_string();
        assert!(msg.contains("17") && msg.contains("FROM") && msg.contains("end of input"));
        assert_eq!(e.pos(), 17);
        assert_eq!(e.code(), "parse_error");
        assert_eq!(GateError::Resolve { pos: 0, message: String::new() }.code(), "resolve_error");
    }
}
