//! A small blocking client for the gate's wire protocol — what tests, the
//! bench harness, and the example use to talk to a [`crate::Gate`].

use crate::wire::{frame_of, read_frame, write_frame};
use starj_telemetry::Json;
use std::net::TcpStream;

/// A blocking connection to a gate.
#[derive(Debug)]
pub struct GateClient {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
}

impl GateClient {
    /// Connects to `addr` (anything `TcpStream::connect` accepts).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<GateClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(GateClient { stream, next_id: 1, max_frame: 1 << 24 })
    }

    /// Sends a raw request document (adding an `id` if the caller did not
    /// set one) and returns the id it went out with.
    pub fn send(&mut self, mut request: Json) -> std::io::Result<u64> {
        let id = match request.get("id").and_then(Json::as_f64) {
            Some(id) if id >= 1.0 => id as u64,
            _ => {
                let id = self.next_id;
                if let Json::Obj(pairs) = &mut request {
                    pairs.insert(0, ("id".to_string(), Json::Num(id as f64)));
                }
                id
            }
        };
        self.next_id = self.next_id.max(id) + 1;
        write_frame(&mut self.stream, &frame_of(&request))?;
        Ok(id)
    }

    /// Receives the next response frame. Errors on EOF (the server only
    /// closes mid-conversation for frame-layer violations).
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let body = read_frame(&mut self.stream, self.max_frame)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let text = String::from_utf8(body).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "response is not UTF-8")
        })?;
        Json::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends one SQL request and blocks for its response. With pipelined
    /// use (several [`GateClient::send`]s before [`GateClient::recv`]s),
    /// responses come back in send order.
    pub fn sql(
        &mut self,
        token: &str,
        dataset: &str,
        sql: &str,
        epsilon: f64,
    ) -> std::io::Result<Json> {
        self.send(sql_request(0, token, dataset, sql, epsilon))?;
        self.recv()
    }

    /// Sends a metrics request and blocks for the snapshot.
    pub fn metrics(&mut self, token: &str) -> std::io::Result<Json> {
        self.send(Json::obj(vec![
            ("verb", Json::Str("metrics".into())),
            ("token", Json::Str(token.into())),
        ]))?;
        self.recv()
    }
}

/// Builds a `verb: "sql"` request document. `id` 0 lets
/// [`GateClient::send`] assign the next sequential id.
pub fn sql_request(id: u64, token: &str, dataset: &str, sql: &str, epsilon: f64) -> Json {
    let mut pairs = Vec::new();
    if id > 0 {
        pairs.push(("id", Json::Num(id as f64)));
    }
    pairs.extend([
        ("verb", Json::Str("sql".into())),
        ("token", Json::Str(token.into())),
        ("dataset", Json::Str(dataset.into())),
        ("sql", Json::Str(sql.into())),
        ("epsilon", Json::Num(epsilon)),
    ]);
    Json::obj(pairs)
}
