//! A small blocking client for the gate's wire protocol — what tests, the
//! bench harness, and the example use to talk to a [`crate::Gate`].
//!
//! # Retry safety
//!
//! Reconnecting ([`GateClient::reconnect`]) and resubmitting is safe for
//! requests the client saw **refused**: a structured refusal means the
//! service spent nothing (any budget reservation was refunded), so sending
//! the same request again — with the same or a fresh wire id — cannot
//! double-spend. The dangerous case is a request that was **in flight**
//! when the connection died: the server may have committed its budget
//! charge and lost only the response. Such requests must not be blindly
//! retried; the wire request id the client sent is carried into the
//! server's audit trail, so an operator can check whether the original
//! committed before resubmitting.

use crate::wire::{frame_of, read_frame, write_frame};
use starj_telemetry::Json;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Dial policy for [`GateClient::connect_with`] and
/// [`GateClient::reconnect`]: bounded exponential backoff with
/// deterministic, seeded jitter.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Re-dial attempts after the first failure (so `retries + 1` dials
    /// total before [`GateClientError::RetriesExhausted`]).
    pub retries: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff step.
    pub max_backoff: Duration,
    /// Seed for the jitter stream. Jitter is a pure function of
    /// `(jitter_seed, attempt)` — two clients with the same seed back off
    /// identically, and tests can pin the schedule.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retries: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x5354_4152_4a47_4154, // "STARJGAT"
        }
    }
}

impl ClientConfig {
    /// The delay before retry `attempt` (0-based): the capped exponential
    /// step scaled into `[50%, 100%)` by seeded jitter, so a thundering
    /// herd of restarting clients decorrelates without losing the bound.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let step = self.base_backoff.saturating_mul(1u32 << attempt.min(16)).min(self.max_backoff);
        let bits = splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9));
        let frac = 0.5 + ((bits >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
        step.mul_f64(frac)
    }
}

/// Typed failure from the dialing paths.
#[derive(Debug)]
pub enum GateClientError {
    /// Every dial attempt failed. `attempts` counts dials made; `last`
    /// is the error from the final one.
    RetriesExhausted {
        /// Dial attempts made (`retries + 1`, or 0 if the address never
        /// resolved).
        attempts: u32,
        /// The last underlying IO error.
        last: std::io::Error,
    },
}

impl std::fmt::Display for GateClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gate unreachable after {attempts} dial attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for GateClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GateClientError::RetriesExhausted { last, .. } => Some(last),
        }
    }
}

/// A blocking connection to a gate.
#[derive(Debug)]
pub struct GateClient {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
}

impl GateClient {
    /// Connects to `addr` (anything `TcpStream::connect` accepts) with a
    /// single dial attempt. [`GateClient::reconnect`] on a client made
    /// this way uses the default backoff policy.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<GateClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = match dial(&addrs, 0, &ClientConfig::default()) {
            Ok(stream) => stream,
            Err(GateClientError::RetriesExhausted { last, .. }) => return Err(last),
        };
        Ok(GateClient {
            stream,
            next_id: 1,
            max_frame: 1 << 24,
            addrs,
            config: ClientConfig::default(),
        })
    }

    /// Connects with up to `config.retries` re-dials under bounded
    /// exponential backoff; returns the typed
    /// [`GateClientError::RetriesExhausted`] once the budget is spent.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<GateClient, GateClientError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|last| GateClientError::RetriesExhausted { attempts: 0, last })?
            .collect();
        let stream = dial(&addrs, config.retries, &config)?;
        Ok(GateClient { stream, next_id: 1, max_frame: 1 << 24, addrs, config })
    }

    /// Drops the current connection and re-dials the remembered address
    /// under this client's backoff policy. Wire ids keep counting from
    /// where they left off, so resubmitted-after-refusal requests stay
    /// distinguishable in the server's audit trail (see the module docs
    /// for which retries are safe).
    pub fn reconnect(&mut self) -> Result<(), GateClientError> {
        self.stream = dial(&self.addrs, self.config.retries, &self.config)?;
        Ok(())
    }

    /// Sends a raw request document (adding an `id` if the caller did not
    /// set one) and returns the id it went out with.
    pub fn send(&mut self, mut request: Json) -> std::io::Result<u64> {
        let id = match request.get("id").and_then(Json::as_f64) {
            Some(id) if id >= 1.0 => id as u64,
            _ => {
                let id = self.next_id;
                if let Json::Obj(pairs) = &mut request {
                    pairs.insert(0, ("id".to_string(), Json::Num(id as f64)));
                }
                id
            }
        };
        self.next_id = self.next_id.max(id) + 1;
        write_frame(&mut self.stream, &frame_of(&request))?;
        Ok(id)
    }

    /// Receives the next response frame. Errors on EOF (the server only
    /// closes mid-conversation for frame-layer violations).
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let body = read_frame(&mut self.stream, self.max_frame)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let text = String::from_utf8(body).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "response is not UTF-8")
        })?;
        Json::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends one SQL request and blocks for its response. With pipelined
    /// use (several [`GateClient::send`]s before [`GateClient::recv`]s),
    /// responses come back in send order.
    pub fn sql(
        &mut self,
        token: &str,
        dataset: &str,
        sql: &str,
        epsilon: f64,
    ) -> std::io::Result<Json> {
        self.send(sql_request(0, token, dataset, sql, epsilon))?;
        self.recv()
    }

    /// Sends a metrics request and blocks for the snapshot.
    pub fn metrics(&mut self, token: &str) -> std::io::Result<Json> {
        self.send(Json::obj(vec![
            ("verb", Json::Str("metrics".into())),
            ("token", Json::Str(token.into())),
        ]))?;
        self.recv()
    }

    /// Sends an explain request (admin token) and blocks for the report.
    /// `profile` additionally executes the plan once — spending no
    /// budget — to capture kernel-counter deltas.
    pub fn explain(
        &mut self,
        token: &str,
        dataset: &str,
        sql: &str,
        profile: bool,
    ) -> std::io::Result<Json> {
        self.send(Json::obj(vec![
            ("verb", Json::Str("explain".into())),
            ("token", Json::Str(token.into())),
            ("dataset", Json::Str(dataset.into())),
            ("sql", Json::Str(sql.into())),
            ("profile", Json::Num(f64::from(u8::from(profile)))),
        ]))?;
        self.recv()
    }

    /// Sends a subscribe request (admin token) and blocks for the ack.
    /// After an `ok` ack, event frames arrive on this connection as the
    /// fleet produces them; read them with [`GateClient::recv`].
    pub fn subscribe(
        &mut self,
        token: &str,
        capacity: Option<usize>,
    ) -> std::io::Result<(u64, Json)> {
        let mut pairs =
            vec![("verb", Json::Str("subscribe".into())), ("token", Json::Str(token.into()))];
        if let Some(capacity) = capacity {
            pairs.push(("capacity", Json::Num(capacity as f64)));
        }
        let id = self.send(Json::obj(pairs))?;
        Ok((id, self.recv()?))
    }
}

/// Dials `addrs` in order, retrying the whole list up to `retries` more
/// times with `config`'s backoff between rounds.
fn dial(
    addrs: &[SocketAddr],
    retries: u32,
    config: &ClientConfig,
) -> Result<TcpStream, GateClientError> {
    let mut last =
        std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "address resolved to nothing");
    for attempt in 0..=retries {
        if attempt > 0 {
            std::thread::sleep(config.backoff(attempt - 1));
        }
        for addr in addrs {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
    }
    Err(GateClientError::RetriesExhausted { attempts: retries + 1, last })
}

/// Builds a `verb: "sql"` request document. `id` 0 lets
/// [`GateClient::send`] assign the next sequential id.
pub fn sql_request(id: u64, token: &str, dataset: &str, sql: &str, epsilon: f64) -> Json {
    let mut pairs = Vec::new();
    if id > 0 {
        pairs.push(("id", Json::Num(id as f64)));
    }
    pairs.extend([
        ("verb", Json::Str("sql".into())),
        ("token", Json::Str(token.into())),
        ("dataset", Json::Str(dataset.into())),
        ("sql", Json::Str(sql.into())),
        ("epsilon", Json::Num(epsilon)),
    ]);
    Json::obj(pairs)
}

/// SplitMix64 — the workspace's standard seed scrambler, repeated here so
/// the client stays dependency-free.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let config = ClientConfig {
            retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 42,
        };
        let twin = config.clone();
        for attempt in 0..16 {
            let d = config.backoff(attempt);
            assert_eq!(d, twin.backoff(attempt), "same seed, same schedule");
            assert!(d <= config.max_backoff, "attempt {attempt}: {d:?} over the cap");
            // Jitter scales into [50%, 100%) of the capped step.
            let step =
                config.base_backoff.saturating_mul(1u32 << attempt.min(16)).min(config.max_backoff);
            assert!(d >= step / 2, "attempt {attempt}: {d:?} under half the step");
        }
        let other = ClientConfig { jitter_seed: 43, ..config };
        assert_ne!(
            (0..8).map(|a| config.backoff(a)).collect::<Vec<_>>(),
            (0..8).map(|a| other.backoff(a)).collect::<Vec<_>>(),
            "different seeds decorrelate"
        );
    }

    #[test]
    fn retries_exhaust_with_a_typed_error() {
        // Bind-then-drop guarantees a port with no listener.
        let dead = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let config = ClientConfig {
            retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 7,
        };
        let err = GateClient::connect_with(dead, config).expect_err("nobody is listening");
        let GateClientError::RetriesExhausted { attempts, last } = err;
        assert_eq!(attempts, 3, "retries + 1 dials");
        assert!(
            last.kind() == std::io::ErrorKind::ConnectionRefused || last.raw_os_error().is_some()
        );
    }

    #[test]
    fn reconnect_redials_the_remembered_address() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = GateClient::connect_with(
            addr,
            ClientConfig { base_backoff: Duration::from_millis(1), ..ClientConfig::default() },
        )
        .unwrap();
        let (first, _) = listener.accept().unwrap();
        drop(first); // server side hangs up
        client.reconnect().unwrap();
        let (second, _) = listener.accept().unwrap();
        assert_eq!(second.peer_addr().unwrap(), client.stream.local_addr().unwrap());
    }
}
