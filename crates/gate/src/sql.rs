//! Recursive-descent parser for the engine's rendered SQL dialect.
//!
//! [`starj_engine::to_sql`] renders every star-join query this workspace
//! serves as a SELECT statement; this module is its inverse. The grammar
//! is exactly the fragment the renderer emits (see the README's EBNF):
//!
//! ```text
//! query      := SELECT agg (',' colref)* FROM table (',' table)*
//!               [WHERE cond (AND cond)*] [GROUP BY colref (',' colref)*] [';']
//! agg        := COUNT '(' '*' ')' | SUM '(' colref ['-' colref] ')'
//! cond       := colref '=' colref            -- join (both sides columns)
//!             | colref '=' literal           -- point predicate
//!             | colref BETWEEN literal AND literal
//!             | colref IN '(' [literal (',' literal)*] ')'
//! colref     := ident '.' ident
//! literal    := number | string              -- '...' with '' escaping
//! ```
//!
//! Parsing happens in three passes, each total over untrusted input
//! (typed [`GateError`]s, never panics):
//!
//! 1. **lex** — byte offsets ride every token, string literals unescape
//!    `''` → `'` via [`starj_engine::unescape_label`];
//! 2. **parse** — the grammar above, producing a position-carrying AST;
//! 3. **resolve** — names bind against the [`StarSchema`]: the fact table
//!    must appear in FROM, join conditions must match declared foreign
//!    keys, every WHERE / GROUP BY column must name a table listed in
//!    FROM, every non-fact FROM table must be covered by a validated join
//!    condition (a bare table would be a cross join in real SQL — the
//!    renderer never emits one, so it is refused rather than silently
//!    served with star-join semantics), predicate columns must be
//!    dimension (or snowflake sub-dimension) attributes, and string
//!    literals must be labels of the column's domain. Numeric literals
//!    pass through as raw codes — domain *membership* is the service
//!    admission layer's job, so out-of-domain codes round-trip instead of
//!    being silently clamped here.
//!
//! The resolved query then runs through the engine's `canon` pass
//! ([`parse_canonical`]) so presentation differences (predicate order,
//! `[v, v]` vs point, duplicate IN entries) collapse before anything is
//! served or cached.

use crate::error::GateError;
use starj_engine::{
    canonicalize, unescape_label, Agg, CanonicalQuery, GroupAttr, Predicate, StarQuery, StarSchema,
};

// ---- lexer ----------------------------------------------------------------

/// One lexical token with the byte offset it started at.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier or keyword (keywords are matched case-insensitively at
    /// parse time; the raw spelling is kept for error messages).
    Ident(String),
    /// Single-quoted string literal, already unescaped.
    Str(String),
    /// Unsigned numeric literal (attribute codes are `u32`).
    Num(u32),
    Comma,
    Dot,
    LParen,
    RParen,
    Semi,
    Star,
    Minus,
    Eq,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::Num(n) => format!("number {n}"),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Star => "`*`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Eq => "`=`".into(),
        }
    }
}

fn lex(sql: &str) -> Result<Vec<(usize, Tok)>, GateError> {
    let bytes = sql.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            b'.' => {
                toks.push((i, Tok::Dot));
                i += 1;
            }
            b'(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            b')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            b';' => {
                toks.push((i, Tok::Semi));
                i += 1;
            }
            b'*' => {
                toks.push((i, Tok::Star));
                i += 1;
            }
            b'-' => {
                toks.push((i, Tok::Minus));
                i += 1;
            }
            b'=' => {
                toks.push((i, Tok::Eq));
                i += 1;
            }
            b'\'' => {
                // Scan to the closing quote, treating '' as an escaped
                // quote (i.e. a closing quote followed immediately by
                // another quote continues the literal).
                let start = i;
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(GateError::Lex {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => j += 2,
                        Some(b'\'') => break,
                        Some(_) => j += 1,
                    }
                }
                let raw = &sql[start + 1..j];
                toks.push((start, Tok::Str(unescape_label(raw))));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &sql[start..i];
                let value = text.parse::<u32>().map_err(|_| GateError::Lex {
                    pos: start,
                    message: format!("numeric literal `{text}` exceeds the u32 code range"),
                })?;
                toks.push((start, Tok::Num(value)));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((start, Tok::Ident(sql[start..i].to_string())));
            }
            _ => {
                return Err(GateError::Lex {
                    pos: i,
                    message: format!("unexpected byte 0x{b:02x} outside the dialect's alphabet"),
                })
            }
        }
    }
    Ok(toks)
}

// ---- AST ------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct ColRef {
    table: String,
    attr: String,
    pos: usize,
}

#[derive(Debug, Clone)]
struct Literal {
    pos: usize,
    value: LitValue,
}

#[derive(Debug, Clone)]
enum LitValue {
    Code(u32),
    Label(String),
}

#[derive(Debug)]
enum AstAgg {
    Count,
    Sum(ColRef),
    SumDiff(ColRef, ColRef),
}

#[derive(Debug)]
enum AstCond {
    Join { left: ColRef, right: ColRef },
    Point { col: ColRef, value: Literal },
    Between { col: ColRef, lo: Literal, hi: Literal },
    InSet { col: ColRef, values: Vec<Literal> },
}

#[derive(Debug)]
struct Ast {
    agg: AstAgg,
    /// Grouping columns echoed in the SELECT list after the aggregate.
    select_groups: Vec<ColRef>,
    /// FROM tables with positions.
    tables: Vec<(String, usize)>,
    conds: Vec<AstCond>,
    group_by: Vec<ColRef>,
}

// ---- parser ---------------------------------------------------------------

struct Parser {
    toks: Vec<(usize, Tok)>,
    at: usize,
    /// Byte length of the input, the position reported at end-of-input.
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(usize, Tok)> {
        self.toks.get(self.at)
    }

    fn pos(&self) -> usize {
        self.peek().map_or(self.end, |(p, _)| *p)
    }

    fn found(&self) -> String {
        self.peek().map_or_else(|| "end of input".into(), |(_, t)| t.describe())
    }

    fn error(&self, expected: impl Into<String>) -> GateError {
        GateError::Parse { pos: self.pos(), expected: expected.into(), found: self.found() }
    }

    fn bump(&mut self) -> Option<(usize, Tok)> {
        let t = self.toks.get(self.at).cloned();
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok, expected: &str) -> Result<usize, GateError> {
        match self.peek() {
            Some((pos, t)) if t == tok => {
                let pos = *pos;
                self.at += 1;
                Ok(pos)
            }
            _ => Err(self.error(expected)),
        }
    }

    /// Consumes an identifier matching `keyword` case-insensitively.
    fn keyword(&mut self, keyword: &str) -> Result<usize, GateError> {
        match self.peek() {
            Some((pos, Tok::Ident(s))) if s.eq_ignore_ascii_case(keyword) => {
                let pos = *pos;
                self.at += 1;
                Ok(pos)
            }
            _ => Err(self.error(format!("keyword {keyword}"))),
        }
    }

    fn at_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some((_, Tok::Ident(s))) if s.eq_ignore_ascii_case(keyword))
    }

    fn ident(&mut self, expected: &str) -> Result<(String, usize), GateError> {
        match self.peek() {
            Some((pos, Tok::Ident(s))) if !is_reserved(s) => {
                let out = (s.clone(), *pos);
                self.at += 1;
                Ok(out)
            }
            _ => Err(self.error(expected)),
        }
    }

    fn colref(&mut self) -> Result<ColRef, GateError> {
        let (table, pos) = self.ident("a table-qualified column (`table.column`)")?;
        self.eat(&Tok::Dot, "`.` after the table name")?;
        let (attr, _) = self.ident("a column name after `.`")?;
        Ok(ColRef { table, attr, pos })
    }

    fn literal(&mut self) -> Result<Literal, GateError> {
        match self.bump() {
            Some((pos, Tok::Num(n))) => Ok(Literal { pos, value: LitValue::Code(n) }),
            Some((pos, Tok::Str(s))) => Ok(Literal { pos, value: LitValue::Label(s) }),
            other => {
                if let Some((pos, t)) = other {
                    // Un-consume so the error reports the right position.
                    self.at -= 1;
                    let _ = (pos, t);
                }
                Err(self.error("a literal (number or 'string')"))
            }
        }
    }

    fn agg(&mut self) -> Result<AstAgg, GateError> {
        if self.at_keyword("count") {
            self.keyword("count")?;
            self.eat(&Tok::LParen, "`(` after count")?;
            self.eat(&Tok::Star, "`*` inside count(...)")?;
            self.eat(&Tok::RParen, "`)` closing count(*)")?;
            Ok(AstAgg::Count)
        } else if self.at_keyword("sum") {
            self.keyword("sum")?;
            self.eat(&Tok::LParen, "`(` after sum")?;
            let a = self.colref()?;
            if matches!(self.peek(), Some((_, Tok::Minus))) {
                self.bump();
                let b = self.colref()?;
                self.eat(&Tok::RParen, "`)` closing sum(a - b)")?;
                Ok(AstAgg::SumDiff(a, b))
            } else {
                self.eat(&Tok::RParen, "`)` closing sum(...)")?;
                Ok(AstAgg::Sum(a))
            }
        } else {
            Err(self.error("an aggregate (count(*) or sum(...))"))
        }
    }

    fn condition(&mut self) -> Result<AstCond, GateError> {
        let col = self.colref()?;
        if self.at_keyword("between") {
            self.keyword("between")?;
            let lo = self.literal()?;
            self.keyword("and")?;
            let hi = self.literal()?;
            return Ok(AstCond::Between { col, lo, hi });
        }
        if self.at_keyword("in") {
            self.keyword("in")?;
            self.eat(&Tok::LParen, "`(` opening the IN list")?;
            let mut values = Vec::new();
            if !matches!(self.peek(), Some((_, Tok::RParen))) {
                values.push(self.literal()?);
                while matches!(self.peek(), Some((_, Tok::Comma))) {
                    self.bump();
                    values.push(self.literal()?);
                }
            }
            self.eat(&Tok::RParen, "`)` closing the IN list")?;
            return Ok(AstCond::InSet { col, values });
        }
        self.eat(&Tok::Eq, "`=`, BETWEEN, or IN after the column")?;
        // The right-hand side disambiguates a join condition (another
        // column reference) from a point predicate (a literal).
        match self.peek() {
            Some((_, Tok::Ident(s))) if !is_reserved(s) => {
                let right = self.colref()?;
                Ok(AstCond::Join { left: col, right })
            }
            _ => {
                let value = self.literal()?;
                Ok(AstCond::Point { col, value })
            }
        }
    }

    fn query(&mut self) -> Result<Ast, GateError> {
        self.keyword("select")?;
        let agg = self.agg()?;
        let mut select_groups = Vec::new();
        while matches!(self.peek(), Some((_, Tok::Comma))) {
            self.bump();
            select_groups.push(self.colref()?);
        }
        self.keyword("from")?;
        let mut tables = Vec::new();
        let (first, pos) = self.ident("a table name after FROM")?;
        tables.push((first, pos));
        while matches!(self.peek(), Some((_, Tok::Comma))) {
            self.bump();
            let (name, pos) = self.ident("a table name after `,`")?;
            tables.push((name, pos));
        }
        let mut conds = Vec::new();
        if self.at_keyword("where") {
            self.keyword("where")?;
            conds.push(self.condition()?);
            while self.at_keyword("and") {
                self.keyword("and")?;
                conds.push(self.condition()?);
            }
        }
        let mut group_by = Vec::new();
        if self.at_keyword("group") {
            self.keyword("group")?;
            self.keyword("by")?;
            group_by.push(self.colref()?);
            while matches!(self.peek(), Some((_, Tok::Comma))) {
                self.bump();
                group_by.push(self.colref()?);
            }
        }
        if matches!(self.peek(), Some((_, Tok::Semi))) {
            self.bump();
        }
        if self.peek().is_some() {
            return Err(self.error("end of statement"));
        }
        Ok(Ast { agg, select_groups, tables, conds, group_by })
    }
}

/// Keywords that can open a clause — an identifier in value position must
/// not swallow these, or `WHERE a.b = c.d AND e.f = 1` would parse `AND`
/// as a table name.
fn is_reserved(word: &str) -> bool {
    ["select", "from", "where", "and", "group", "by", "in", "between", "count", "sum"]
        .iter()
        .any(|k| word.eq_ignore_ascii_case(k))
}

// ---- resolver -------------------------------------------------------------

/// Resolves a column reference to its domain for literal binding.
fn predicate_domain<'s>(
    schema: &'s StarSchema,
    col: &ColRef,
) -> Result<&'s starj_engine::Domain, GateError> {
    if let Ok(dim) = schema.dim(&col.table) {
        return dim
            .table
            .domain(&col.attr)
            .map_err(|e| GateError::Resolve { pos: col.pos, message: e.to_string() });
    }
    if let Some((_, sub)) = schema.subdim(&col.table) {
        return sub
            .table
            .domain(&col.attr)
            .map_err(|e| GateError::Resolve { pos: col.pos, message: e.to_string() });
    }
    Err(GateError::Resolve {
        pos: col.pos,
        message: format!("`{}` is not a dimension or sub-dimension table", col.table),
    })
}

/// Binds one literal against a domain: labels resolve through
/// [`starj_engine::Domain::code_of`]; numeric codes pass through raw (the
/// service admission layer validates membership, so out-of-domain codes
/// round-trip rather than failing here).
fn bind_literal(
    domain: &starj_engine::Domain,
    col: &ColRef,
    lit: &Literal,
) -> Result<u32, GateError> {
    match &lit.value {
        LitValue::Code(n) => Ok(*n),
        LitValue::Label(label) => domain.code_of(label).ok_or_else(|| GateError::Resolve {
            pos: lit.pos,
            message: format!(
                "'{label}' is not a label of domain `{}` (column {}.{})",
                domain.name(),
                col.table,
                col.attr
            ),
        }),
    }
}

/// Checks a join condition against the schema's declared links: fact → dim
/// foreign keys and dim → sub-dimension snowflake links, either side first.
/// On success returns the name of the table the condition *covers* — the
/// primary-key side (dimension or sub-dimension) the join pulls in — so
/// the resolver can demand that every non-fact FROM table is covered.
fn validate_join(schema: &StarSchema, left: &ColRef, right: &ColRef) -> Result<String, GateError> {
    let fact = schema.fact().name();
    let matches_link = |a: &ColRef, b: &ColRef| -> bool {
        // fact.fk = dim.pk
        if a.table == fact {
            if let Ok(dim) = schema.dim(&b.table) {
                return dim.fk == a.attr && dim.pk == b.attr;
            }
        }
        // dim.fk_in_dim = sub.pk
        if let Some((parent, sub)) = schema.subdim(&b.table) {
            return parent.table.name() == a.table && sub.fk_in_dim == a.attr && sub.pk == b.attr;
        }
        false
    };
    if matches_link(left, right) {
        Ok(right.table.clone())
    } else if matches_link(right, left) {
        Ok(left.table.clone())
    } else {
        Err(GateError::Resolve {
            pos: left.pos,
            message: format!(
                "join condition {}.{} = {}.{} does not match any declared foreign key",
                left.table, left.attr, right.table, right.attr
            ),
        })
    }
}

fn resolve(schema: &StarSchema, ast: &Ast, name: &str) -> Result<StarQuery, GateError> {
    let fact = schema.fact().name();

    // Every FROM table must be known, and the fact table must be present.
    let mut saw_fact = false;
    for (table, pos) in &ast.tables {
        if table == fact {
            saw_fact = true;
        } else if schema.dim(table).is_err() && schema.subdim(table).is_none() {
            return Err(GateError::Resolve {
                pos: *pos,
                message: format!("unknown table `{table}` in FROM"),
            });
        }
    }
    if !saw_fact {
        let pos = ast.tables.first().map_or(0, |(_, p)| *p);
        return Err(GateError::Resolve {
            pos,
            message: format!("FROM must include the fact table `{fact}`"),
        });
    }

    // Standard SQL gives different semantics to a table in FROM without a
    // join (a cross join) and to a predicate on a table outside FROM (an
    // error); the renderer emits neither. Refuse both instead of silently
    // serving star-join semantics for out-of-dialect input: every column
    // reference must name a FROM table, and every non-fact FROM table
    // must be covered by a validated join condition (checked after the
    // conditions are walked, below).
    let require_in_from = |col: &ColRef| -> Result<(), GateError> {
        if ast.tables.iter().any(|(t, _)| *t == col.table) {
            Ok(())
        } else {
            Err(GateError::Resolve {
                pos: col.pos,
                message: format!("table `{}` is referenced but not listed in FROM", col.table),
            })
        }
    };

    let agg = match &ast.agg {
        AstAgg::Count => Agg::Count,
        AstAgg::Sum(col) => {
            resolve_measure(schema, col)?;
            Agg::Sum(col.attr.clone())
        }
        AstAgg::SumDiff(a, b) => {
            resolve_measure(schema, a)?;
            resolve_measure(schema, b)?;
            Agg::SumDiff(a.attr.clone(), b.attr.clone())
        }
    };

    let mut predicates = Vec::new();
    let mut joined: Vec<String> = Vec::new();
    for cond in &ast.conds {
        match cond {
            AstCond::Join { left, right } => {
                require_in_from(left)?;
                require_in_from(right)?;
                joined.push(validate_join(schema, left, right)?);
            }
            AstCond::Point { col, value } => {
                require_in_from(col)?;
                let domain = predicate_domain(schema, col)?;
                let code = bind_literal(domain, col, value)?;
                predicates.push(Predicate::point(&col.table, &col.attr, code));
            }
            AstCond::Between { col, lo, hi } => {
                require_in_from(col)?;
                let domain = predicate_domain(schema, col)?;
                let lo = bind_literal(domain, col, lo)?;
                let hi = bind_literal(domain, col, hi)?;
                predicates.push(Predicate::range(&col.table, &col.attr, lo, hi));
            }
            AstCond::InSet { col, values } => {
                require_in_from(col)?;
                let domain = predicate_domain(schema, col)?;
                let codes = values.iter().map(|v| bind_literal(domain, col, v)).collect::<Result<
                    Vec<u32>,
                    GateError,
                >>(
                )?;
                predicates.push(Predicate::set(&col.table, &col.attr, codes));
            }
        }
    }

    // Every non-fact FROM table must be the covered side of some
    // validated join — a bare table would be a cross join in real SQL.
    for (table, pos) in &ast.tables {
        if table != fact && !joined.iter().any(|j| j == table) {
            return Err(GateError::Resolve {
                pos: *pos,
                message: format!(
                    "table `{table}` in FROM has no join condition linking it to the star \
                     (a cross join is outside the dialect)"
                ),
            });
        }
    }

    let mut group_by = Vec::new();
    for col in &ast.group_by {
        require_in_from(col)?;
        let dim = schema.dim(&col.table).map_err(|_| GateError::Resolve {
            pos: col.pos,
            message: format!(
                "GROUP BY `{}.{}` must name a dimension attribute",
                col.table, col.attr
            ),
        })?;
        dim.table
            .codes(&col.attr)
            .map_err(|e| GateError::Resolve { pos: col.pos, message: e.to_string() })?;
        group_by.push(GroupAttr::new(&col.table, &col.attr));
    }

    // The renderer echoes the grouping attributes in the SELECT list; a
    // statement whose SELECT list disagrees with its GROUP BY clause is
    // not in the dialect.
    if ast.select_groups.len() != ast.group_by.len()
        || ast
            .select_groups
            .iter()
            .zip(&ast.group_by)
            .any(|(s, g)| s.table != g.table || s.attr != g.attr)
    {
        let pos = ast.select_groups.first().or(ast.group_by.first()).map_or(0, |c| c.pos);
        return Err(GateError::Resolve {
            pos,
            message: "SELECT list grouping columns must match the GROUP BY clause".into(),
        });
    }

    Ok(StarQuery { name: name.to_string(), agg, predicates, group_by })
}

fn resolve_measure(schema: &StarSchema, col: &ColRef) -> Result<(), GateError> {
    let fact = schema.fact().name();
    if col.table != fact {
        return Err(GateError::Resolve {
            pos: col.pos,
            message: format!("sum(...) must aggregate a `{fact}` measure, not `{}`", col.table),
        });
    }
    schema
        .fact()
        .measure(&col.attr)
        .map(|_| ())
        .map_err(|e| GateError::Resolve { pos: col.pos, message: e.to_string() })
}

// ---- public API -----------------------------------------------------------

/// Parses one SQL statement of the rendered dialect into an executable
/// [`StarQuery`] labelled `name`, resolving every table, column, and label
/// against `schema`. Total over untrusted input: typed errors, no panics.
pub fn parse_query(schema: &StarSchema, sql: &str, name: &str) -> Result<StarQuery, GateError> {
    let toks = lex(sql)?;
    let mut parser = Parser { toks, at: 0, end: sql.len() };
    let ast = parser.query()?;
    resolve(schema, &ast, name)
}

/// [`parse_query`] followed by the engine's `canon` pass: the normal form
/// presentation-equivalent statements collapse to, and the form the wire
/// listener actually serves.
pub fn parse_canonical(schema: &StarSchema, sql: &str) -> Result<CanonicalQuery, GateError> {
    Ok(canonicalize(&parse_query(schema, sql, "sql")?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use starj_engine::{
        to_sql, Column, Constraint, Dimension, Domain, Predicate, SubDimension, Table,
    };

    fn schema() -> StarSchema {
        let region = Domain::categorical("region", vec!["NORTH", "SOUTH"]).unwrap();
        let cust = Table::new(
            "Customer",
            vec![
                Column::key("pk", vec![0, 1]),
                Column::attr("region", region, vec![0, 1]),
                Column::key("nk", vec![0, 0]),
            ],
        )
        .unwrap();
        let year = Domain::numeric("year", 7).unwrap();
        let date = Table::new(
            "Date",
            vec![Column::key("dk", vec![0, 1]), Column::attr("year", year, vec![0, 1])],
        )
        .unwrap();
        let gdp = Domain::numeric("gdp", 3).unwrap();
        let nation = Table::new(
            "Nation",
            vec![Column::key("nk", vec![0]), Column::attr("gdp", gdp, vec![2])],
        )
        .unwrap();
        let fact = Table::new(
            "Lineorder",
            vec![
                Column::key("custkey", vec![0, 1, 1]),
                Column::key("orderdate", vec![0, 0, 1]),
                Column::measure("revenue", vec![5, 6, 7]),
                Column::measure("cost", vec![1, 1, 1]),
            ],
        )
        .unwrap();
        StarSchema::new(
            fact,
            vec![
                Dimension::new(cust, "pk", "custkey").with_subdim(SubDimension {
                    table: nation,
                    pk: "nk".into(),
                    fk_in_dim: "nk".into(),
                }),
                Dimension::new(date, "dk", "orderdate"),
            ],
        )
        .unwrap()
    }

    fn roundtrip(q: &StarQuery) {
        let s = schema();
        let sql = to_sql(&s, q);
        let parsed =
            parse_canonical(&s, &sql).unwrap_or_else(|e| panic!("`{sql}` failed to parse: {e}"));
        assert_eq!(parsed, canonicalize(q), "round trip through `{sql}`");
    }

    #[test]
    fn rendered_queries_round_trip() {
        roundtrip(&StarQuery::count("q"));
        roundtrip(&StarQuery::count("q").with(Predicate::point("Customer", "region", 1)));
        roundtrip(&StarQuery::sum("q", "revenue").with(Predicate::range("Date", "year", 0, 5)));
        roundtrip(&StarQuery::count("q").with(Predicate::set("Date", "year", vec![0, 2, 4])));
        roundtrip(
            &StarQuery::sum_diff("q", "revenue", "cost")
                .with(Predicate::point("Customer", "region", 0))
                .group_by(GroupAttr::new("Date", "year")),
        );
        // Snowflake: the sub-dimension predicate pulls a two-hop join in.
        roundtrip(&StarQuery::count("q").with(Predicate::point("Nation", "gdp", 2)));
        // Degenerate constraints canon handles: inverted range, dup set.
        roundtrip(&StarQuery::count("q").with(Predicate::range("Date", "year", 5, 2)));
        roundtrip(&StarQuery::count("q").with(Predicate::set("Date", "year", vec![3, 3])));
    }

    #[test]
    fn labels_resolve_and_unknown_labels_are_typed() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT count(*) FROM Lineorder, Customer \
             WHERE Lineorder.custkey = Customer.pk AND Customer.region = 'SOUTH';",
            "q",
        )
        .unwrap();
        assert_eq!(q.predicates, vec![Predicate::point("Customer", "region", 1)]);

        let err = parse_query(
            &s,
            "SELECT count(*) FROM Lineorder, Customer \
             WHERE Lineorder.custkey = Customer.pk AND Customer.region = 'MOON';",
            "q",
        )
        .unwrap_err();
        assert!(matches!(err, GateError::Resolve { .. }), "got {err:?}");
        assert!(err.to_string().contains("MOON"));
    }

    #[test]
    fn quote_bearing_labels_parse_back() {
        let hostile =
            Domain::categorical("name", vec!["O'Brien", "''", "x' OR '1'='1", "plain"]).unwrap();
        let dim = Table::new(
            "Cust",
            vec![
                Column::key("pk", vec![0, 1, 2, 3]),
                Column::attr("name", hostile, vec![0, 1, 2, 3]),
            ],
        )
        .unwrap();
        let fact = Table::new("F", vec![Column::key("ck", vec![0, 1, 2, 3])]).unwrap();
        let s = StarSchema::new(fact, vec![Dimension::new(dim, "pk", "ck")]).unwrap();
        for (q, _) in [
            (StarQuery::count("q").with(Predicate::point("Cust", "name", 0)), "O'Brien"),
            (StarQuery::count("q").with(Predicate::set("Cust", "name", vec![1, 2])), "''"),
        ] {
            let sql = to_sql(&s, &q);
            let parsed = parse_canonical(&s, &sql).unwrap_or_else(|e| panic!("`{sql}`: {e}"));
            assert_eq!(parsed, canonicalize(&q), "hostile labels round trip via `{sql}`");
        }
    }

    #[test]
    fn structural_errors_are_typed_with_positions() {
        let s = schema();
        for (sql, what) in [
            ("", "empty input"),
            ("SELECT", "bare select"),
            ("SELECT count(*)", "missing FROM"),
            ("SELECT count(*) FROM", "missing table"),
            ("SELECT count(*) FROM Lineorder WHERE", "dangling WHERE"),
            ("SELECT count(*) FROM Lineorder WHERE Date.year =", "dangling ="),
            ("SELECT count(*) FROM Lineorder WHERE Date.year BETWEEN 1", "half a BETWEEN"),
            ("SELECT count(*) FROM Lineorder WHERE Date.year IN (1,", "unclosed IN"),
            ("SELECT count(*) FROM Lineorder GROUP BY", "dangling GROUP BY"),
            ("SELECT count(*) FROM Lineorder; extra", "trailing garbage"),
            ("SELECT max(*) FROM Lineorder;", "unsupported aggregate"),
            ("SELECT count(*) FROM Lineorder WHERE Date.year = 'x", "unterminated string"),
            ("SELECT count(*) FROM Lineorder WHERE Date.year = 99999999999", "u32 overflow"),
            ("\u{1}\u{2}", "control bytes"),
        ] {
            let err =
                parse_query(&s, sql, "q").expect_err(&format!("{what}: `{sql}` must not parse"));
            assert!(err.pos() <= sql.len(), "{what}: position {} in bounds", err.pos());
        }
    }

    #[test]
    fn resolve_errors_are_typed() {
        let s = schema();
        for sql in [
            // Unknown FROM table.
            "SELECT count(*) FROM Lineorder, Ghost;",
            // Fact table missing from FROM.
            "SELECT count(*) FROM Customer;",
            // Join condition that matches no declared foreign key.
            "SELECT count(*) FROM Lineorder, Customer WHERE Lineorder.custkey = Customer.nk;",
            // Predicate on a non-dimension table.
            "SELECT count(*) FROM Lineorder WHERE Lineorder.revenue = 5;",
            // sum over a non-measure.
            "SELECT sum(Lineorder.custkey) FROM Lineorder;",
            // sum over a dimension table.
            "SELECT sum(Customer.region) FROM Lineorder, Customer;",
            // GROUP BY on a sub-dimension (executor resolves dims only).
            "SELECT count(*), Nation.gdp FROM Lineorder GROUP BY Nation.gdp;",
            // SELECT grouping columns disagree with GROUP BY.
            "SELECT count(*), Date.year FROM Lineorder, Date \
             WHERE Lineorder.orderdate = Date.dk GROUP BY Date.year, Date.year;",
            // Dimension in FROM with no join condition: a cross join in
            // real SQL, so serving star-join semantics would be wrong.
            "SELECT count(*) FROM Lineorder, Customer;",
            "SELECT count(*) FROM Lineorder, Customer \
             WHERE Customer.region = 'SOUTH';",
            // Predicate on a table absent from FROM.
            "SELECT count(*) FROM Lineorder WHERE Customer.region = 'SOUTH';",
            // Join condition naming a table absent from FROM.
            "SELECT count(*) FROM Lineorder WHERE Lineorder.custkey = Customer.pk;",
            // GROUP BY on a table absent from FROM.
            "SELECT count(*), Date.year FROM Lineorder GROUP BY Date.year;",
            // Snowflake sub-dimension in FROM without its linking join.
            "SELECT count(*) FROM Lineorder, Customer, Nation \
             WHERE Lineorder.custkey = Customer.pk AND Nation.gdp = 2;",
        ] {
            let err = parse_query(&s, sql, "q").expect_err(sql);
            assert!(matches!(err, GateError::Resolve { .. }), "`{sql}` → {err:?}");
        }
    }

    #[test]
    fn hostile_inputs_never_panic() {
        let s = schema();
        let samples = [
            "'''''''''''''",
            "SELECT count(*) FROM Lineorder WHERE ((((((((",
            "select COUNT ( * ) from Lineorder ;",
            "SELECT sum(Lineorder.revenue - Lineorder.cost - Lineorder.cost) FROM Lineorder;",
            "SELECT count(*) FROM Lineorder WHERE Date.year IN ();",
            "SELECT count(*) FROM Lineorder WHERE Date.year IN (1) AND",
            ";;;;;",
            "SELECT count(*) FROM Lineorder GROUP GROUP BY BY Date.year;",
            "🦀🦀🦀",
        ];
        for sql in samples {
            // Ok or typed Err are both fine; the point is totality.
            let _ = parse_query(&s, sql, "q");
        }
        // Case-insensitive keywords with odd spacing do parse.
        let q = parse_query(&s, "select COUNT ( * ) from Lineorder ;", "q").unwrap();
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn empty_in_list_is_unsatisfiable_after_canon() {
        let s = schema();
        let c = parse_canonical(
            &s,
            "SELECT count(*) FROM Lineorder, Date \
             WHERE Lineorder.orderdate = Date.dk AND Date.year IN ();",
        )
        .unwrap();
        assert!(c.unsatisfiable);
        assert_eq!(
            c,
            canonicalize(&StarQuery::count("q").with(Predicate {
                table: "Date".into(),
                attr: "year".into(),
                constraint: Constraint::Set(vec![]),
            }))
        );
    }
}
