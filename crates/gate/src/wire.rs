//! The gate's wire protocol: length-prefixed JSON frames and the refusal
//! code table.
//!
//! Every message in either direction is one **frame**: a 4-byte
//! big-endian length followed by exactly that many bytes of UTF-8 JSON
//! (rendered/parsed with [`starj_telemetry::Json`] — the workspace ships
//! no serde). Requests:
//!
//! ```text
//! {"id": 7, "verb": "sql", "token": "...", "dataset": "ssb",
//!  "sql": "SELECT count(*) FROM ...;", "epsilon": 0.5, "name": "q7"?}
//! {"id": 8, "verb": "metrics", "token": "..."}
//! {"id": 9, "verb": "subscribe", "token": "...", "capacity": 256?}
//! {"id": 10, "verb": "explain", "token": "...", "dataset": "ssb",
//!  "sql": "SELECT count(*) FROM ...;", "profile": 1?}
//! ```
//!
//! `subscribe` and `explain` are admin verbs (see
//! [`crate::GateConfig::admin_tokens`]): subscriptions stream every
//! tenant's audit events, and explain reports expose un-noised plan
//! statistics. After a `subscribe` ack, event frames tagged with the
//! subscription's `id` flow until the connection closes; see
//! [`crate::Gate`] for the event frame shapes.
//!
//! `id` is the client's request id: a positive integer no larger than
//! 2^53 − 1 (the JSON layer is f64-based, so larger ids would be echoed
//! imprecisely and break client-side correlation), echoed on every
//! response, and stamped into the server's trace spans and audit events
//! so a wire request can be followed through the whole pipeline.
//! Responses are either an answer:
//!
//! ```text
//! {"id": 7, "ok": true, "kind": "scalar", "value": 41.3, "cached": false,
//!  "cost_epsilon": 0.5, "cost_delta": 0.0, "noisy_sql": "SELECT ...;"}
//! {"id": 7, "ok": true, "kind": "groups", "groups": [{"key": [0], "value": 9.1}, ...], ...}
//! ```
//!
//! or a structured refusal carrying a stable machine-readable `code`
//! (see [`service_code`] / [`router_code`] for the full table):
//!
//! ```text
//! {"id": 7, "ok": false, "code": "budget_exhausted", "error": "tenant ..."}
//! {"id": 7, "ok": false, "code": "parse_error", "error": "...", "pos": 31}
//! ```

use crate::error::GateError;
use starj_engine::QueryResult;
use starj_router::RouterError;
use starj_service::{ServiceAnswer, ServiceError};
use starj_telemetry::Json;
use std::io::{Read, Write};

/// [`Json`] has no boolean variant (its parser reads `true`/`false` back
/// as 1/0), so the protocol renders booleans as those numbers.
const TRUE: Json = Json::Num(1.0);
const FALSE: Json = Json::Num(0.0);

/// Reads one length-prefixed frame. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary. Frames longer than `max_frame`
/// are refused without allocating.
pub fn read_frame(stream: &mut impl Read, max_frame: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes one length-prefixed frame.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(body.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Renders `json` as a frame body.
pub fn frame_of(json: &Json) -> Vec<u8> {
    json.render().into_bytes()
}

// ---- request -------------------------------------------------------------

/// One decoded wire request.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// `verb: "sql"` — parse and serve one statement.
    Sql {
        /// Client request id (non-zero).
        id: u64,
        /// Tenant auth token.
        token: String,
        /// Target dataset name.
        dataset: String,
        /// The SQL text.
        sql: String,
        /// Requested ε.
        epsilon: f64,
        /// Optional query label echoed in the answer (default `"sql"`).
        name: Option<String>,
    },
    /// `verb: "metrics"` — Prometheus exposition + audit JSONL snapshot.
    /// The snapshot spans every tenant, so the listener only serves it to
    /// tokens in [`crate::GateConfig::admin_tokens`]; tenant tokens are
    /// refused with `forbidden`.
    Metrics {
        /// Client request id (non-zero).
        id: u64,
        /// Admin auth token.
        token: String,
    },
    /// `verb: "subscribe"` — stream audit events, completed trace spans,
    /// and slow-query records over this connection as they happen. The
    /// stream spans every tenant, so it is admin-gated like `metrics`.
    Subscribe {
        /// Client request id (non-zero); event frames echo it.
        id: u64,
        /// Admin auth token.
        token: String,
        /// Optional per-subscriber ring capacity (events buffered while
        /// this connection is busy); the bus default applies when absent.
        capacity: Option<usize>,
    },
    /// `verb: "explain"` — resolve and plan one statement without
    /// spending budget; optionally execute it once to profile kernel
    /// counters. Plan shapes and sampled selectivities are un-noised and
    /// data-dependent, so this verb is admin-gated.
    Explain {
        /// Client request id (non-zero).
        id: u64,
        /// Admin auth token.
        token: String,
        /// Target dataset name.
        dataset: String,
        /// The SQL text.
        sql: String,
        /// Execute once and report kernel-counter deltas.
        profile: bool,
    },
}

impl WireRequest {
    /// The client request id.
    pub fn id(&self) -> u64 {
        match self {
            WireRequest::Sql { id, .. }
            | WireRequest::Metrics { id, .. }
            | WireRequest::Subscribe { id, .. }
            | WireRequest::Explain { id, .. } => *id,
        }
    }

    /// Decodes a frame body. Errors are `(id, code, message)` ready for
    /// [`refusal`] — `id` is 0 when the frame was too broken to carry one.
    pub fn decode(body: &[u8]) -> Result<WireRequest, (u64, &'static str, String)> {
        let text = std::str::from_utf8(body)
            .map_err(|_| (0, "bad_request", "frame is not UTF-8".to_string()))?;
        let json = Json::parse(text).map_err(|e| (0, "bad_request", format!("bad JSON: {e}")))?;
        let id = json.get("id").and_then(Json::as_f64).unwrap_or(0.0);
        // The id rides the f64-based JSON layer end to end, so the
        // protocol caps it at Number.MAX_SAFE_INTEGER (2^53 − 1): above
        // that the echoed id could differ from the one sent.
        const MAX_ID: f64 = 9_007_199_254_740_991.0;
        if id <= 0.0 || id.fract() != 0.0 || id > MAX_ID {
            return Err((0, "bad_request", "`id` must be a positive integer <= 2^53 - 1".into()));
        }
        let id = id as u64;
        let str_field = |key: &str| -> Result<String, (u64, &'static str, String)> {
            json.get(key).and_then(Json::as_str).map(str::to_string).ok_or((
                id,
                "bad_request",
                format!("missing string field `{key}`"),
            ))
        };
        match json.get("verb").and_then(Json::as_str) {
            Some("sql") => {
                let epsilon = json.get("epsilon").and_then(Json::as_f64).ok_or((
                    id,
                    "bad_request",
                    "missing numeric field `epsilon`".to_string(),
                ))?;
                Ok(WireRequest::Sql {
                    id,
                    token: str_field("token")?,
                    dataset: str_field("dataset")?,
                    sql: str_field("sql")?,
                    epsilon,
                    name: json.get("name").and_then(Json::as_str).map(str::to_string),
                })
            }
            Some("metrics") => Ok(WireRequest::Metrics { id, token: str_field("token")? }),
            Some("subscribe") => {
                let capacity = match json.get("capacity") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let n = v.as_f64().filter(|n| *n >= 1.0 && n.fract() == 0.0).ok_or((
                            id,
                            "bad_request",
                            "`capacity` must be a positive integer".to_string(),
                        ))?;
                        Some(n as usize)
                    }
                };
                Ok(WireRequest::Subscribe { id, token: str_field("token")?, capacity })
            }
            Some("explain") => Ok(WireRequest::Explain {
                id,
                token: str_field("token")?,
                dataset: str_field("dataset")?,
                sql: str_field("sql")?,
                profile: json.get("profile").and_then(Json::as_f64).is_some_and(|v| v != 0.0),
            }),
            Some(other) => Err((id, "bad_request", format!("unknown verb `{other}`"))),
            None => Err((id, "bad_request", "missing string field `verb`".into())),
        }
    }
}

// ---- responses ------------------------------------------------------------

/// A structured refusal frame.
pub fn refusal(id: u64, code: &str, message: &str) -> Json {
    Json::obj(vec![
        ("id", Json::Num(id as f64)),
        ("ok", FALSE),
        ("code", Json::Str(code.to_string())),
        ("error", Json::Str(message.to_string())),
    ])
}

/// A refusal for a gate (parse/resolve) error, carrying the byte position.
pub fn gate_refusal(id: u64, err: &GateError) -> Json {
    Json::obj(vec![
        ("id", Json::Num(id as f64)),
        ("ok", FALSE),
        ("code", Json::Str(err.code().to_string())),
        ("error", Json::Str(err.to_string())),
        ("pos", Json::Num(err.pos() as f64)),
    ])
}

/// An answer frame for a served SQL request. `noisy_sql` is the rendered
/// perturbed statement when the schema is at hand to render it.
pub fn answer_frame(id: u64, answer: &ServiceAnswer, noisy_sql: Option<String>) -> Json {
    let mut pairs = vec![("id", Json::Num(id as f64)), ("ok", TRUE)];
    match &answer.result {
        QueryResult::Scalar(v) => {
            pairs.push(("kind", Json::Str("scalar".into())));
            pairs.push(("value", Json::Num(*v)));
        }
        QueryResult::Groups(groups) => {
            pairs.push(("kind", Json::Str("groups".into())));
            let rows = groups
                .iter()
                .map(|(key, value)| {
                    Json::obj(vec![
                        ("key", Json::Arr(key.iter().map(|&c| Json::Num(c as f64)).collect())),
                        ("value", Json::Num(*value)),
                    ])
                })
                .collect();
            pairs.push(("groups", Json::Arr(rows)));
        }
    }
    pairs.push(("cached", if answer.cached { TRUE } else { FALSE }));
    let (eps, delta) = answer.cost.map_or((0.0, 0.0), |c| (c.epsilon(), c.delta()));
    pairs.push(("cost_epsilon", Json::Num(eps)));
    pairs.push(("cost_delta", Json::Num(delta)));
    if let Some(noisy) = noisy_sql {
        pairs.push(("noisy_sql", Json::Str(noisy)));
    }
    Json::obj(pairs)
}

/// The stable refusal code for each [`ServiceError`] variant.
pub fn service_code(err: &ServiceError) -> &'static str {
    match err {
        ServiceError::BudgetExhausted { .. } => "budget_exhausted",
        ServiceError::UnknownTenant(_) => "unknown_tenant",
        ServiceError::DuplicateTenant(_) => "duplicate_tenant",
        ServiceError::InvalidQuery(_) => "invalid_query",
        ServiceError::InvalidBudget(_) => "invalid_budget",
        ServiceError::BelowMinFrequency { .. } => "below_min_frequency",
        ServiceError::NoGraph => "no_graph",
        ServiceError::Mechanism(_) => "mechanism_failure",
        ServiceError::StaleDataVersion { .. } => "stale_data_version",
        // Degraded mode: the budget journal is unavailable, so spends are
        // refused while cache hits and free answers keep serving. Stable —
        // clients key retry/alerting logic on it.
        ServiceError::DurabilityUnavailable { .. } => "journal_unavailable",
        ServiceError::Internal(_) => "internal",
    }
}

/// The stable refusal code for each [`RouterError`] variant. Shard-wrapped
/// service errors surface their inner [`service_code`] so clients see one
/// flat code space.
pub fn router_code(err: &RouterError) -> &'static str {
    match err {
        RouterError::Shard { source, .. } => service_code(source),
        RouterError::NoShards => "no_shards",
        RouterError::UnknownShard(_) => "unknown_shard",
        RouterError::LastShard(_) => "last_shard",
        RouterError::UnknownDataset(_) => "unknown_dataset",
        RouterError::DuplicateDataset(_) => "duplicate_dataset",
        RouterError::UnknownTable(_) => "unknown_table",
        RouterError::AmbiguousTable(_) => "ambiguous_table",
        RouterError::MixedDatasets { .. } => "mixed_datasets",
        RouterError::Unroutable(_) => "unroutable",
        RouterError::Fanout(_) => "fanout_failure",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frames_are_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut std::io::Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn requests_decode_and_bad_ones_carry_codes() {
        let req = Json::obj(vec![
            ("id", Json::Num(7.0)),
            ("verb", Json::Str("sql".into())),
            ("token", Json::Str("t".into())),
            ("dataset", Json::Str("ssb".into())),
            ("sql", Json::Str("SELECT count(*) FROM F;".into())),
            ("epsilon", Json::Num(0.5)),
        ]);
        match WireRequest::decode(req.render().as_bytes()).unwrap() {
            WireRequest::Sql { id, dataset, epsilon, name, .. } => {
                assert_eq!(id, 7);
                assert_eq!(dataset, "ssb");
                assert_eq!(epsilon, 0.5);
                assert!(name.is_none());
            }
            other => panic!("wrong verb: {other:?}"),
        }

        for (body, want_id) in [
            (&b"not json"[..], 0),
            (br#"{"verb": "sql"}"#, 0),            // no id
            (br#"{"id": 0, "verb": "sql"}"#, 0),   // zero id
            (br#"{"id": 1.5, "verb": "sql"}"#, 0), // fractional id
            (br#"{"id": 3, "verb": "warp"}"#, 3),  // unknown verb
            (br#"{"id": 4, "verb": "sql"}"#, 4),   // missing fields
            (br#"{"id": 5}"#, 5),                  // missing verb
            (b"\xff\xfe", 0),                      // not UTF-8
            // Above 2^53 − 1 the f64 JSON layer cannot echo the id
            // exactly; the protocol refuses instead of corrupting it.
            (&br#"{"id": 9007199254740992, "verb": "metrics", "token": "t"}"#[..], 0),
            (&br#"{"id": 18446744073709551615, "verb": "metrics", "token": "t"}"#[..], 0),
        ] {
            let (id, code, _) = WireRequest::decode(body).unwrap_err();
            assert_eq!(id, want_id, "id salvaged from {body:?}");
            assert_eq!(code, "bad_request");
        }

        // The largest exactly-representable id round-trips untouched.
        let max_safe = br#"{"id": 9007199254740991, "verb": "metrics", "token": "t"}"#;
        assert_eq!(WireRequest::decode(max_safe).unwrap().id(), 9_007_199_254_740_991);
    }

    #[test]
    fn subscribe_and_explain_requests_decode() {
        let sub = br#"{"id": 9, "verb": "subscribe", "token": "a", "capacity": 64}"#;
        match WireRequest::decode(sub).unwrap() {
            WireRequest::Subscribe { id, capacity, .. } => {
                assert_eq!(id, 9);
                assert_eq!(capacity, Some(64));
            }
            other => panic!("wrong verb: {other:?}"),
        }
        let sub_default = br#"{"id": 9, "verb": "subscribe", "token": "a"}"#;
        match WireRequest::decode(sub_default).unwrap() {
            WireRequest::Subscribe { capacity, .. } => assert!(capacity.is_none()),
            other => panic!("wrong verb: {other:?}"),
        }
        let bad_cap = br#"{"id": 9, "verb": "subscribe", "token": "a", "capacity": 0.5}"#;
        assert_eq!(WireRequest::decode(bad_cap).unwrap_err().1, "bad_request");

        let explain =
            br#"{"id": 10, "verb": "explain", "token": "a", "dataset": "ssb", "sql": "SELECT count(*) FROM F;", "profile": 1}"#;
        match WireRequest::decode(explain).unwrap() {
            WireRequest::Explain { id, dataset, profile, .. } => {
                assert_eq!(id, 10);
                assert_eq!(dataset, "ssb");
                assert!(profile);
            }
            other => panic!("wrong verb: {other:?}"),
        }
        // Profile defaults to off; dataset is required.
        let plain = br#"{"id": 11, "verb": "explain", "token": "a", "dataset": "ssb", "sql": "SELECT count(*) FROM F;"}"#;
        match WireRequest::decode(plain).unwrap() {
            WireRequest::Explain { profile, .. } => assert!(!profile),
            other => panic!("wrong verb: {other:?}"),
        }
        let no_dataset =
            br#"{"id": 12, "verb": "explain", "token": "a", "sql": "SELECT count(*) FROM F;"}"#;
        assert_eq!(WireRequest::decode(no_dataset).unwrap_err().1, "bad_request");
    }

    #[test]
    fn refusal_frames_carry_stable_codes() {
        let r = refusal(9, "budget_exhausted", "no more ε");
        assert_eq!(r.get("id").and_then(Json::as_f64), Some(9.0));
        assert_eq!(r.get("code").and_then(Json::as_str), Some("budget_exhausted"));
        let g = gate_refusal(
            2,
            &GateError::Parse { pos: 31, expected: "FROM".into(), found: "`;`".into() },
        );
        assert_eq!(g.get("code").and_then(Json::as_str), Some("parse_error"));
        assert_eq!(g.get("pos").and_then(Json::as_f64), Some(31.0));
    }

    #[test]
    fn every_service_error_has_a_distinct_code() {
        use starj_service::ServiceError as E;
        let codes = [
            service_code(&E::BudgetExhausted {
                tenant: "t".into(),
                requested_epsilon: 1.0,
                remaining_epsilon: 0.0,
            }),
            service_code(&E::UnknownTenant("t".into())),
            service_code(&E::DuplicateTenant("t".into())),
            service_code(&E::NoGraph),
            service_code(&E::StaleDataVersion { submitted: 1, current: 2 }),
            service_code(&E::BelowMinFrequency {
                table: "D".into(),
                attr: "a".into(),
                estimated_rows: 0.5,
                floor: 10,
            }),
            service_code(&E::DurabilityUnavailable { reason: "disk gone".into() }),
            service_code(&E::Internal("worker panicked".into())),
        ];
        let mut unique = codes.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes collide: {codes:?}");
    }
}
