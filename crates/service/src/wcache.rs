//! The W-histogram cache: reusable joint attribute-code histograms, keyed
//! on `(axis set, aggregate, data version)`.
//!
//! Workload Decomposition answers every reconstructed query as the dot
//! product `Φ̂·W` (paper Eq. 11), where `W` — the joint histogram of the
//! workload's attribute codes over the fact table — depends only on the
//! **data**, never on the queries or their noise. That makes `W` safe to
//! share across requests, tenants, and mechanisms alike: it is an internal
//! evaluation artifact, not a release, and everything computed *from* it is
//! post-processing of already-perturbed queries, so caching it affects no
//! budget accounting. With a warm cache, repeat workload traffic over the
//! same axes becomes entirely scan-free.
//!
//! The key carries the data version so [`crate::Service::refresh_schema`]
//! invalidates by construction: after a refresh, lookups carry the new
//! version and can never see a histogram built on the old data, even if an
//! in-flight request inserts one late. `clear()` additionally reclaims the
//! memory eagerly.

use starj_engine::{Agg, WeightHistogram};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, RwLock};

/// Cache key: normalized axes (ascending dimension order, as
/// [`WeightHistogram::plan_axes`] returns them), aggregate kind, and the
/// service data version the histogram was built against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WKey {
    /// Normalized `(table, attr)` axes.
    pub axes: Vec<(String, String)>,
    /// The aggregate the histogram accumulates.
    pub agg: Agg,
    /// Data version at build time.
    pub version: u64,
}

/// Default [`WeightHistogramCache`] capacity (entries). Histograms are
/// bounded by the engine's dense cap (`2^16` f64s ≈ 512 KiB each), so the
/// default bounds worst-case retention at ~16 MiB.
pub const DEFAULT_W_CACHE_CAPACITY: usize = 32;

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<WKey, Arc<WeightHistogram>>,
    /// Insertion order for FIFO eviction once `capacity` is reached.
    order: VecDeque<WKey>,
}

/// Thread-safe, bounded map from axis sets to their built histograms
/// (FIFO eviction, like the answer cache). Shared via `Arc` so a long dot
/// product never holds the cache lock.
#[derive(Debug)]
pub struct WeightHistogramCache {
    inner: RwLock<Inner>,
    capacity: usize,
}

impl Default for WeightHistogramCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_W_CACHE_CAPACITY)
    }
}

impl WeightHistogramCache {
    /// An empty cache holding at most `capacity` histograms. A capacity of
    /// 0 disables retention entirely.
    pub fn with_capacity(capacity: usize) -> Self {
        WeightHistogramCache { inner: RwLock::new(Inner::default()), capacity }
    }

    /// Looks a histogram up; `None` is a miss.
    pub fn get(&self, key: &WKey) -> Option<Arc<WeightHistogram>> {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).map.get(key).cloned()
    }

    /// Stores a histogram, evicting the oldest entries past the capacity.
    pub fn insert(&self, key: WKey, histogram: Arc<WeightHistogram>) {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if inner.map.insert(key.clone(), histogram).is_none() {
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let oldest = inner.order.pop_front().expect("order tracks every map entry");
            inner.map.remove(&oldest);
        }
    }

    /// Number of stored histograms.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// True iff no histograms are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored histogram (data refresh).
    pub fn clear(&self) {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starj_engine::{Column, Dimension, Domain, ScanOptions, StarSchema, Table};

    fn schema() -> StarSchema {
        let d = Domain::numeric("x", 3).unwrap();
        let dim = Table::new(
            "D",
            vec![Column::key("pk", vec![0, 1, 2]), Column::attr("x", d, vec![0, 1, 2])],
        )
        .unwrap();
        let fact = Table::new("F", vec![Column::key("fk", vec![0, 1, 2, 2])]).unwrap();
        StarSchema::new(fact, vec![Dimension::new(dim, "pk", "fk")]).unwrap()
    }

    fn key(version: u64) -> WKey {
        WKey { axes: vec![("D".into(), "x".into())], agg: Agg::Count, version }
    }

    fn hist() -> Arc<WeightHistogram> {
        let s = schema();
        Arc::new(
            WeightHistogram::build(
                &s,
                &[("D".to_string(), "x".to_string())],
                &Agg::Count,
                ScanOptions::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn hit_requires_exact_key() {
        let cache = WeightHistogramCache::default();
        cache.insert(key(0), hist());
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(1)).is_none(), "version bump must miss");
        let other = WKey { agg: Agg::Sum("m".into()), ..key(0) };
        assert!(cache.get(&other).is_none(), "aggregate kind must match");
    }

    #[test]
    fn capacity_bounds_fifo_and_clear_empties() {
        let cache = WeightHistogramCache::with_capacity(2);
        for v in 0..3 {
            cache.insert(key(v), hist());
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0)).is_none(), "oldest evicted first");
        assert!(cache.get(&key(2)).is_some());
        // Re-inserting an existing key must not duplicate its order slot.
        cache.insert(key(1), hist());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        let zero = WeightHistogramCache::with_capacity(0);
        zero.insert(key(0), hist());
        assert!(zero.is_empty(), "zero capacity disables retention");
    }
}
