//! **starj-service** — the serving subsystem that turns the DP-starJ
//! libraries into a system.
//!
//! The mechanism crates (`dp-starj`, `starj-engine`, `starj-noise`) answer
//! *one query for one caller*. A real DP deployment (cf. Chorus, Johnson et
//! al.; DProvSQL) needs a front door: something that admits queries, tracks
//! who has spent how much privacy budget, refuses queries that would
//! overdraw it, and reuses answers so repeated questions do not re-spend ε.
//! This crate is that front door:
//!
//! * [`Service`] — owns an `Arc<StarSchema>` (and optionally a graph) and
//!   answers Predicate-Mechanism, Workload-Decomposition, and k-star
//!   requests from any number of threads concurrently;
//! * [`BudgetAccountant`] — a thread-safe per-tenant `(ε, δ)` ledger with
//!   sequential composition and atomic **reserve → commit / rollback**
//!   semantics: a failed query always refunds its reservation, and a tenant
//!   whose allotment is spent gets a typed
//!   [`ServiceError::BudgetExhausted`] refusal;
//! * [`AnswerCache`] — replays an identical repeat query's stored noisy
//!   answer at zero additional budget, keyed by the deterministic
//!   query-normalization pass in [`starj_engine::canon`] (sorted predicates,
//!   collapsed ranges, label-free);
//! * [`crate::admission`] — schema validation that rejects malformed queries
//!   before any budget is reserved;
//! * [`crate::coalesce`] — the **group-commit scan coalescer**: with
//!   [`service::ServiceConfig::coalesce`] on, concurrent `pm_answer` /
//!   `wd_answer` traffic parks in a bounded queue and a worker pool answers
//!   each drained, compatibility-partitioned batch in **one fused fact
//!   scan** — provably answer- and budget-equivalent to the sequential
//!   path, because everything privacy-relevant happens at submit time;
//! * [`WeightHistogramCache`] — reusable `Q = Φ·W` joint-code histograms
//!   keyed on (axis set, aggregate, data version), making repeat workload
//!   traffic scan-free; invalidated by [`Service::refresh_schema`]'s data
//!   version bump, as is the answer cache;
//! * [`ServiceMetrics`] — queries served, cache hits, budget refusals,
//!   coalesced requests/batches, W-cache hits, and p50/p99 latency, all
//!   lock-free on the serving path;
//! * **observability** (via [`starj_telemetry`]) — per-request stage traces
//!   ([`Service::telemetry`]), an append-only privacy-budget audit trail
//!   whose committed ε sums are bit-identical to the ledger
//!   ([`Service::audit_jsonl`]), and a Prometheus text endpoint
//!   ([`Service::prometheus_text`]). Tracing reads clocks only at the
//!   submit-/drain-time seams, so enabling it never perturbs an answer or
//!   a ledger bit;
//! * **durability** (via [`starj_durable`]) — an optional write-ahead
//!   budget journal ([`DurableConfig`], opened by [`Service::open`]):
//!   every commit record is fsync-durable *before* the ledger charges and
//!   the answer is released, startup recovery replays per-tenant spends
//!   bit-identically, and a journal failure latches degraded mode — cache
//!   hits and free answers keep serving, new spends are refused with
//!   [`ServiceError::DurabilityUnavailable`].
//!
//! # Quick start
//!
//! ```
//! use starj_engine::{Column, Dimension, Domain, Predicate, StarQuery, StarSchema, Table};
//! use starj_noise::PrivacyBudget;
//! use starj_service::{Service, ServiceConfig};
//! use std::sync::Arc;
//!
//! // A toy schema: one dimension, six fact rows.
//! let domain = Domain::numeric("color", 4).unwrap();
//! let dim = Table::new("D", vec![
//!     Column::key("pk", vec![0, 1, 2, 3]),
//!     Column::attr("color", domain, vec![0, 1, 2, 3]),
//! ]).unwrap();
//! let fact = Table::new("F", vec![
//!     Column::key("fk", vec![0, 0, 1, 2, 3, 3]),
//!     Column::measure("qty", vec![1, 2, 3, 4, 5, 6]),
//! ]).unwrap();
//! let schema = StarSchema::new(fact, vec![Dimension::new(dim, "pk", "fk")]).unwrap();
//!
//! let service = Service::new(Arc::new(schema), ServiceConfig::default());
//! service.register_tenant("alice", PrivacyBudget::pure(1.0).unwrap()).unwrap();
//!
//! let q = StarQuery::count("demo").with(Predicate::range("D", "color", 1, 2));
//! let first = service.pm_answer("alice", &q, 0.5).unwrap();
//! assert!(!first.cached);
//!
//! // The identical query replays from the cache: same answer, zero budget.
//! let replay = service.pm_answer("alice", &q, 0.5).unwrap();
//! assert!(replay.cached);
//! assert_eq!(replay.result, first.result);
//! assert!((service.tenant_usage("alice").unwrap().spent_epsilon - 0.5).abs() < 1e-12);
//! ```

pub mod accountant;
pub mod admission;
pub mod cache;
pub mod coalesce;
pub mod durable;
pub mod error;
pub mod explain;
pub mod metrics;
pub mod service;
pub mod wcache;

pub use accountant::{BudgetAccountant, Reservation, TenantUsage};
pub use cache::{AnswerCache, CachedAnswer, Mechanism, RequestKey};
pub use coalesce::{Pending, Submitted};
pub use durable::{DurableConfig, DurableState, DurableStatus, RecordMeta, ReplaySummary};
pub use error::ServiceError;
pub use explain::{ExplainProfile, ExplainReport};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ServiceMetrics, LATENCY_BUCKETS};
pub use service::{
    BatchAnswer, KStarAnswer, Service, ServiceAnswer, ServiceConfig, WorkloadAnswer,
};
pub use wcache::WeightHistogramCache;

// Re-export the observability vocabulary so service consumers configure
// tracing/auditing without naming the telemetry crate directly.
pub use starj_telemetry::{
    AuditEvent, AuditKind, AuditTrail, KernelSnapshot, RequestKind, Stage, Telemetry,
    TelemetryConfig, TraceOutcome, TraceRecord,
};
