//! EXPLAIN: the plan a query *would* run, without spending budget.
//!
//! [`crate::Service::explain`] resolves a star query exactly as the
//! serving path would — admission validation, canonicalization, scan-plan
//! compilation under the service's own scan options — and reports the
//! result instead of executing it: the canonical SQL the cache would key
//! on, the kernel's filter order with probe classes and (when the cost
//! model is on) sampled pass-fraction estimates with confidence
//! intervals, the mask-sharing and fk-staging decisions, and optionally
//! the kernel-counter deltas of one profiling scan.
//!
//! Nothing here touches the accountant: no reservation, no noise draw, no
//! cache insert, no audit event. The optional profiling scan runs the
//! **original** (un-noised) query purely for its counter deltas and
//! discards the result — which is precisely why the gate exposes this
//! verb to *admin* tokens only: plan shapes, sampled selectivities, and
//! exact row counts are data-dependent and carry no DP noise, so handing
//! them to tenants would open a side channel around the privacy budget.

use crate::error::ServiceError;
use starj_engine::{PlanExplain, ScanPlan, StarQuery};
use starj_telemetry::{kernel_counters, Json, KernelSnapshot};

/// What [`crate::Service::explain`] returns.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Canonical SQL — the normalized form answer caching keys on.
    pub canonical_sql: String,
    /// True when canonicalization proved the query empty on every
    /// instance (the serving path would answer it exactly, for free).
    pub unsatisfiable: bool,
    /// Data version the plan was resolved against.
    pub data_version: u64,
    /// The plan shape; `None` for unsatisfiable queries (nothing would
    /// be scanned).
    pub plan: Option<PlanExplain>,
    /// Kernel-counter deltas of one profiling execution, when requested.
    pub profile: Option<ExplainProfile>,
}

/// One profiling scan's cost, expressed as kernel-counter deltas.
#[derive(Debug, Clone, Copy)]
pub struct ExplainProfile {
    /// Wall-clock nanoseconds of the scan.
    pub elapsed_ns: u64,
    /// Kernel counter movement attributable to the scan. Process-wide
    /// counters, so concurrent traffic can inflate deltas — profile on a
    /// quiet shard for exact numbers.
    pub counters: KernelSnapshot,
}

impl ExplainReport {
    /// Renders the report as a JSON object — the payload of the gate's
    /// `explain` verb.
    pub fn to_json(&self) -> Json {
        let profile = self.profile.as_ref().map_or(Json::Null, |p| {
            let counters = p
                .counters
                .entries()
                .iter()
                .map(|(name, value)| ((*name).to_string(), Json::Num(*value as f64)))
                .collect();
            Json::obj(vec![
                ("elapsed_ns", Json::Num(p.elapsed_ns as f64)),
                ("counters", Json::Obj(counters)),
            ])
        });
        Json::obj(vec![
            ("canonical_sql", Json::Str(self.canonical_sql.clone())),
            ("unsatisfiable", Json::Num(f64::from(u8::from(self.unsatisfiable)))),
            ("data_version", Json::Num(self.data_version as f64)),
            ("plan", self.plan.as_ref().map_or(Json::Null, PlanExplain::to_json)),
            ("profile", profile),
        ])
    }
}

/// Compiles `query` into a one-member scan plan and describes it;
/// optionally runs the plan once for kernel-counter deltas, discarding
/// the (exact, un-noised) result. Shared by [`crate::Service::explain`]
/// so the plan EXPLAIN reports is built by the same code path the
/// executor uses.
pub(crate) fn describe_query(
    schema: &starj_engine::StarSchema,
    query: &StarQuery,
    options: starj_engine::ScanOptions,
    profile: bool,
) -> Result<(PlanExplain, Option<ExplainProfile>), ServiceError> {
    let mut plan = ScanPlan::with_options(schema, options).map_err(ServiceError::InvalidQuery)?;
    plan.add_query(query).map_err(ServiceError::InvalidQuery)?;
    let described = plan.describe();
    let profile = profile.then(|| {
        let before = kernel_counters().snapshot();
        let start = std::time::Instant::now();
        let _ = plan.execute(options);
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        let counters = kernel_counters().snapshot().since(&before);
        ExplainProfile { elapsed_ns, counters }
    });
    Ok((described, profile))
}
