//! Admission control: reject malformed requests **before** any budget is
//! reserved.
//!
//! A query that names an unknown table, an attribute outside its domain, or
//! a non-measure aggregate target would fail inside the mechanism anyway —
//! but by then the accountant would have had to reserve and refund. Checking
//! everything against the schema up front keeps the reserve path on the
//! happy side: after admission, the only legitimate failure left is the
//! mechanism itself, and that path refunds via the reservation's RAII.

use crate::error::ServiceError;
use dp_starj::PredicateWorkload;
use starj_engine::{EngineError, StarQuery, StarSchema};

/// Validates a star-join query against the schema: aggregate measures exist
/// on the fact table, every predicate resolves to a dimension (or snowflake
/// sub-dimension) attribute and lies inside its domain, and every GROUP BY
/// attribute is a dimension attribute the engine can group on.
pub fn validate_query(schema: &StarSchema, query: &StarQuery) -> Result<(), ServiceError> {
    match &query.agg {
        starj_engine::Agg::Count => {}
        starj_engine::Agg::Sum(m) => {
            schema.fact().measure(m)?;
        }
        starj_engine::Agg::SumDiff(a, b) => {
            schema.fact().measure(a)?;
            schema.fact().measure(b)?;
        }
    }

    for pred in &query.predicates {
        let domain = if let Ok(dim) = schema.dim(&pred.table) {
            dim.table.domain(&pred.attr)?
        } else if let Some((_, sub)) = schema.subdim(&pred.table) {
            sub.table.domain(&pred.attr)?
        } else {
            return Err(EngineError::UnknownTable(pred.table.clone()).into());
        };
        pred.constraint.validate(domain)?;
    }

    for group in &query.group_by {
        // The executor resolves GROUP BY against dimensions only (snowflake
        // sub-dimension grouping is not supported), so admission mirrors it.
        let dim = schema.dim(&group.table)?;
        dim.table.codes(&group.attr)?;
    }
    Ok(())
}

/// Validates a WD workload against the schema: every block must name a
/// dimension attribute whose declared domain size matches the block's, and
/// every constraint must lie inside that domain.
pub fn validate_workload(
    schema: &StarSchema,
    workload: &PredicateWorkload,
) -> Result<(), ServiceError> {
    for (bi, block) in workload.blocks.iter().enumerate() {
        let dim = schema.dim(&block.table)?;
        let domain = dim.table.domain(&block.attr)?;
        if domain.size() != block.domain {
            return Err(EngineError::InvalidConstraint(format!(
                "workload block `{}.{}` declares domain size {}, schema has {}",
                block.table,
                block.attr,
                block.domain,
                domain.size()
            ))
            .into());
        }
        for row in &workload.rows {
            row[bi].validate(domain)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_starj::workload::WorkloadBlock;
    use starj_engine::{Column, Constraint, Dimension, Domain, GroupAttr, Predicate, Table};

    fn toy_schema() -> StarSchema {
        let color = Domain::numeric("color", 4).unwrap();
        let dim = Table::new(
            "D",
            vec![
                Column::key("pk", vec![0, 1, 2, 3]),
                Column::attr("color", color, vec![0, 1, 2, 3]),
            ],
        )
        .unwrap();
        let fact = Table::new(
            "F",
            vec![
                Column::key("fk", vec![0, 1, 2, 3, 3]),
                Column::measure("qty", vec![1, 2, 3, 4, 5]),
            ],
        )
        .unwrap();
        StarSchema::new(fact, vec![Dimension::new(dim, "pk", "fk")]).unwrap()
    }

    #[test]
    fn valid_query_admits() {
        let schema = toy_schema();
        let q = StarQuery::sum("q", "qty")
            .with(Predicate::range("D", "color", 1, 2))
            .group_by(GroupAttr::new("D", "color"));
        assert!(validate_query(&schema, &q).is_ok());
    }

    #[test]
    fn unknown_table_attribute_and_measure_reject() {
        let schema = toy_schema();
        let bad_table = StarQuery::count("q").with(Predicate::point("Nope", "color", 0));
        assert!(matches!(
            validate_query(&schema, &bad_table),
            Err(ServiceError::InvalidQuery(EngineError::UnknownTable(_)))
        ));
        let bad_attr = StarQuery::count("q").with(Predicate::point("D", "shade", 0));
        assert!(validate_query(&schema, &bad_attr).is_err());
        let bad_measure = StarQuery::sum("q", "revenue");
        assert!(validate_query(&schema, &bad_measure).is_err());
        let bad_group = StarQuery::count("q").group_by(GroupAttr::new("D", "shade"));
        assert!(validate_query(&schema, &bad_group).is_err());
    }

    #[test]
    fn out_of_domain_constraint_rejects() {
        let schema = toy_schema();
        let q = StarQuery::count("q").with(Predicate::point("D", "color", 9));
        assert!(matches!(
            validate_query(&schema, &q),
            Err(ServiceError::InvalidQuery(EngineError::InvalidConstraint(_)))
        ));
    }

    #[test]
    fn workload_block_domain_must_match_schema() {
        let schema = toy_schema();
        let good = PredicateWorkload::new(
            vec![WorkloadBlock { table: "D".into(), attr: "color".into(), domain: 4 }],
            vec![vec![Constraint::Point(1)], vec![Constraint::Range { lo: 0, hi: 2 }]],
        )
        .unwrap();
        assert!(validate_workload(&schema, &good).is_ok());

        let wrong_size = PredicateWorkload::new(
            vec![WorkloadBlock { table: "D".into(), attr: "color".into(), domain: 7 }],
            vec![vec![Constraint::Point(1)]],
        )
        .unwrap();
        assert!(validate_workload(&schema, &wrong_size).is_err());

        let out_of_domain = PredicateWorkload::new(
            vec![WorkloadBlock { table: "D".into(), attr: "color".into(), domain: 4 }],
            vec![vec![Constraint::Point(9)]],
        )
        .unwrap();
        assert!(validate_workload(&schema, &out_of_domain).is_err());
    }
}
