//! Admission control: reject malformed requests **before** any budget is
//! reserved.
//!
//! A query that names an unknown table, an attribute outside its domain, or
//! a non-measure aggregate target would fail inside the mechanism anyway —
//! but by then the accountant would have had to reserve and refund. Checking
//! everything against the schema up front keeps the reserve path on the
//! happy side: after admission, the only legitimate failure left is the
//! mechanism itself, and that path refunds via the reservation's RAII.

use crate::error::ServiceError;
use dp_starj::PredicateWorkload;
use starj_engine::{
    cost_model_for, BitSet, CostConfig, EngineError, Predicate, StarQuery, StarSchema,
};

/// Validates a star-join query against the schema: aggregate measures exist
/// on the fact table, every predicate resolves to a dimension (or snowflake
/// sub-dimension) attribute and lies inside its domain, and every GROUP BY
/// attribute is a dimension attribute the engine can group on.
pub fn validate_query(schema: &StarSchema, query: &StarQuery) -> Result<(), ServiceError> {
    match &query.agg {
        starj_engine::Agg::Count => {}
        starj_engine::Agg::Sum(m) => {
            schema.fact().measure(m)?;
        }
        starj_engine::Agg::SumDiff(a, b) => {
            schema.fact().measure(a)?;
            schema.fact().measure(b)?;
        }
    }

    for pred in &query.predicates {
        let domain = if let Ok(dim) = schema.dim(&pred.table) {
            dim.table.domain(&pred.attr)?
        } else if let Some((_, sub)) = schema.subdim(&pred.table) {
            sub.table.domain(&pred.attr)?
        } else {
            return Err(EngineError::UnknownTable(pred.table.clone()).into());
        };
        pred.constraint.validate(domain)?;
    }

    for group in &query.group_by {
        // The executor resolves GROUP BY against dimensions only (snowflake
        // sub-dimension grouping is not supported), so admission mirrors it.
        let dim = schema.dim(&group.table)?;
        dim.table.codes(&group.attr)?;
    }
    Ok(())
}

/// The DPSQL+ minimum-frequency rule: refuse any predicate whose
/// cost-model estimated pass count (estimated passing fraction × fact
/// rows) falls below `floor`. Releasing a DP answer about a handful of
/// rows is formally fine, but deployments following DPSQL+ refuse such
/// queries outright as a cheap second line of defense — and the refusal is
/// an *admission* decision, so it happens before any budget is reserved.
///
/// `floor == 0` disables the guard. Estimates come from the shared sampled
/// cost model ([`starj_engine::cost`]): exact on small instances, a
/// WanderJoin-style sample elsewhere — the guard is a policy heuristic,
/// not a privacy mechanism, so a sampling error only moves the refusal
/// boundary, never a ledger bit.
pub fn min_frequency_check(
    schema: &StarSchema,
    predicates: &[Predicate],
    floor: u64,
) -> Result<(), ServiceError> {
    if floor == 0 || predicates.is_empty() {
        return Ok(());
    }
    let model =
        cost_model_for(schema, &CostConfig::default()).map_err(ServiceError::InvalidQuery)?;
    let fact_rows = model.fact_rows() as f64;
    for pred in predicates {
        // Build the dimension pass mask the estimator scores: one bit per
        // dimension row, set iff the row satisfies the predicate. Snowflake
        // predicates fold onto the parent dimension through the link key,
        // exactly as the scan planner does.
        let (dim_index, mask) = if let Ok(dim) = schema.dim(&pred.table) {
            let codes = dim.table.codes(&pred.attr)?;
            let mut mask = BitSet::zeros(codes.len());
            for (row, &code) in codes.iter().enumerate() {
                mask.set(row, pred.constraint.matches(code));
            }
            (schema.dim_index(&pred.table)?, mask)
        } else if let Some((parent, sub)) = schema.subdim(&pred.table) {
            let sub_attr = sub.table.codes(&pred.attr)?;
            let sub_pk = sub.table.key(&sub.pk)?;
            let links = parent.table.key(&sub.fk_in_dim)?;
            let mut mask = BitSet::zeros(links.len());
            for (row, link) in links.iter().enumerate() {
                let passes = sub_pk
                    .iter()
                    .position(|pk| pk == link)
                    .is_some_and(|s| pred.constraint.matches(sub_attr[s]));
                mask.set(row, passes);
            }
            (schema.dim_index(parent.table.name())?, mask)
        } else {
            return Err(EngineError::UnknownTable(pred.table.clone()).into());
        };
        let estimated_rows = model.pass_fraction(dim_index, &mask).fraction * fact_rows;
        if estimated_rows < floor as f64 {
            return Err(ServiceError::BelowMinFrequency {
                table: pred.table.clone(),
                attr: pred.attr.clone(),
                estimated_rows,
                floor,
            });
        }
    }
    Ok(())
}

/// Validates a WD workload against the schema: every block must name a
/// dimension attribute whose declared domain size matches the block's, and
/// every constraint must lie inside that domain.
pub fn validate_workload(
    schema: &StarSchema,
    workload: &PredicateWorkload,
) -> Result<(), ServiceError> {
    for (bi, block) in workload.blocks.iter().enumerate() {
        let dim = schema.dim(&block.table)?;
        let domain = dim.table.domain(&block.attr)?;
        if domain.size() != block.domain {
            return Err(EngineError::InvalidConstraint(format!(
                "workload block `{}.{}` declares domain size {}, schema has {}",
                block.table,
                block.attr,
                block.domain,
                domain.size()
            ))
            .into());
        }
        for row in &workload.rows {
            row[bi].validate(domain)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_starj::workload::WorkloadBlock;
    use starj_engine::{Column, Constraint, Dimension, Domain, GroupAttr, Predicate, Table};

    fn toy_schema() -> StarSchema {
        let color = Domain::numeric("color", 4).unwrap();
        let dim = Table::new(
            "D",
            vec![
                Column::key("pk", vec![0, 1, 2, 3]),
                Column::attr("color", color, vec![0, 1, 2, 3]),
            ],
        )
        .unwrap();
        let fact = Table::new(
            "F",
            vec![
                Column::key("fk", vec![0, 1, 2, 3, 3]),
                Column::measure("qty", vec![1, 2, 3, 4, 5]),
            ],
        )
        .unwrap();
        StarSchema::new(fact, vec![Dimension::new(dim, "pk", "fk")]).unwrap()
    }

    #[test]
    fn valid_query_admits() {
        let schema = toy_schema();
        let q = StarQuery::sum("q", "qty")
            .with(Predicate::range("D", "color", 1, 2))
            .group_by(GroupAttr::new("D", "color"));
        assert!(validate_query(&schema, &q).is_ok());
    }

    #[test]
    fn unknown_table_attribute_and_measure_reject() {
        let schema = toy_schema();
        let bad_table = StarQuery::count("q").with(Predicate::point("Nope", "color", 0));
        assert!(matches!(
            validate_query(&schema, &bad_table),
            Err(ServiceError::InvalidQuery(EngineError::UnknownTable(_)))
        ));
        let bad_attr = StarQuery::count("q").with(Predicate::point("D", "shade", 0));
        assert!(validate_query(&schema, &bad_attr).is_err());
        let bad_measure = StarQuery::sum("q", "revenue");
        assert!(validate_query(&schema, &bad_measure).is_err());
        let bad_group = StarQuery::count("q").group_by(GroupAttr::new("D", "shade"));
        assert!(validate_query(&schema, &bad_group).is_err());
    }

    #[test]
    fn out_of_domain_constraint_rejects() {
        let schema = toy_schema();
        let q = StarQuery::count("q").with(Predicate::point("D", "color", 9));
        assert!(matches!(
            validate_query(&schema, &q),
            Err(ServiceError::InvalidQuery(EngineError::InvalidConstraint(_)))
        ));
    }

    #[test]
    fn min_frequency_guard_is_off_at_floor_zero() {
        let schema = toy_schema();
        // color = 0 admits exactly 1 of 5 fact rows; with the guard off even
        // the rarest predicate passes.
        let q = StarQuery::count("q").with(Predicate::point("D", "color", 0));
        assert!(min_frequency_check(&schema, &q.predicates, 0).is_ok());
        // A predicate-free query trivially passes at any floor.
        assert!(min_frequency_check(&schema, &[], u64::MAX).is_ok());
    }

    #[test]
    fn min_frequency_guard_refuses_below_floor_and_admits_at_floor() {
        let schema = toy_schema();
        // Fact fks are [0, 1, 2, 3, 3]: color = 3 admits 2 rows, color = 0
        // admits 1. The toy instance is small enough that the cost model is
        // exact, so the boundary is sharp.
        let rare = StarQuery::count("q").with(Predicate::point("D", "color", 0));
        match min_frequency_check(&schema, &rare.predicates, 2) {
            Err(ServiceError::BelowMinFrequency { table, attr, estimated_rows, floor }) => {
                assert_eq!(table, "D");
                assert_eq!(attr, "color");
                assert!((estimated_rows - 1.0).abs() < 1e-9, "got {estimated_rows}");
                assert_eq!(floor, 2);
            }
            other => panic!("expected BelowMinFrequency, got {other:?}"),
        }
        let common = StarQuery::count("q").with(Predicate::point("D", "color", 3));
        assert!(min_frequency_check(&schema, &common.predicates, 2).is_ok());
        assert!(min_frequency_check(&schema, &common.predicates, 3).is_err());
    }

    #[test]
    fn min_frequency_guard_resolves_snowflake_predicates() {
        // D(pk, sk) → S(sk, tier): S rows 0/1 carry tier 0/1, dimension rows
        // [0, 1] link to S rows [0, 1], fact fks [0, 0, 1] → tier = 1 admits
        // 1 of 3 fact rows.
        let tier = Domain::numeric("tier", 2).unwrap();
        let sub = Table::new(
            "S",
            vec![Column::key("sk", vec![0, 1]), Column::attr("tier", tier, vec![0, 1])],
        )
        .unwrap();
        let dim =
            Table::new("D", vec![Column::key("pk", vec![0, 1]), Column::key("sk", vec![0, 1])])
                .unwrap();
        let fact = Table::new("F", vec![Column::key("fk", vec![0, 0, 1])]).unwrap();
        let dim = Dimension::new(dim, "pk", "fk").with_subdim(starj_engine::SubDimension {
            table: sub,
            pk: "sk".into(),
            fk_in_dim: "sk".into(),
        });
        let schema = StarSchema::new(fact, vec![dim]).unwrap();

        let q = StarQuery::count("q").with(Predicate::point("S", "tier", 1));
        assert!(min_frequency_check(&schema, &q.predicates, 1).is_ok());
        assert!(matches!(
            min_frequency_check(&schema, &q.predicates, 2),
            Err(ServiceError::BelowMinFrequency { estimated_rows, .. })
                if (estimated_rows - 1.0).abs() < 1e-9
        ));
    }

    #[test]
    fn workload_block_domain_must_match_schema() {
        let schema = toy_schema();
        let good = PredicateWorkload::new(
            vec![WorkloadBlock { table: "D".into(), attr: "color".into(), domain: 4 }],
            vec![vec![Constraint::Point(1)], vec![Constraint::Range { lo: 0, hi: 2 }]],
        )
        .unwrap();
        assert!(validate_workload(&schema, &good).is_ok());

        let wrong_size = PredicateWorkload::new(
            vec![WorkloadBlock { table: "D".into(), attr: "color".into(), domain: 7 }],
            vec![vec![Constraint::Point(1)]],
        )
        .unwrap();
        assert!(validate_workload(&schema, &wrong_size).is_err());

        let out_of_domain = PredicateWorkload::new(
            vec![WorkloadBlock { table: "D".into(), attr: "color".into(), domain: 4 }],
            vec![vec![Constraint::Point(9)]],
        )
        .unwrap();
        assert!(validate_workload(&schema, &out_of_domain).is_err());
    }
}
