//! Answer cache: identical repeat queries replay their stored noisy answer
//! at zero additional privacy budget.
//!
//! Replaying is free because of DP's post-processing invariance: the cached
//! value is already a differentially private release, and handing the same
//! bytes back again reveals nothing new. This is a particularly good deal
//! for the Predicate Mechanism — perturbation happens on the query's
//! predicate constants, so the stored answer is an ordinary exact evaluation
//! of a noisy query and can be replayed verbatim.
//!
//! The key is `(tenant, mechanism, ε-bits, data version, canonical
//! request)`:
//!
//! * **tenant** — answers are never shared across tenants. Each tenant's
//!   noisy answer was financed by that tenant's ledger; sharing would let
//!   tenant B observe a release tenant A paid for, and correlated replays
//!   across trust boundaries defeat per-tenant accounting.
//! * **mechanism** — a PM answer and a WD answer to the same workload are
//!   different releases.
//! * **ε-bits** — the same query at a different ε is a different release
//!   (different noise scale); bit-exact `f64` comparison keeps the key
//!   `Eq`/`Hash`-sound.
//! * **data version** — an answer computed on one schema instance must
//!   never replay after [`crate::Service::refresh_schema`] swaps the data.
//!   Keying on the version (rather than relying on `clear()` alone) also
//!   makes late inserts from requests that were in flight *during* a
//!   refresh harmless: they land under the old version and are unreachable.
//! * **canonical request** — queries are normalized through
//!   [`starj_engine::canon`], so predicate order, `[v, v]` vs. point, and
//!   label differences all hit the same entry.

use starj_engine::{CanonicalQuery, QueryResult, StarQuery};
use starj_noise::PrivacyBudget;
use std::collections::{HashMap, VecDeque};
use std::sync::RwLock;

/// Which mechanism produced (or is being asked to produce) an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Predicate Mechanism (Algorithms 1 & 3).
    Pm,
    /// PM over a query batch answered in one fused fact scan.
    PmBatch,
    /// Workload Decomposition (Algorithm 4).
    Wd,
    /// PM for k-star counting on graphs.
    KStar,
}

/// The canonical form of a request, as cached.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestKey {
    /// A single star-join query in canonical form.
    Single(CanonicalQuery),
    /// A workload: the canonical forms of its member queries, in order.
    Workload(Vec<CanonicalQuery>),
    /// A k-star query `(k, lo, hi)`.
    KStar(u32, u32, u32),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    tenant: String,
    mechanism: Mechanism,
    epsilon_bits: u64,
    version: u64,
    request: RequestKey,
}

/// A stored answer, replayable for free.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// Scalar/group result (PM), or unused placeholder for other shapes.
    pub result: QueryResult,
    /// Workload answers (WD); empty otherwise.
    pub workload_answers: Vec<f64>,
    /// The noisy query PM executed, for auditability.
    pub noisy_query: Option<StarQuery>,
    /// Per-member results and noisy queries of a fused PM batch
    /// ([`Mechanism::PmBatch`]); a `None` noisy query marks a member that
    /// was answered exactly for free (unsatisfiable). Empty otherwise.
    pub batch: Vec<(QueryResult, Option<StarQuery>)>,
    /// The noisy `(k, lo, hi)` range a k-star answer counted; `None`
    /// otherwise.
    pub noisy_kstar: Option<(u32, u32, u32)>,
    /// What the original (cache-missing) call paid.
    pub original_cost: PrivacyBudget,
}

/// Default [`AnswerCache`] capacity (entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, CachedAnswer>,
    /// Insertion order for FIFO eviction once `capacity` is reached.
    order: VecDeque<CacheKey>,
}

/// Thread-safe, **bounded** map from canonical requests to their released
/// answers. Once the capacity is reached, the oldest entry is evicted
/// (FIFO). Eviction is privacy-safe: the budget spent producing an evicted
/// answer stays spent, and a re-submitted query simply pays again for a
/// fresh release.
#[derive(Debug)]
pub struct AnswerCache {
    inner: RwLock<CacheInner>,
    capacity: usize,
}

impl Default for AnswerCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl AnswerCache {
    /// An empty cache holding at most [`DEFAULT_CACHE_CAPACITY`] answers.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` answers. A capacity of 0
    /// disables retention entirely (every insert is immediately evicted).
    pub fn with_capacity(capacity: usize) -> Self {
        AnswerCache { inner: RwLock::new(CacheInner::default()), capacity }
    }

    /// Looks an answer up; `None` is a miss. `version` is the data version
    /// the caller is answering against.
    pub fn get(
        &self,
        tenant: &str,
        mechanism: Mechanism,
        epsilon: f64,
        version: u64,
        request: &RequestKey,
    ) -> Option<CachedAnswer> {
        let key = CacheKey {
            tenant: tenant.to_string(),
            mechanism,
            epsilon_bits: epsilon.to_bits(),
            version,
            request: request.clone(),
        };
        self.inner.read().unwrap_or_else(|e| e.into_inner()).map.get(&key).cloned()
    }

    /// Stores an answer for replay, evicting the oldest entries past the
    /// capacity.
    pub fn insert(
        &self,
        tenant: &str,
        mechanism: Mechanism,
        epsilon: f64,
        version: u64,
        request: RequestKey,
        answer: CachedAnswer,
    ) {
        let key = CacheKey {
            tenant: tenant.to_string(),
            mechanism,
            epsilon_bits: epsilon.to_bits(),
            version,
            request,
        };
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if inner.map.insert(key.clone(), answer).is_none() {
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let oldest = inner.order.pop_front().expect("order tracks every map entry");
            inner.map.remove(&oldest);
        }
    }

    /// Number of stored answers.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// True iff no answers are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored answer (e.g. after a data refresh that invalidates
    /// them — note the *budget* already spent on them stays spent).
    pub fn clear(&self) {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starj_engine::{canonicalize, Predicate, StarQuery};

    fn canon(q: &StarQuery) -> RequestKey {
        RequestKey::Single(canonicalize(q))
    }

    fn answer(v: f64) -> CachedAnswer {
        CachedAnswer {
            result: QueryResult::Scalar(v),
            workload_answers: Vec::new(),
            noisy_query: None,
            batch: Vec::new(),
            noisy_kstar: None,
            original_cost: PrivacyBudget::pure(0.5).unwrap(),
        }
    }

    #[test]
    fn hit_requires_exact_tenant_mechanism_and_epsilon() {
        let cache = AnswerCache::new();
        let q = StarQuery::count("q").with(Predicate::point("A", "x", 1));
        let key = canon(&q);
        cache.insert("alice", Mechanism::Pm, 0.5, 0, key.clone(), answer(42.0));

        assert!(cache.get("alice", Mechanism::Pm, 0.5, 0, &key).is_some());
        assert!(cache.get("bob", Mechanism::Pm, 0.5, 0, &key).is_none(), "tenant isolation");
        assert!(cache.get("alice", Mechanism::Wd, 0.5, 0, &key).is_none(), "mechanism");
        assert!(cache.get("alice", Mechanism::Pm, 0.25, 0, &key).is_none(), "epsilon");
    }

    #[test]
    fn presentation_equivalent_queries_share_an_entry() {
        let cache = AnswerCache::new();
        let a = StarQuery::count("first")
            .with(Predicate::point("B", "y", 2))
            .with(Predicate::range("A", "x", 3, 3));
        let b = StarQuery::count("second")
            .with(Predicate::point("A", "x", 3))
            .with(Predicate::point("B", "y", 2));
        cache.insert("t", Mechanism::Pm, 1.0, 0, canon(&a), answer(7.0));
        let hit = cache.get("t", Mechanism::Pm, 1.0, 0, &canon(&b)).expect("canonical hit");
        assert_eq!(hit.result, QueryResult::Scalar(7.0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bounds_the_cache_fifo() {
        let cache = AnswerCache::with_capacity(2);
        for i in 0..3u32 {
            let q = StarQuery::count("q").with(Predicate::point("A", "x", i));
            cache.insert("t", Mechanism::Pm, 1.0, 0, canon(&q), answer(f64::from(i)));
        }
        assert_eq!(cache.len(), 2, "capacity must hold");
        let oldest = StarQuery::count("q").with(Predicate::point("A", "x", 0));
        assert!(
            cache.get("t", Mechanism::Pm, 1.0, 0, &canon(&oldest)).is_none(),
            "oldest entry is evicted first"
        );
        let newest = StarQuery::count("q").with(Predicate::point("A", "x", 2));
        assert!(cache.get("t", Mechanism::Pm, 1.0, 0, &canon(&newest)).is_some());
        // Re-inserting an existing key must not duplicate its order slot.
        let mid = StarQuery::count("q").with(Predicate::point("A", "x", 1));
        cache.insert("t", Mechanism::Pm, 1.0, 0, canon(&mid), answer(9.0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = AnswerCache::with_capacity(0);
        let q = StarQuery::count("q").with(Predicate::point("A", "x", 1));
        cache.insert("t", Mechanism::Pm, 1.0, 0, canon(&q), answer(1.0));
        assert!(cache.is_empty());
        assert!(cache.get("t", Mechanism::Pm, 1.0, 0, &canon(&q)).is_none());
    }

    #[test]
    fn versions_are_isolated() {
        let cache = AnswerCache::new();
        let q = StarQuery::count("q").with(Predicate::point("A", "x", 1));
        cache.insert("t", Mechanism::Pm, 1.0, 0, canon(&q), answer(1.0));
        assert!(cache.get("t", Mechanism::Pm, 1.0, 0, &canon(&q)).is_some());
        assert!(
            cache.get("t", Mechanism::Pm, 1.0, 1, &canon(&q)).is_none(),
            "a pre-refresh answer must not replay against refreshed data"
        );
        // A late insert under the old version stays unreachable at the new.
        cache.insert("t", Mechanism::Pm, 1.0, 0, canon(&q), answer(2.0));
        assert!(cache.get("t", Mechanism::Pm, 1.0, 1, &canon(&q)).is_none());
    }

    #[test]
    fn clear_empties() {
        let cache = AnswerCache::new();
        cache.insert("t", Mechanism::KStar, 1.0, 0, RequestKey::KStar(2, 0, 9), answer(1.0));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
