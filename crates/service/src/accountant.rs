//! Thread-safe per-tenant `(ε, δ)` budget accounting.
//!
//! Every tenant owns a [`starj_noise::BudgetLedger`] guarded by its own
//! mutex, so contention is per-tenant: threads serving different tenants
//! never serialize on each other. Spending follows a strict
//! **reserve → commit / rollback** protocol:
//!
//! 1. [`BudgetAccountant::reserve`] atomically checks
//!    `spent + in-flight + cost ≤ allotment` and, on success, adds `cost` to
//!    the tenant's in-flight total. A failed check returns the typed
//!    [`ServiceError::BudgetExhausted`] and changes nothing.
//! 2. [`Reservation::commit`] moves the cost from in-flight to spent —
//!    the query was answered, the budget is gone for good.
//! 3. [`Reservation::rollback`] (or simply dropping the reservation, e.g.
//!    when the mechanism errors and the `?` operator unwinds the request)
//!    returns the cost to the tenant. **A failed query never spends.**
//!
//! Because the admission check counts in-flight reservations, the invariant
//! `committed + in-flight ≤ allotment` holds at every instant, under any
//! thread interleaving — N threads hammering one tenant can never over-spend
//! it, which the cross-crate stress test (`tests/service_concurrency.rs`)
//! exercises with 8+ threads.

use crate::durable::JournalCtx;
use crate::error::ServiceError;
use starj_durable::{RecordKind, ReplayedLedger};
use starj_noise::{BudgetLedger, PrivacyBudget};
use starj_telemetry::{AuditKind, AuditTrail};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

#[derive(Debug)]
struct TenantState {
    /// The tenant id as a shared string, so audit events clone a pointer,
    /// not a heap allocation.
    name: Arc<str>,
    ledger: BudgetLedger,
    in_flight_epsilon: f64,
    in_flight_delta: f64,
    /// Live reservations against this tenant. Settling the last one snaps
    /// the in-flight accumulators back to exactly 0.0: repeated `+= ε` /
    /// `-= ε` in thread-interleaved order can strand a ±1 ulp residue, and
    /// "nothing is in flight" must mean *exactly* nothing.
    in_flight_count: usize,
}

impl TenantState {
    fn settle(&mut self, cost: &PrivacyBudget) {
        self.in_flight_count = self.in_flight_count.saturating_sub(1);
        if self.in_flight_count == 0 {
            self.in_flight_epsilon = 0.0;
            self.in_flight_delta = 0.0;
        } else {
            self.in_flight_epsilon = (self.in_flight_epsilon - cost.epsilon()).max(0.0);
            self.in_flight_delta = (self.in_flight_delta - cost.delta()).max(0.0);
        }
    }
}

impl TenantState {
    /// In-flight reservations count as spent for admission, and the rule
    /// itself is [`PrivacyBudget::admits`] — the same one
    /// [`BudgetLedger::charge`] enforces, so a reservation that was admitted
    /// can always be committed.
    fn admits(&self, cost: &PrivacyBudget) -> bool {
        PrivacyBudget::admits(
            &self.ledger.total(),
            self.ledger.spent_epsilon() + self.in_flight_epsilon,
            self.ledger.spent_delta() + self.in_flight_delta,
            cost,
        )
    }
}

/// Audit context attached to a reservation: where to log the settlement
/// events and what request/data they concern. Carried by the reservation
/// itself so *every* settlement path — commit, explicit rollback, or an
/// RAII drop from `?`-unwinding — lands in the trail without call-site
/// cooperation.
#[derive(Debug, Clone)]
pub struct AuditCtx {
    /// The trail settlement events append to.
    pub trail: Arc<AuditTrail>,
    /// Hash of the canonical request being charged (0 = none).
    pub query_hash: u64,
    /// The data version the request was admitted against.
    pub data_version: u64,
    /// The wire request id captured at submit time (0 = internal). Carried
    /// explicitly because settlement can happen on a different thread — a
    /// coalescer worker refunding a stale job must still tag the Refund
    /// event with the frame id of the connection that submitted it.
    pub request_id: u64,
}

/// A committed-or-refunded hold on a tenant's budget. Obtained from
/// [`BudgetAccountant::reserve`]; dropping it without committing refunds the
/// tenant automatically (RAII), so early returns and `?`-propagation in a
/// request handler can never leak spent budget.
#[derive(Debug)]
pub struct Reservation {
    tenant: Arc<Mutex<TenantState>>,
    cost: PrivacyBudget,
    settled: bool,
    audit: Option<AuditCtx>,
    /// When the owning service journals budget movements, the settlement
    /// paths below journal **before** they mutate the ledger (write-ahead).
    journal: Option<JournalCtx>,
}

impl Reservation {
    /// The cost this reservation holds.
    pub fn cost(&self) -> PrivacyBudget {
        self.cost
    }

    /// Converts the hold into committed spending. The query's answer may now
    /// be released to the caller.
    ///
    /// With a journal attached, the `Commit` record is made durable
    /// **before** the ledger is charged (write-ahead, under the tenant
    /// lock so per-tenant journal order equals charge order — that is
    /// what makes recovery replay bit-identical). A journal failure here
    /// settles the hold as a refund and returns
    /// [`ServiceError::DurabilityUnavailable`]: the answer must not be
    /// released, because a crash would forget the spend it represents.
    pub fn commit(mut self) -> Result<(), ServiceError> {
        let mut state = lock(&self.tenant);
        if let Some(j) = &self.journal {
            if let Err(e) =
                j.state.append_spend(RecordKind::Commit, &state.name, &self.cost, &j.meta)
            {
                state.settle(&self.cost);
                self.settled = true;
                if let Some(ctx) = &self.audit {
                    ctx.trail.record_for_request(
                        &state.name,
                        AuditKind::Refund,
                        ctx.query_hash,
                        self.cost.epsilon(),
                        self.cost.delta(),
                        ctx.data_version,
                        ctx.request_id,
                    );
                }
                return Err(e);
            }
        }
        state.settle(&self.cost);
        self.settled = true;
        // Cannot fail: `reserve` admitted spent + in-flight + cost under the
        // same tolerance the ledger charges with.
        state.ledger.charge(self.cost).map_err(ServiceError::InvalidBudget)?;
        if let Some(ctx) = &self.audit {
            ctx.trail.record_for_request(
                &state.name,
                AuditKind::Commit,
                ctx.query_hash,
                self.cost.epsilon(),
                self.cost.delta(),
                ctx.data_version,
                ctx.request_id,
            );
        }
        Ok(())
    }

    /// Returns the hold to the tenant. Equivalent to dropping the
    /// reservation, but explicit at call sites that want to document it.
    pub fn rollback(mut self) {
        self.release();
    }

    fn release(&mut self) {
        if !self.settled {
            let mut state = lock(&self.tenant);
            // Best-effort: a lost Refund record only over-states the
            // recovered spend (replay ignores refunds), so the in-memory
            // refund proceeds even if the journal is gone.
            if let Some(j) = &self.journal {
                j.state.append_note(RecordKind::Refund, &state.name, &self.cost, &j.meta);
            }
            state.settle(&self.cost);
            self.settled = true;
            if let Some(ctx) = &self.audit {
                ctx.trail.record_for_request(
                    &state.name,
                    AuditKind::Refund,
                    ctx.query_hash,
                    self.cost.epsilon(),
                    self.cost.delta(),
                    ctx.data_version,
                    ctx.request_id,
                );
            }
        }
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.release();
    }
}

/// Snapshot of one tenant's accounting state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantUsage {
    /// The registered allotment.
    pub allotment: PrivacyBudget,
    /// ε committed by answered queries.
    pub spent_epsilon: f64,
    /// δ committed by answered queries.
    pub spent_delta: f64,
    /// ε currently held by in-flight reservations.
    pub in_flight_epsilon: f64,
    /// ε still unreserved: `allotment − spent − in-flight`.
    pub remaining_epsilon: f64,
}

/// The multi-tenant budget ledger. All methods take `&self` and are safe to
/// call from any number of threads.
#[derive(Debug, Default)]
pub struct BudgetAccountant {
    tenants: RwLock<HashMap<String, Arc<Mutex<TenantState>>>>,
    /// Per-tenant `(spent_ε, spent_δ)` adopted from WAL recovery, applied
    /// when the tenant (re-)registers. Exact bit patterns — never rounded.
    recovered: Mutex<HashMap<String, (f64, f64)>>,
}

impl BudgetAccountant {
    /// An accountant with no tenants.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tenant with its lifetime `(ε, δ)` allotment. Errors if
    /// the tenant already exists — an allotment is a policy decision, not
    /// something a repeat registration should silently replace.
    pub fn register(&self, tenant: &str, allotment: PrivacyBudget) -> Result<(), ServiceError> {
        let mut map = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(tenant) {
            return Err(ServiceError::DuplicateTenant(tenant.to_string()));
        }
        let mut ledger = BudgetLedger::new(allotment);
        if let Some((eps, delta)) =
            self.recovered.lock().unwrap_or_else(|e| e.into_inner()).remove(tenant)
        {
            // Recovery replayed this tenant's journal: resume from the true
            // spend, bit-for-bit. A recovered spend above the new allotment
            // stands — admission will refuse everything, which is the
            // fail-closed posture for a ledger restored after a crash.
            ledger.restore_spent(eps, delta);
        }
        map.insert(
            tenant.to_string(),
            Arc::new(Mutex::new(TenantState {
                name: Arc::from(tenant),
                ledger,
                in_flight_epsilon: 0.0,
                in_flight_delta: 0.0,
                in_flight_count: 0,
            })),
        );
        Ok(())
    }

    /// Installs WAL-recovered per-tenant spends, to be applied as tenants
    /// register. Refuses (rather than merges) when any tenant is already
    /// registered: replaying a journal *onto* live ledgers would
    /// double-count every commit both sides saw, and there is no safe way
    /// to reconcile after the fact — recovery belongs at startup, before
    /// traffic.
    pub fn adopt_recovery(
        &self,
        recovered: &BTreeMap<String, ReplayedLedger>,
    ) -> Result<(), ServiceError> {
        let map = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        if !map.is_empty() {
            return Err(ServiceError::Internal(
                "refusing to replay a budget journal onto a non-empty accountant: \
                 recovery must run before any tenant registers"
                    .into(),
            ));
        }
        let mut pending = self.recovered.lock().unwrap_or_else(|e| e.into_inner());
        for (tenant, ledger) in recovered {
            pending.insert(tenant.clone(), (ledger.spent_epsilon, ledger.spent_delta));
        }
        Ok(())
    }

    /// Atomically reserves `cost` against the tenant's remaining budget.
    /// Refuses with [`ServiceError::BudgetExhausted`] when
    /// `spent + in-flight + cost` would exceed the allotment.
    pub fn reserve(&self, tenant: &str, cost: PrivacyBudget) -> Result<Reservation, ServiceError> {
        self.reserve_audited(tenant, cost, None)
    }

    /// [`BudgetAccountant::reserve`] with an audit context: the admission
    /// decision (Reserve or Refusal) is logged here, and the context rides
    /// the reservation so its settlement (Commit or Refund) is logged by
    /// whichever path settles it.
    pub fn reserve_audited(
        &self,
        tenant: &str,
        cost: PrivacyBudget,
        audit: Option<AuditCtx>,
    ) -> Result<Reservation, ServiceError> {
        self.reserve_journaled(tenant, cost, audit, None)
    }

    /// [`BudgetAccountant::reserve_audited`] with a budget journal: the
    /// `Reserve` record is made durable *before* any in-flight budget is
    /// held (write-ahead). In degraded mode — or if the journal fails
    /// right here — the spend is refused with
    /// [`ServiceError::DurabilityUnavailable`] and nothing changes.
    /// Refusal records are journaled best-effort (they spend nothing).
    pub fn reserve_journaled(
        &self,
        tenant: &str,
        cost: PrivacyBudget,
        audit: Option<AuditCtx>,
        journal: Option<JournalCtx>,
    ) -> Result<Reservation, ServiceError> {
        let state_arc = self.tenant_arc(tenant)?;
        let mut state = lock(&state_arc);
        if let Some(j) = &journal {
            if j.state.is_degraded() {
                j.state.note_degraded_refusal();
                return Err(ServiceError::DurabilityUnavailable {
                    reason: "journal broken by an earlier failure; restart to recover".into(),
                });
            }
        }
        if !state.admits(&cost) {
            let remaining = (state.ledger.remaining_epsilon() - state.in_flight_epsilon).max(0.0);
            if let Some(j) = &journal {
                j.state.append_note(RecordKind::Refusal, &state.name, &cost, &j.meta);
            }
            if let Some(ctx) = &audit {
                ctx.trail.record_for_request(
                    &state.name,
                    AuditKind::Refusal,
                    ctx.query_hash,
                    cost.epsilon(),
                    cost.delta(),
                    ctx.data_version,
                    ctx.request_id,
                );
            }
            return Err(ServiceError::BudgetExhausted {
                tenant: tenant.to_string(),
                requested_epsilon: cost.epsilon(),
                remaining_epsilon: remaining,
            });
        }
        if let Some(j) = &journal {
            j.state.append_spend(RecordKind::Reserve, &state.name, &cost, &j.meta)?;
        }
        state.in_flight_epsilon += cost.epsilon();
        state.in_flight_delta += cost.delta();
        state.in_flight_count += 1;
        if let Some(ctx) = &audit {
            ctx.trail.record_for_request(
                &state.name,
                AuditKind::Reserve,
                ctx.query_hash,
                cost.epsilon(),
                cost.delta(),
                ctx.data_version,
                ctx.request_id,
            );
        }
        drop(state);
        Ok(Reservation { tenant: state_arc, cost, settled: false, audit, journal })
    }

    /// The tenant's current usage snapshot.
    pub fn usage(&self, tenant: &str) -> Result<TenantUsage, ServiceError> {
        let state_arc = self.tenant_arc(tenant)?;
        let state = lock(&state_arc);
        Ok(TenantUsage {
            allotment: state.ledger.total(),
            spent_epsilon: state.ledger.spent_epsilon(),
            spent_delta: state.ledger.spent_delta(),
            in_flight_epsilon: state.in_flight_epsilon,
            remaining_epsilon: (state.ledger.remaining_epsilon() - state.in_flight_epsilon)
                .max(0.0),
        })
    }

    /// Registered tenant ids, sorted for deterministic reporting.
    pub fn tenants(&self) -> Vec<String> {
        let map = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        let mut names: Vec<String> = map.keys().cloned().collect();
        names.sort();
        names
    }

    fn tenant_arc(&self, tenant: &str) -> Result<Arc<Mutex<TenantState>>, ServiceError> {
        let map = self.tenants.read().unwrap_or_else(|e| e.into_inner());
        map.get(tenant).cloned().ok_or_else(|| ServiceError::UnknownTenant(tenant.to_string()))
    }
}

/// Locks a tenant mutex, recovering from poisoning: budget bookkeeping must
/// stay queryable even if some serving thread panicked mid-request.
fn lock(state: &Arc<Mutex<TenantState>>) -> MutexGuard<'_, TenantState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(e: f64) -> PrivacyBudget {
        PrivacyBudget::pure(e).unwrap()
    }

    #[test]
    fn reserve_commit_spends() {
        let acc = BudgetAccountant::new();
        acc.register("t", eps(1.0)).unwrap();
        let r = acc.reserve("t", eps(0.4)).unwrap();
        assert!((acc.usage("t").unwrap().in_flight_epsilon - 0.4).abs() < 1e-12);
        r.commit().unwrap();
        let u = acc.usage("t").unwrap();
        assert!((u.spent_epsilon - 0.4).abs() < 1e-12);
        assert_eq!(u.in_flight_epsilon, 0.0);
        assert!((u.remaining_epsilon - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rollback_and_drop_both_refund() {
        let acc = BudgetAccountant::new();
        acc.register("t", eps(1.0)).unwrap();
        acc.reserve("t", eps(0.7)).unwrap().rollback();
        assert!((acc.usage("t").unwrap().remaining_epsilon - 1.0).abs() < 1e-12);
        {
            let _r = acc.reserve("t", eps(0.7)).unwrap();
            // Dropped without commit — e.g. `?` unwound a failing request.
        }
        assert!((acc.usage("t").unwrap().remaining_epsilon - 1.0).abs() < 1e-12);
        assert_eq!(acc.usage("t").unwrap().spent_epsilon, 0.0);
    }

    #[test]
    fn in_flight_reservations_block_overcommit() {
        let acc = BudgetAccountant::new();
        acc.register("t", eps(1.0)).unwrap();
        let hold = acc.reserve("t", eps(0.8)).unwrap();
        // Nothing committed yet, but only 0.2 is admissible now.
        let refused = acc.reserve("t", eps(0.5));
        match refused {
            Err(ServiceError::BudgetExhausted { remaining_epsilon, .. }) => {
                assert!((remaining_epsilon - 0.2).abs() < 1e-9);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        let small = acc.reserve("t", eps(0.2)).unwrap();
        hold.commit().unwrap();
        small.commit().unwrap();
        let u = acc.usage("t").unwrap();
        assert!((u.spent_epsilon - 1.0).abs() < 1e-9);
        assert!(u.remaining_epsilon < 1e-9);
    }

    #[test]
    fn exhausted_tenant_gets_typed_refusal() {
        let acc = BudgetAccountant::new();
        acc.register("t", eps(0.5)).unwrap();
        acc.reserve("t", eps(0.5)).unwrap().commit().unwrap();
        let err = acc.reserve("t", eps(0.01)).unwrap_err();
        assert!(matches!(err, ServiceError::BudgetExhausted { .. }));
    }

    #[test]
    fn tenants_are_isolated() {
        let acc = BudgetAccountant::new();
        acc.register("a", eps(0.1)).unwrap();
        acc.register("b", eps(5.0)).unwrap();
        acc.reserve("a", eps(0.1)).unwrap().commit().unwrap();
        // Tenant a is drained; b is untouched.
        assert!(acc.reserve("a", eps(0.1)).is_err());
        assert!(acc.reserve("b", eps(1.0)).is_ok());
        assert_eq!(acc.tenants(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn unknown_and_duplicate_tenants_are_typed() {
        let acc = BudgetAccountant::new();
        assert!(matches!(acc.reserve("ghost", eps(0.1)), Err(ServiceError::UnknownTenant(_))));
        acc.register("t", eps(1.0)).unwrap();
        assert!(matches!(acc.register("t", eps(1.0)), Err(ServiceError::DuplicateTenant(_))));
    }

    #[test]
    fn pure_tenant_refuses_any_delta_cost() {
        // A tenant registered with δ = 0 holds a pure ε-DP guarantee; an
        // approximate-DP query must not erode it by a tolerance's worth.
        let acc = BudgetAccountant::new();
        acc.register("t", eps(1.0)).unwrap();
        let err = acc.reserve("t", PrivacyBudget::approx(0.1, 1e-9).unwrap()).unwrap_err();
        assert!(matches!(err, ServiceError::BudgetExhausted { .. }));
        assert!(acc.reserve("t", eps(0.1)).is_ok(), "pure costs still admitted");
    }

    #[test]
    fn delta_component_is_enforced() {
        let acc = BudgetAccountant::new();
        acc.register("t", PrivacyBudget::approx(10.0, 1e-6).unwrap()).unwrap();
        let cost = PrivacyBudget::approx(0.1, 6e-7).unwrap();
        acc.reserve("t", cost).unwrap().commit().unwrap();
        // ε easily fits; δ does not.
        let err = acc.reserve("t", cost).unwrap_err();
        assert!(matches!(err, ServiceError::BudgetExhausted { .. }));
    }
}
