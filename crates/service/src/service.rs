//! The service front door: concurrent, multi-tenant DP query answering.
//!
//! Every request runs the same pipeline:
//!
//! 1. **admission** — the request is validated against the schema; malformed
//!    queries are rejected before any budget moves ([`crate::admission`]);
//! 2. **normalization** — the query is canonicalized
//!    ([`starj_engine::canon`]); provably unsatisfiable queries are answered
//!    exactly (empty result) at zero cost, since that fact depends only on
//!    the query text, never on the data;
//! 3. **cache** — an identical prior release (same tenant, mechanism, ε,
//!    canonical request) replays for free;
//! 4. **reserve** — the tenant's accountant atomically holds the `(ε, δ)`
//!    cost, refusing with [`ServiceError::BudgetExhausted`] when the
//!    allotment cannot absorb it;
//! 5. **execute** — the DP mechanism runs; an error rolls the reservation
//!    back via RAII so a failed query spends nothing;
//! 6. **commit + release** — the cost is committed, the answer cached and
//!    returned, metrics updated.
//!
//! The service is fully `Sync`: all mutable state (ledgers, cache, metrics,
//! the RNG request counter) sits behind per-component synchronization, so
//! one `Arc<Service>` serves any number of threads. Randomness is derived
//! per request from the root seed and a monotone counter, keeping runs
//! reproducible for a fixed seed and arrival order while decorrelating
//! concurrent requests.

use crate::accountant::{BudgetAccountant, TenantUsage};
use crate::admission::{validate_query, validate_workload};
use crate::cache::{AnswerCache, CachedAnswer, Mechanism, RequestKey};
use crate::error::ServiceError;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use dp_starj::pm::PmConfig;
use dp_starj::workload::WdConfig;
use dp_starj::{pm_answer, pm_kstar, wd_answer, PredicateWorkload};
use starj_engine::{canonicalize, QueryResult, StarQuery, StarSchema};
use starj_graph::{Graph, KStarQuery};
use starj_noise::{PrivacyBudget, StarRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Predicate Mechanism configuration.
    pub pm: PmConfig,
    /// Workload Decomposition configuration.
    pub wd: WdConfig,
    /// Root seed; request RNGs derive from it by arrival index.
    pub seed: u64,
    /// Set false to disable answer replay (every request pays).
    pub cache_answers: bool,
    /// Maximum cached answers before FIFO eviction (bounds service memory).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pm: PmConfig::default(),
            wd: WdConfig::default(),
            seed: 2023,
            cache_answers: true,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// A served star-join answer.
#[derive(Debug, Clone)]
pub struct ServiceAnswer {
    /// The label of the query as submitted.
    pub name: String,
    /// The (noisy) result.
    pub result: QueryResult,
    /// The perturbed query PM actually executed — `None` for free answers
    /// to unsatisfiable queries.
    pub noisy_query: Option<StarQuery>,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant: `None` for cache hits and free
    /// answers, `Some(cost)` when fresh budget was committed.
    pub cost: Option<PrivacyBudget>,
}

/// A served workload answer (one value per workload query).
#[derive(Debug, Clone)]
pub struct WorkloadAnswer {
    /// Noisy answers in workload order.
    pub answers: Vec<f64>,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant (`None` for cache hits).
    pub cost: Option<PrivacyBudget>,
}

/// A served k-star answer.
#[derive(Debug, Clone)]
pub struct KStarAnswer {
    /// The noisy k-star count.
    pub count: f64,
    /// The perturbed range actually counted.
    pub noisy_query: KStarQuery,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant (`None` for cache hits).
    pub cost: Option<PrivacyBudget>,
}

/// A concurrent, multi-tenant DP star-join query service over one schema
/// instance (and optionally one graph, for k-star queries).
#[derive(Debug)]
pub struct Service {
    schema: Arc<StarSchema>,
    graph: Option<Arc<Graph>>,
    config: ServiceConfig,
    accountant: BudgetAccountant,
    cache: AnswerCache,
    metrics: ServiceMetrics,
    request_counter: AtomicU64,
}

impl Service {
    /// A service over `schema` with the given configuration and no tenants.
    pub fn new(schema: Arc<StarSchema>, config: ServiceConfig) -> Self {
        let cache = AnswerCache::with_capacity(config.cache_capacity);
        Service {
            schema,
            graph: None,
            config,
            accountant: BudgetAccountant::new(),
            cache,
            metrics: ServiceMetrics::default(),
            request_counter: AtomicU64::new(0),
        }
    }

    /// Attaches a graph so the service can answer k-star queries.
    pub fn with_graph(mut self, graph: Arc<Graph>) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The schema this service answers over.
    pub fn schema(&self) -> &Arc<StarSchema> {
        &self.schema
    }

    /// Registers a tenant with its lifetime `(ε, δ)` allotment.
    pub fn register_tenant(
        &self,
        tenant: &str,
        allotment: PrivacyBudget,
    ) -> Result<(), ServiceError> {
        self.accountant.register(tenant, allotment)
    }

    /// The tenant's current budget usage.
    pub fn tenant_usage(&self, tenant: &str) -> Result<TenantUsage, ServiceError> {
        self.accountant.usage(tenant)
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of answers currently cached.
    pub fn cached_answers(&self) -> usize {
        self.cache.len()
    }

    /// Answers a star-join query with the Predicate Mechanism under ε-DP,
    /// charged to `tenant`.
    pub fn pm_answer(
        &self,
        tenant: &str,
        query: &StarQuery,
        epsilon: f64,
    ) -> Result<ServiceAnswer, ServiceError> {
        let start = Instant::now();
        let cost = self.admit_cost(epsilon)?;
        self.admit(|| validate_query(&self.schema, query))?;

        let canon = canonicalize(query);
        if canon.unsatisfiable {
            // Unsatisfiable on every instance — the exact empty answer is
            // data-independent, hence free.
            let result = if canon.group_by.is_empty() {
                QueryResult::Scalar(0.0)
            } else {
                QueryResult::Groups(BTreeMap::new())
            };
            ServiceMetrics::inc(&self.metrics.free_answers);
            return Ok(self.serve_pm(start, query, result, None, false, None));
        }

        let key = RequestKey::Single(canon.clone());
        if let Some(hit) = self.cache_get(tenant, Mechanism::Pm, epsilon, &key) {
            return Ok(self.serve_pm(start, query, hit.result, hit.noisy_query, true, None));
        }

        let reservation = self.reserve(tenant, cost)?;
        let mut rng = self.request_rng();
        // The canonical form is what executes: presentation-equivalent
        // queries must spend identically, not just cache identically.
        let executable = canon.to_query(&query.name);
        let answer = match pm_answer(&self.schema, &executable, epsilon, &self.config.pm, &mut rng)
        {
            Ok(a) => a,
            Err(e) => {
                // Reservation drops here → automatic refund.
                ServiceMetrics::inc(&self.metrics.mechanism_failures);
                return Err(e.into());
            }
        };
        reservation.commit()?;

        if self.config.cache_answers {
            self.cache.insert(
                tenant,
                Mechanism::Pm,
                epsilon,
                key,
                CachedAnswer {
                    result: answer.result.clone(),
                    workload_answers: Vec::new(),
                    noisy_query: Some(answer.noisy_query.clone()),
                    noisy_kstar: None,
                    original_cost: cost,
                },
            );
        }
        Ok(self.serve_pm(start, query, answer.result, Some(answer.noisy_query), false, Some(cost)))
    }

    /// Answers a counting-query workload with Workload Decomposition under
    /// ε-DP, charged to `tenant`.
    pub fn wd_answer(
        &self,
        tenant: &str,
        workload: &PredicateWorkload,
        epsilon: f64,
    ) -> Result<WorkloadAnswer, ServiceError> {
        let start = Instant::now();
        let cost = self.admit_cost(epsilon)?;
        self.admit(|| validate_workload(&self.schema, workload))?;

        let key =
            RequestKey::Workload(workload.to_star_queries().iter().map(canonicalize).collect());
        if let Some(hit) = self.cache_get(tenant, Mechanism::Wd, epsilon, &key) {
            self.served(start);
            return Ok(WorkloadAnswer { answers: hit.workload_answers, cached: true, cost: None });
        }

        let reservation = self.reserve(tenant, cost)?;
        let mut rng = self.request_rng();
        let answers = match wd_answer(&self.schema, workload, epsilon, &self.config.wd, &mut rng) {
            Ok(a) => a,
            Err(e) => {
                ServiceMetrics::inc(&self.metrics.mechanism_failures);
                return Err(e.into());
            }
        };
        reservation.commit()?;

        if self.config.cache_answers {
            self.cache.insert(
                tenant,
                Mechanism::Wd,
                epsilon,
                key,
                CachedAnswer {
                    result: QueryResult::Scalar(0.0),
                    workload_answers: answers.clone(),
                    noisy_query: None,
                    noisy_kstar: None,
                    original_cost: cost,
                },
            );
        }
        self.served(start);
        Ok(WorkloadAnswer { answers, cached: false, cost: Some(cost) })
    }

    /// Answers a k-star counting query with PM under ε-DP, charged to
    /// `tenant`. Requires a service built [`Service::with_graph`].
    pub fn kstar_answer(
        &self,
        tenant: &str,
        query: &KStarQuery,
        epsilon: f64,
    ) -> Result<KStarAnswer, ServiceError> {
        let start = Instant::now();
        let cost = self.admit_cost(epsilon)?;
        let graph = self.graph.as_ref().ok_or(ServiceError::NoGraph)?;
        self.admit(|| {
            if query.lo > query.hi || query.hi >= graph.num_nodes() {
                Err(ServiceError::InvalidQuery(starj_engine::EngineError::InvalidConstraint(
                    format!(
                        "k-star range [{}, {}] invalid for a {}-node graph",
                        query.lo,
                        query.hi,
                        graph.num_nodes()
                    ),
                )))
            } else {
                Ok(())
            }
        })?;

        let key = RequestKey::KStar(query.k, query.lo, query.hi);
        if let Some(hit) = self.cache_get(tenant, Mechanism::KStar, epsilon, &key) {
            self.served(start);
            let (k, lo, hi) = hit.noisy_kstar.unwrap_or((query.k, query.lo, query.hi));
            return Ok(KStarAnswer {
                count: hit.result.scalar().map_err(ServiceError::InvalidQuery)?,
                noisy_query: KStarQuery { k, lo, hi },
                cached: true,
                cost: None,
            });
        }

        let reservation = self.reserve(tenant, cost)?;
        let mut rng = self.request_rng();
        let (count, noisy_query) =
            match pm_kstar(graph, query, epsilon, self.config.pm.policy, &mut rng) {
                Ok(a) => a,
                Err(e) => {
                    ServiceMetrics::inc(&self.metrics.mechanism_failures);
                    return Err(e.into());
                }
            };
        reservation.commit()?;

        if self.config.cache_answers {
            self.cache.insert(
                tenant,
                Mechanism::KStar,
                epsilon,
                key,
                CachedAnswer {
                    result: QueryResult::Scalar(count),
                    workload_answers: Vec::new(),
                    noisy_query: None,
                    noisy_kstar: Some((noisy_query.k, noisy_query.lo, noisy_query.hi)),
                    original_cost: cost,
                },
            );
        }
        self.served(start);
        Ok(KStarAnswer { count, noisy_query, cached: false, cost: Some(cost) })
    }

    // ---- pipeline helpers -------------------------------------------------

    fn admit_cost(&self, epsilon: f64) -> Result<PrivacyBudget, ServiceError> {
        PrivacyBudget::pure(epsilon).map_err(|e| {
            ServiceMetrics::inc(&self.metrics.admission_rejections);
            ServiceError::InvalidBudget(e)
        })
    }

    fn admit(&self, check: impl FnOnce() -> Result<(), ServiceError>) -> Result<(), ServiceError> {
        check().inspect_err(|_| {
            ServiceMetrics::inc(&self.metrics.admission_rejections);
        })
    }

    fn reserve(
        &self,
        tenant: &str,
        cost: PrivacyBudget,
    ) -> Result<crate::accountant::Reservation, ServiceError> {
        self.accountant.reserve(tenant, cost).inspect_err(|e| {
            if matches!(e, ServiceError::BudgetExhausted { .. }) {
                ServiceMetrics::inc(&self.metrics.budget_refusals);
            }
        })
    }

    fn cache_get(
        &self,
        tenant: &str,
        mechanism: Mechanism,
        epsilon: f64,
        key: &RequestKey,
    ) -> Option<CachedAnswer> {
        if !self.config.cache_answers {
            return None;
        }
        let hit = self.cache.get(tenant, mechanism, epsilon, key)?;
        ServiceMetrics::inc(&self.metrics.cache_hits);
        Some(hit)
    }

    fn serve_pm(
        &self,
        start: Instant,
        query: &StarQuery,
        result: QueryResult,
        noisy_query: Option<StarQuery>,
        cached: bool,
        cost: Option<PrivacyBudget>,
    ) -> ServiceAnswer {
        self.served(start);
        ServiceAnswer { name: query.name.clone(), result, noisy_query, cached, cost }
    }

    fn served(&self, start: Instant) {
        ServiceMetrics::inc(&self.metrics.queries_served);
        self.metrics.latency.record(start.elapsed());
    }

    fn request_rng(&self) -> StarRng {
        let index = self.request_counter.fetch_add(1, Ordering::Relaxed);
        StarRng::from_seed(self.config.seed).derive_index(index)
    }
}
