//! The service front door: concurrent, multi-tenant DP query answering.
//!
//! Every request runs the same pipeline:
//!
//! 1. **admission** — the request is validated against the schema; malformed
//!    queries are rejected before any budget moves ([`crate::admission`]);
//! 2. **normalization** — the query is canonicalized
//!    ([`starj_engine::canon`]); provably unsatisfiable queries are answered
//!    exactly (empty result) at zero cost, since that fact depends only on
//!    the query text, never on the data;
//! 3. **cache** — an identical prior release (same tenant, mechanism, ε,
//!    canonical request) replays for free;
//! 4. **reserve** — the tenant's accountant atomically holds the `(ε, δ)`
//!    cost, refusing with [`ServiceError::BudgetExhausted`] when the
//!    allotment cannot absorb it;
//! 5. **execute** — the DP mechanism runs; an error rolls the reservation
//!    back via RAII so a failed query spends nothing;
//! 6. **commit + release** — the cost is committed, the answer cached and
//!    returned, metrics updated.
//!
//! The service is fully `Sync`: all mutable state (ledgers, cache, metrics,
//! the RNG request counter) sits behind per-component synchronization, so
//! one `Arc<Service>` serves any number of threads. Randomness is derived
//! per request from the root seed and a monotone counter, keeping runs
//! reproducible for a fixed seed and arrival order while decorrelating
//! concurrent requests.

use crate::accountant::{BudgetAccountant, TenantUsage};
use crate::admission::{validate_query, validate_workload};
use crate::cache::{AnswerCache, CachedAnswer, Mechanism, RequestKey};
use crate::error::ServiceError;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use dp_starj::pm::PmConfig;
use dp_starj::workload::WdConfig;
use dp_starj::{pm_answer, pm_kstar, wd_answer, PredicateWorkload};
use starj_engine::{
    canonicalize, execute_batch_with, QueryResult, ScanOptions, StarQuery, StarSchema,
};
use starj_graph::{Graph, KStarQuery};
use starj_noise::{PrivacyBudget, StarRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Predicate Mechanism configuration.
    pub pm: PmConfig,
    /// Workload Decomposition configuration.
    pub wd: WdConfig,
    /// Root seed; request RNGs derive from it by arrival index.
    pub seed: u64,
    /// Set false to disable answer replay (every request pays).
    pub cache_answers: bool,
    /// Maximum cached answers before FIFO eviction (bounds service memory).
    pub cache_capacity: usize,
    /// Fact-scan worker threads for mechanism execution (1 = scan on the
    /// request thread). Values > 1 are propagated into the PM/WD scan
    /// options at service construction; at the default of 1, explicitly
    /// configured `pm.scan` / `wd.scan` options are left untouched.
    pub scan_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pm: PmConfig::default(),
            wd: WdConfig::default(),
            seed: 2023,
            cache_answers: true,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            scan_threads: 1,
        }
    }
}

/// A served star-join answer.
#[derive(Debug, Clone)]
pub struct ServiceAnswer {
    /// The label of the query as submitted.
    pub name: String,
    /// The (noisy) result.
    pub result: QueryResult,
    /// The perturbed query PM actually executed — `None` for free answers
    /// to unsatisfiable queries.
    pub noisy_query: Option<StarQuery>,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant: `None` for cache hits and free
    /// answers, `Some(cost)` when fresh budget was committed.
    pub cost: Option<PrivacyBudget>,
}

/// A served fused-batch answer: per-member answers plus the batch-level
/// charge (the whole batch reserves, executes in one fact scan, and
/// commits as a unit).
#[derive(Debug, Clone)]
pub struct BatchAnswer {
    /// Per-query answers in submission order. Member `cost` fields are
    /// `None` — the batch-level [`BatchAnswer::cost`] is the charge.
    pub answers: Vec<ServiceAnswer>,
    /// True iff the whole batch replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant (`None` for cache hits and
    /// all-free batches).
    pub cost: Option<PrivacyBudget>,
}

/// A served workload answer (one value per workload query).
#[derive(Debug, Clone)]
pub struct WorkloadAnswer {
    /// Noisy answers in workload order.
    pub answers: Vec<f64>,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant (`None` for cache hits).
    pub cost: Option<PrivacyBudget>,
}

/// A served k-star answer.
#[derive(Debug, Clone)]
pub struct KStarAnswer {
    /// The noisy k-star count.
    pub count: f64,
    /// The perturbed range actually counted.
    pub noisy_query: KStarQuery,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant (`None` for cache hits).
    pub cost: Option<PrivacyBudget>,
}

/// A concurrent, multi-tenant DP star-join query service over one schema
/// instance (and optionally one graph, for k-star queries).
#[derive(Debug)]
pub struct Service {
    schema: Arc<StarSchema>,
    graph: Option<Arc<Graph>>,
    config: ServiceConfig,
    accountant: BudgetAccountant,
    cache: AnswerCache,
    metrics: ServiceMetrics,
    request_counter: AtomicU64,
}

impl Service {
    /// A service over `schema` with the given configuration and no tenants.
    pub fn new(schema: Arc<StarSchema>, mut config: ServiceConfig) -> Self {
        // `scan_threads > 1` propagates into the mechanism configs; at the
        // default of 1 any explicitly-set `pm.scan` / `wd.scan` is honored.
        if config.scan_threads > 1 {
            let scan = ScanOptions::parallel(config.scan_threads);
            config.pm.scan = scan;
            config.wd.scan = scan;
        }
        let cache = AnswerCache::with_capacity(config.cache_capacity);
        Service {
            schema,
            graph: None,
            config,
            accountant: BudgetAccountant::new(),
            cache,
            metrics: ServiceMetrics::default(),
            request_counter: AtomicU64::new(0),
        }
    }

    /// Attaches a graph so the service can answer k-star queries.
    pub fn with_graph(mut self, graph: Arc<Graph>) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The schema this service answers over.
    pub fn schema(&self) -> &Arc<StarSchema> {
        &self.schema
    }

    /// Registers a tenant with its lifetime `(ε, δ)` allotment.
    pub fn register_tenant(
        &self,
        tenant: &str,
        allotment: PrivacyBudget,
    ) -> Result<(), ServiceError> {
        self.accountant.register(tenant, allotment)
    }

    /// The tenant's current budget usage.
    pub fn tenant_usage(&self, tenant: &str) -> Result<TenantUsage, ServiceError> {
        self.accountant.usage(tenant)
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of answers currently cached.
    pub fn cached_answers(&self) -> usize {
        self.cache.len()
    }

    /// Answers a star-join query with the Predicate Mechanism under ε-DP,
    /// charged to `tenant`.
    pub fn pm_answer(
        &self,
        tenant: &str,
        query: &StarQuery,
        epsilon: f64,
    ) -> Result<ServiceAnswer, ServiceError> {
        let start = Instant::now();
        let cost = self.admit_cost(epsilon)?;
        self.admit(|| validate_query(&self.schema, query))?;

        let canon = canonicalize(query);
        if canon.unsatisfiable {
            // Unsatisfiable on every instance — the exact empty answer is
            // data-independent, hence free.
            let result = if canon.group_by.is_empty() {
                QueryResult::Scalar(0.0)
            } else {
                QueryResult::Groups(BTreeMap::new())
            };
            ServiceMetrics::inc(&self.metrics.free_answers);
            return Ok(self.serve_pm(start, query, result, None, false, None));
        }

        let key = RequestKey::Single(canon.clone());
        if let Some(hit) = self.cache_get(tenant, Mechanism::Pm, epsilon, &key) {
            return Ok(self.serve_pm(start, query, hit.result, hit.noisy_query, true, None));
        }

        let reservation = self.reserve(tenant, cost)?;
        let mut rng = self.request_rng();
        // The canonical form is what executes: presentation-equivalent
        // queries must spend identically, not just cache identically.
        let executable = canon.to_query(&query.name);
        let answer = match pm_answer(&self.schema, &executable, epsilon, &self.config.pm, &mut rng)
        {
            Ok(a) => a,
            Err(e) => {
                // Reservation drops here → automatic refund.
                ServiceMetrics::inc(&self.metrics.mechanism_failures);
                return Err(e.into());
            }
        };
        reservation.commit()?;

        if self.config.cache_answers {
            self.cache.insert(
                tenant,
                Mechanism::Pm,
                epsilon,
                key,
                CachedAnswer {
                    result: answer.result.clone(),
                    workload_answers: Vec::new(),
                    noisy_query: Some(answer.noisy_query.clone()),
                    batch: Vec::new(),
                    noisy_kstar: None,
                    original_cost: cost,
                },
            );
        }
        Ok(self.serve_pm(start, query, answer.result, Some(answer.noisy_query), false, Some(cost)))
    }

    /// Answers a batch of star-join queries with the Predicate Mechanism in
    /// **one fused fact scan**, charged to `tenant` as a unit.
    ///
    /// The total budget `epsilon` splits evenly across the satisfiable
    /// members (sequential composition, as in the PM-per-query workload
    /// baseline); provably unsatisfiable members are answered exactly for
    /// free and do not dilute the split. Perturbation stays per-query —
    /// each member draws its own noise exactly as [`Service::pm_answer`]
    /// would — only the *answering* scan is shared, which is privacy-free
    /// post-processing of the already-noisy queries.
    pub fn pm_batch_answer(
        &self,
        tenant: &str,
        queries: &[StarQuery],
        epsilon: f64,
    ) -> Result<BatchAnswer, ServiceError> {
        let start = Instant::now();
        let cost = self.admit_cost(epsilon)?;
        if queries.is_empty() {
            return Ok(BatchAnswer { answers: Vec::new(), cached: false, cost: None });
        }
        for q in queries {
            self.admit(|| validate_query(&self.schema, q))?;
        }

        let canons: Vec<_> = queries.iter().map(canonicalize).collect();
        let key = RequestKey::Workload(canons.clone());
        if let Some(hit) = self.cache_get(tenant, Mechanism::PmBatch, epsilon, &key) {
            self.served(start);
            let answers = queries
                .iter()
                .zip(hit.batch)
                .map(|(q, (result, noisy_query))| ServiceAnswer {
                    name: q.name.clone(),
                    result,
                    noisy_query,
                    cached: true,
                    cost: None,
                })
                .collect();
            return Ok(BatchAnswer { answers, cached: true, cost: None });
        }

        // Free members (unsatisfiable on every instance) answer exactly and
        // are excluded from the budget split.
        let satisfiable: Vec<usize> =
            (0..queries.len()).filter(|&i| !canons[i].unsatisfiable).collect();
        let mut batch: Vec<(QueryResult, Option<StarQuery>)> = canons
            .iter()
            .map(|c| {
                let empty = if c.group_by.is_empty() {
                    QueryResult::Scalar(0.0)
                } else {
                    QueryResult::Groups(BTreeMap::new())
                };
                (empty, None)
            })
            .collect();

        let charged = if satisfiable.is_empty() {
            ServiceMetrics::add(&self.metrics.free_answers, queries.len() as u64);
            None
        } else {
            let reservation = self.reserve(tenant, cost)?;
            let mut rng = self.request_rng();
            let eps_each = epsilon / satisfiable.len() as f64;
            // Phase 1: per-member perturbation (the private step).
            let noisy: Vec<StarQuery> = match satisfiable
                .iter()
                .map(|&i| {
                    dp_starj::pm::perturb_query(
                        &self.schema,
                        &canons[i].to_query(&queries[i].name),
                        eps_each,
                        &self.config.pm,
                        &mut rng,
                    )
                })
                .collect::<Result<_, _>>()
            {
                Ok(n) => n,
                Err(e) => {
                    ServiceMetrics::inc(&self.metrics.mechanism_failures);
                    return Err(e.into());
                }
            };
            // Phase 2: one fused scan answers every noisy member.
            let results = match execute_batch_with(&self.schema, &noisy, self.config.pm.scan) {
                Ok(r) => r,
                Err(e) => {
                    ServiceMetrics::inc(&self.metrics.mechanism_failures);
                    return Err(ServiceError::InvalidQuery(e));
                }
            };
            reservation.commit()?;
            // Metrics only after the batch actually commits — a refused or
            // failed request must not count its free members as served.
            ServiceMetrics::add(
                &self.metrics.free_answers,
                (queries.len() - satisfiable.len()) as u64,
            );
            ServiceMetrics::inc(&self.metrics.fused_scans);
            ServiceMetrics::add(&self.metrics.fused_queries_saved, satisfiable.len() as u64 - 1);
            for ((&i, result), noisy_query) in satisfiable.iter().zip(results).zip(noisy) {
                batch[i] = (result, Some(noisy_query));
            }
            Some(cost)
        };

        // All-free batches are not cached (consistent with `pm_answer`'s
        // free path): recomputing them costs no budget, and caching one
        // would record an `original_cost` that was never charged.
        if self.config.cache_answers && charged.is_some() {
            self.cache.insert(
                tenant,
                Mechanism::PmBatch,
                epsilon,
                key,
                CachedAnswer {
                    result: QueryResult::Scalar(0.0),
                    workload_answers: Vec::new(),
                    noisy_query: None,
                    batch: batch.clone(),
                    noisy_kstar: None,
                    original_cost: cost,
                },
            );
        }
        self.served(start);
        let answers = queries
            .iter()
            .zip(batch)
            .map(|(q, (result, noisy_query))| ServiceAnswer {
                name: q.name.clone(),
                result,
                noisy_query,
                cached: false,
                cost: None,
            })
            .collect();
        Ok(BatchAnswer { answers, cached: false, cost: charged })
    }

    /// Answers a counting-query workload with Workload Decomposition under
    /// ε-DP, charged to `tenant`.
    pub fn wd_answer(
        &self,
        tenant: &str,
        workload: &PredicateWorkload,
        epsilon: f64,
    ) -> Result<WorkloadAnswer, ServiceError> {
        let start = Instant::now();
        let cost = self.admit_cost(epsilon)?;
        self.admit(|| validate_workload(&self.schema, workload))?;

        let key =
            RequestKey::Workload(workload.to_star_queries().iter().map(canonicalize).collect());
        if let Some(hit) = self.cache_get(tenant, Mechanism::Wd, epsilon, &key) {
            self.served(start);
            return Ok(WorkloadAnswer { answers: hit.workload_answers, cached: true, cost: None });
        }

        let reservation = self.reserve(tenant, cost)?;
        let mut rng = self.request_rng();
        let answers = match wd_answer(&self.schema, workload, epsilon, &self.config.wd, &mut rng) {
            Ok(a) => a,
            Err(e) => {
                ServiceMetrics::inc(&self.metrics.mechanism_failures);
                return Err(e.into());
            }
        };
        reservation.commit()?;
        // WD answers all `l` reconstructed rows through one fused scan.
        ServiceMetrics::inc(&self.metrics.fused_scans);
        ServiceMetrics::add(
            &self.metrics.fused_queries_saved,
            workload.len().saturating_sub(1) as u64,
        );

        if self.config.cache_answers {
            self.cache.insert(
                tenant,
                Mechanism::Wd,
                epsilon,
                key,
                CachedAnswer {
                    result: QueryResult::Scalar(0.0),
                    workload_answers: answers.clone(),
                    noisy_query: None,
                    batch: Vec::new(),
                    noisy_kstar: None,
                    original_cost: cost,
                },
            );
        }
        self.served(start);
        Ok(WorkloadAnswer { answers, cached: false, cost: Some(cost) })
    }

    /// Answers a k-star counting query with PM under ε-DP, charged to
    /// `tenant`. Requires a service built [`Service::with_graph`].
    pub fn kstar_answer(
        &self,
        tenant: &str,
        query: &KStarQuery,
        epsilon: f64,
    ) -> Result<KStarAnswer, ServiceError> {
        let start = Instant::now();
        let cost = self.admit_cost(epsilon)?;
        let graph = self.graph.as_ref().ok_or(ServiceError::NoGraph)?;
        self.admit(|| {
            if query.lo > query.hi || query.hi >= graph.num_nodes() {
                Err(ServiceError::InvalidQuery(starj_engine::EngineError::InvalidConstraint(
                    format!(
                        "k-star range [{}, {}] invalid for a {}-node graph",
                        query.lo,
                        query.hi,
                        graph.num_nodes()
                    ),
                )))
            } else {
                Ok(())
            }
        })?;

        let key = RequestKey::KStar(query.k, query.lo, query.hi);
        if let Some(hit) = self.cache_get(tenant, Mechanism::KStar, epsilon, &key) {
            self.served(start);
            let (k, lo, hi) = hit.noisy_kstar.unwrap_or((query.k, query.lo, query.hi));
            return Ok(KStarAnswer {
                count: hit.result.scalar().map_err(ServiceError::InvalidQuery)?,
                noisy_query: KStarQuery { k, lo, hi },
                cached: true,
                cost: None,
            });
        }

        let reservation = self.reserve(tenant, cost)?;
        let mut rng = self.request_rng();
        let (count, noisy_query) =
            match pm_kstar(graph, query, epsilon, self.config.pm.policy, &mut rng) {
                Ok(a) => a,
                Err(e) => {
                    ServiceMetrics::inc(&self.metrics.mechanism_failures);
                    return Err(e.into());
                }
            };
        reservation.commit()?;

        if self.config.cache_answers {
            self.cache.insert(
                tenant,
                Mechanism::KStar,
                epsilon,
                key,
                CachedAnswer {
                    result: QueryResult::Scalar(count),
                    workload_answers: Vec::new(),
                    noisy_query: None,
                    batch: Vec::new(),
                    noisy_kstar: Some((noisy_query.k, noisy_query.lo, noisy_query.hi)),
                    original_cost: cost,
                },
            );
        }
        self.served(start);
        Ok(KStarAnswer { count, noisy_query, cached: false, cost: Some(cost) })
    }

    // ---- pipeline helpers -------------------------------------------------

    fn admit_cost(&self, epsilon: f64) -> Result<PrivacyBudget, ServiceError> {
        PrivacyBudget::pure(epsilon).map_err(|e| {
            ServiceMetrics::inc(&self.metrics.admission_rejections);
            ServiceError::InvalidBudget(e)
        })
    }

    fn admit(&self, check: impl FnOnce() -> Result<(), ServiceError>) -> Result<(), ServiceError> {
        check().inspect_err(|_| {
            ServiceMetrics::inc(&self.metrics.admission_rejections);
        })
    }

    fn reserve(
        &self,
        tenant: &str,
        cost: PrivacyBudget,
    ) -> Result<crate::accountant::Reservation, ServiceError> {
        self.accountant.reserve(tenant, cost).inspect_err(|e| {
            if matches!(e, ServiceError::BudgetExhausted { .. }) {
                ServiceMetrics::inc(&self.metrics.budget_refusals);
            }
        })
    }

    fn cache_get(
        &self,
        tenant: &str,
        mechanism: Mechanism,
        epsilon: f64,
        key: &RequestKey,
    ) -> Option<CachedAnswer> {
        if !self.config.cache_answers {
            return None;
        }
        let hit = self.cache.get(tenant, mechanism, epsilon, key)?;
        ServiceMetrics::inc(&self.metrics.cache_hits);
        Some(hit)
    }

    fn serve_pm(
        &self,
        start: Instant,
        query: &StarQuery,
        result: QueryResult,
        noisy_query: Option<StarQuery>,
        cached: bool,
        cost: Option<PrivacyBudget>,
    ) -> ServiceAnswer {
        self.served(start);
        ServiceAnswer { name: query.name.clone(), result, noisy_query, cached, cost }
    }

    fn served(&self, start: Instant) {
        ServiceMetrics::inc(&self.metrics.queries_served);
        self.metrics.latency.record(start.elapsed());
    }

    fn request_rng(&self) -> StarRng {
        let index = self.request_counter.fetch_add(1, Ordering::Relaxed);
        StarRng::from_seed(self.config.seed).derive_index(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starj_engine::{Column, Dimension, Domain, Predicate, Table};

    fn toy_schema() -> Arc<StarSchema> {
        let color = Domain::numeric("color", 4).unwrap();
        let dim = Table::new(
            "D",
            vec![
                Column::key("pk", vec![0, 1, 2, 3]),
                Column::attr("color", color, vec![0, 1, 2, 3]),
            ],
        )
        .unwrap();
        let fact = Table::new(
            "F",
            vec![
                Column::key("fk", vec![0, 0, 1, 2, 3, 3]),
                Column::measure("qty", vec![1, 2, 3, 4, 5, 6]),
            ],
        )
        .unwrap();
        Arc::new(StarSchema::new(fact, vec![Dimension::new(dim, "pk", "fk")]).unwrap())
    }

    fn batch_queries() -> Vec<StarQuery> {
        (0..4u32)
            .map(|v| StarQuery::count(format!("b{v}")).with(Predicate::point("D", "color", v)))
            .collect()
    }

    #[test]
    fn batch_charges_once_and_fuses_the_scan() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
        let queries = batch_queries();

        let scans_before = starj_engine::fact_scan_count();
        let answer = service.pm_batch_answer("t", &queries, 1.0).unwrap();
        assert_eq!(starj_engine::fact_scan_count() - scans_before, 1, "4 queries, 1 scan");
        assert_eq!(answer.answers.len(), 4);
        assert!(!answer.cached);
        let cost = answer.cost.expect("fresh batch pays");
        assert!((cost.epsilon() - 1.0).abs() < 1e-12, "one ε charge for the whole batch");
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 1.0).abs() < 1e-12);
        for a in &answer.answers {
            assert!(a.noisy_query.is_some(), "every member was perturbed");
            assert!(a.result.scalar().unwrap() >= 0.0);
        }
        let m = service.metrics();
        assert_eq!(m.fused_scans, 1);
        assert_eq!(m.fused_queries_saved, 3);
    }

    #[test]
    fn batch_replays_from_cache_for_free() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
        let queries = batch_queries();
        let first = service.pm_batch_answer("t", &queries, 1.0).unwrap();
        let replay = service.pm_batch_answer("t", &queries, 1.0).unwrap();
        assert!(replay.cached);
        assert!(replay.cost.is_none());
        for (a, b) in first.answers.iter().zip(&replay.answers) {
            assert_eq!(a.result, b.result, "replayed answers are byte-identical");
            assert_eq!(a.noisy_query, b.noisy_query);
        }
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 1.0).abs() < 1e-12);
        assert_eq!(service.metrics().cache_hits, 1);
    }

    #[test]
    fn unsatisfiable_members_are_free_and_do_not_dilute_the_split() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
        // Two contradictory predicates on one attribute: unsatisfiable.
        let dead = StarQuery::count("dead")
            .with(Predicate::point("D", "color", 0))
            .with(Predicate::point("D", "color", 3));
        let live = StarQuery::count("live").with(Predicate::range("D", "color", 0, 3));
        let answer = service.pm_batch_answer("t", &[dead.clone(), live], 1.0).unwrap();
        assert_eq!(answer.answers[0].result.scalar().unwrap(), 0.0);
        assert!(answer.answers[0].noisy_query.is_none(), "free member never executed");
        assert!(answer.answers[1].noisy_query.is_some());
        assert_eq!(service.metrics().free_answers, 1);

        // An all-unsatisfiable batch is entirely free and is NOT cached
        // (there is no paid release to replay).
        let cached_before = service.cached_answers();
        let free = service.pm_batch_answer("t", &[dead], 1.0).unwrap();
        assert!(free.cost.is_none());
        assert_eq!(service.cached_answers(), cached_before, "free batches are not cached");
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_a_free_no_op_but_still_validates_epsilon() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(1.0).unwrap()).unwrap();
        let answer = service.pm_batch_answer("t", &[], 0.5).unwrap();
        assert!(answer.answers.is_empty());
        assert!(answer.cost.is_none());
        assert_eq!(service.tenant_usage("t").unwrap().spent_epsilon, 0.0);
        // A malformed budget is refused even with nothing to answer, like
        // every other endpoint.
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                service.pm_batch_answer("t", &[], bad),
                Err(ServiceError::InvalidBudget(_))
            ));
        }
    }

    #[test]
    fn explicit_mechanism_scan_options_survive_default_scan_threads() {
        let mut config = ServiceConfig::default();
        config.pm.scan = ScanOptions::parallel(8);
        let service = Service::new(toy_schema(), config);
        assert_eq!(service.config.pm.scan.threads, 8, "scan_threads=1 must not clobber pm.scan");
        let threaded = ServiceConfig { scan_threads: 4, ..ServiceConfig::default() };
        let service = Service::new(toy_schema(), threaded);
        assert_eq!(service.config.pm.scan.threads, 4);
        assert_eq!(service.config.wd.scan.threads, 4);
    }

    #[test]
    fn refused_batch_counts_no_free_answers() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(0.1).unwrap()).unwrap();
        let dead = StarQuery::count("dead")
            .with(Predicate::point("D", "color", 0))
            .with(Predicate::point("D", "color", 3));
        let live = StarQuery::count("live").with(Predicate::point("D", "color", 1));
        // ε = 1.0 exceeds the 0.1 allotment: the whole batch is refused and
        // its unsatisfiable member must not be recorded as served.
        assert!(matches!(
            service.pm_batch_answer("t", &[dead, live], 1.0),
            Err(ServiceError::BudgetExhausted { .. })
        ));
        let m = service.metrics();
        assert_eq!(m.free_answers, 0);
        assert_eq!(m.fused_scans, 0);
        assert_eq!(m.budget_refusals, 1);
    }

    #[test]
    fn batch_admission_rejects_malformed_members_before_any_charge() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(1.0).unwrap()).unwrap();
        let queries = vec![
            StarQuery::count("ok").with(Predicate::point("D", "color", 1)),
            StarQuery::count("bad").with(Predicate::point("Ghost", "color", 1)),
        ];
        assert!(service.pm_batch_answer("t", &queries, 0.5).is_err());
        assert_eq!(service.tenant_usage("t").unwrap().spent_epsilon, 0.0, "nothing charged");
        assert_eq!(service.metrics().admission_rejections, 1);
    }

    #[test]
    fn scan_threads_knob_propagates_and_answers_match() {
        let queries = batch_queries();
        let run = |threads: usize| {
            let config = ServiceConfig { scan_threads: threads, ..ServiceConfig::default() };
            let service = Service::new(toy_schema(), config);
            service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
            service
                .pm_batch_answer("t", &queries, 1.0)
                .unwrap()
                .answers
                .iter()
                .map(|a| a.result.scalar().unwrap())
                .collect::<Vec<f64>>()
        };
        // Same seed and arrival order ⇒ identical noise; the thread count
        // must not change any answer.
        assert_eq!(run(1), run(4));
    }
}
