//! The service front door: concurrent, multi-tenant DP query answering.
//!
//! Every request runs the same pipeline:
//!
//! 1. **admission** — the request is validated against the schema; malformed
//!    queries are rejected before any budget moves ([`crate::admission`]);
//! 2. **normalization** — the query is canonicalized
//!    ([`starj_engine::canon`]); provably unsatisfiable queries are answered
//!    exactly (empty result) at zero cost, since that fact depends only on
//!    the query text, never on the data;
//! 3. **cache** — an identical prior release (same tenant, mechanism, ε,
//!    data version, canonical request) replays for free;
//! 4. **reserve** — the tenant's accountant atomically holds the `(ε, δ)`
//!    cost, refusing with [`ServiceError::BudgetExhausted`] when the
//!    allotment cannot absorb it;
//! 5. **perturb** — the request's private randomness is drawn and applied
//!    (PM's noisy query, WD's reconstructed weighted rows), still on the
//!    caller's thread in arrival order;
//! 6. **execute** — the fixed noisy artifact is evaluated against the data.
//!    With [`ServiceConfig::coalesce`] enabled this step parks in the
//!    group-commit queue ([`crate::coalesce`]) and shares one fused fact
//!    scan with whatever concurrent traffic drained alongside it —
//!    evaluation is post-processing, so fusing it is privacy-free;
//! 7. **commit + release** — the cost is committed, the answer cached and
//!    returned, metrics updated. An execution error instead rolls the
//!    reservation back via RAII, so a failed query spends nothing.
//!
//! The service is fully `Sync`: all mutable state (ledgers, caches, metrics,
//! the RNG request counter, the swappable schema) sits behind per-component
//! synchronization, so one `Arc<Service>` serves any number of threads.
//! Randomness is derived per request from the root seed and a monotone
//! counter, keeping runs reproducible for a fixed seed and arrival order
//! while decorrelating concurrent requests.
//!
//! [`Service::refresh_schema`] swaps the data for a new instance: the data
//! version bumps, and both the answer cache and the W-histogram cache key on
//! that version, so no pre-refresh release or histogram can ever serve a
//! post-refresh request.

use crate::accountant::{AuditCtx, BudgetAccountant, TenantUsage};
use crate::admission::{min_frequency_check, validate_query, validate_workload};
use crate::cache::{AnswerCache, CachedAnswer, Mechanism, RequestKey};
use crate::coalesce::{pending_pair, Coalescer, Job, PmJob, Submitted, WdJob};
use crate::durable::{DurableConfig, DurableState, DurableStatus, JournalCtx, RecordMeta};
use crate::error::ServiceError;
use crate::explain::ExplainReport;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::wcache::{WKey, WeightHistogramCache};
use dp_starj::pm::PmConfig;
use dp_starj::workload::WdConfig;
use dp_starj::{pm_kstar, wd_reconstruct, workload_axes, CoreError, PredicateWorkload};
use starj_durable::{BudgetWal, FaultPlan};
use starj_engine::{
    canonicalize, execute_batch_with, execute_weighted_batch_with, execute_with, Agg, QueryResult,
    StarQuery, StarSchema, WeightHistogram, WeightedQuery,
};
use starj_graph::{Graph, KStarQuery};
use starj_noise::{PrivacyBudget, StarRng};
use starj_telemetry::{
    cost_counters, kernel_counters, PromText, RequestKind, Stage, Telemetry, TelemetryConfig,
    TraceBuilder, TraceOutcome,
};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Predicate Mechanism configuration.
    pub pm: PmConfig,
    /// Workload Decomposition configuration.
    pub wd: WdConfig,
    /// Root seed; request RNGs derive from it by arrival index.
    pub seed: u64,
    /// Set false to disable answer replay (every request pays).
    pub cache_answers: bool,
    /// Maximum cached answers before FIFO eviction (bounds service memory).
    pub cache_capacity: usize,
    /// Fact-scan worker threads for mechanism execution (1 = scan on the
    /// request thread). Values > 1 are propagated into the PM/WD scan
    /// options at service construction; at the default of 1, explicitly
    /// configured `pm.scan` / `wd.scan` options are left untouched.
    pub scan_threads: usize,
    /// Route `pm_answer` / `wd_answer` through the group-commit coalescer
    /// ([`crate::coalesce`]): concurrent single-query traffic parks in a
    /// queue and shares fused fact scans. Off by default — the direct path
    /// answers on the caller's thread.
    pub coalesce: bool,
    /// How long a coalescer worker holds a drain open for more traffic to
    /// pile in. Zero drains immediately (batching still happens naturally
    /// while workers are busy scanning, exactly like WAL group commit).
    /// With [`ServiceConfig::coalesce_window_max`] non-zero this is only
    /// the *starting* window — the coalescer adapts it to the observed
    /// arrival rate from there.
    pub coalesce_window: Duration,
    /// Upper bound for the *adaptive* group-commit window. Zero (the
    /// default) keeps the fixed [`ServiceConfig::coalesce_window`]
    /// behavior. Non-zero turns adaptation on: the coalescer tracks an
    /// EWMA of request arrival gaps and derives the effective window from
    /// it — collapsing to zero when traffic is too sparse for a hold to
    /// ever capture a second request (idle single-client latency stops
    /// paying the window tax), and stretching up to this bound under burst
    /// so fused batches fill. Window choice only changes how requests
    /// group into batches; answers, ledgers, and RNG draws are
    /// batch-composition-invariant, so adaptation is privacy-free.
    pub coalesce_window_max: Duration,
    /// Drain at this queue depth even before the window elapses (clamped
    /// to ≥ 1). Also the largest possible fused batch.
    pub max_batch: usize,
    /// Coalescer worker threads (clamped to ≥ 1).
    pub coalesce_workers: usize,
    /// Bounded coalescer queue capacity; submitters block (backpressure)
    /// while it is full.
    pub coalesce_queue: usize,
    /// Per-tenant coalescer lane capacity (clamped to ≥ 1): one tenant may
    /// hold at most this many parked jobs, so a flooding tenant
    /// backpressures itself while everyone else keeps submitting. Drains
    /// are round-robin across tenants, so a capped backlog also cannot
    /// starve another tenant's head-of-line request.
    pub coalesce_tenant_queue: usize,
    /// Cache the joint attribute-code W histograms that answer workload
    /// requests (`Q = Φ·W`), keyed on (axis set, aggregate, data version).
    /// With a warm cache, repeat workload traffic is scan-free.
    pub cache_w_histograms: bool,
    /// Maximum cached W histograms before FIFO eviction.
    pub w_cache_capacity: usize,
    /// Observability: span-ring / audit-trail / slow-query-log capacities
    /// and the slow-query latency threshold. The defaults keep everything
    /// on; [`TelemetryConfig::disabled`] turns every component off (the
    /// tracing-off arm of the coalesce bench's A/B).
    pub telemetry: TelemetryConfig,
    /// DPSQL+-style minimum-frequency floor: refuse any query carrying a
    /// predicate whose cost-model estimated passing fact-row count falls
    /// below this many rows ([`ServiceError::BelowMinFrequency`], decided
    /// at admission, before any budget is reserved). `0` (the default)
    /// disables the guard.
    pub min_pass_rows: u64,
    /// Crash-safe budget accounting: when set, every reserve / commit /
    /// refund / refusal is journaled to an fsync'd WAL in this directory
    /// **before** the in-memory ledger moves, and
    /// [`Service::open`] replays the journal at startup. `None` (the
    /// default) keeps the pre-PR-9 in-memory-only accounting. Services
    /// with a journal must be built with the fallible [`Service::open`].
    pub durable: Option<DurableConfig>,
    /// Deterministic fault injection for tests and failure drills: seams
    /// in the journal (`wal.*`) and the coalescer (`coalesce.drain`)
    /// consult this plan. `None` (the default) in production.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pm: PmConfig::default(),
            wd: WdConfig::default(),
            seed: 2023,
            cache_answers: true,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            scan_threads: 1,
            coalesce: false,
            coalesce_window: Duration::from_micros(200),
            coalesce_window_max: Duration::ZERO,
            max_batch: 64,
            coalesce_workers: 2,
            coalesce_queue: 4096,
            coalesce_tenant_queue: 256,
            cache_w_histograms: true,
            w_cache_capacity: crate::wcache::DEFAULT_W_CACHE_CAPACITY,
            telemetry: TelemetryConfig::default(),
            min_pass_rows: 0,
            durable: None,
            fault: None,
        }
    }
}

/// A served star-join answer.
#[derive(Debug, Clone)]
pub struct ServiceAnswer {
    /// The label of the query as submitted.
    pub name: String,
    /// The (noisy) result.
    pub result: QueryResult,
    /// The perturbed query PM actually executed — `None` for free answers
    /// to unsatisfiable queries.
    pub noisy_query: Option<StarQuery>,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant: `None` for cache hits and free
    /// answers, `Some(cost)` when fresh budget was committed.
    pub cost: Option<PrivacyBudget>,
}

/// A served fused-batch answer: per-member answers plus the batch-level
/// charge (the whole batch reserves, executes in one fact scan, and
/// commits as a unit).
#[derive(Debug, Clone)]
pub struct BatchAnswer {
    /// Per-query answers in submission order. Member `cost` fields are
    /// `None` — the batch-level [`BatchAnswer::cost`] is the charge.
    pub answers: Vec<ServiceAnswer>,
    /// True iff the whole batch replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant (`None` for cache hits and
    /// all-free batches).
    pub cost: Option<PrivacyBudget>,
}

/// A served workload answer (one value per workload query).
#[derive(Debug, Clone)]
pub struct WorkloadAnswer {
    /// Noisy answers in workload order.
    pub answers: Vec<f64>,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant (`None` for cache hits).
    pub cost: Option<PrivacyBudget>,
}

/// A served k-star answer.
#[derive(Debug, Clone)]
pub struct KStarAnswer {
    /// The noisy k-star count.
    pub count: f64,
    /// The perturbed range actually counted.
    pub noisy_query: KStarQuery,
    /// True iff replayed from the cache.
    pub cached: bool,
    /// What this call charged the tenant (`None` for cache hits).
    pub cost: Option<PrivacyBudget>,
}

/// A PM request that finished its private phase (admitted, reserved,
/// perturbed) and is ready for the pure-evaluation step — either inline or
/// parked in the coalescer. Dropping it without finishing refunds the
/// reservation.
#[derive(Debug)]
pub(crate) struct PmWork {
    pub(crate) tenant: String,
    pub(crate) name: String,
    pub(crate) epsilon: f64,
    pub(crate) cost: PrivacyBudget,
    pub(crate) key: RequestKey,
    pub(crate) noisy: StarQuery,
    pub(crate) reservation: crate::accountant::Reservation,
    pub(crate) schema: Arc<StarSchema>,
    pub(crate) version: u64,
    pub(crate) start: Instant,
    pub(crate) trace: TraceBuilder,
}

/// A WD request past its private phase: the reconstructed real-valued rows
/// plus the normalized axis set the coalescer partitions on.
#[derive(Debug)]
pub(crate) struct WdWork {
    pub(crate) tenant: String,
    pub(crate) epsilon: f64,
    pub(crate) cost: PrivacyBudget,
    pub(crate) key: RequestKey,
    pub(crate) rows: Vec<WeightedQuery>,
    pub(crate) axes: Vec<(String, String)>,
    /// Joint code space when the axes fit the dense cap (W-cache eligible);
    /// resolved once at submit so the answering step never recomputes it.
    pub(crate) space: Option<usize>,
    pub(crate) reservation: crate::accountant::Reservation,
    pub(crate) schema: Arc<StarSchema>,
    pub(crate) version: u64,
    pub(crate) start: Instant,
    pub(crate) trace: TraceBuilder,
}

/// Submit-phase outcome: answered on the spot, or ready to execute.
/// Boxed for the same reason as [`WdPhase`]: the work unit carries the
/// noisy query, the schema Arc, and the trace builder.
pub(crate) enum PmPhase {
    Immediate(ServiceAnswer),
    Execute(Box<PmWork>),
}

pub(crate) enum WdPhase {
    Immediate(WorkloadAnswer),
    // Boxed: the work unit carries the reconstructed rows and is much
    // larger than the immediate answer.
    Execute(Box<WdWork>),
}

/// The shared state behind a [`Service`]: everything the request pipeline
/// touches, shared with the coalescer workers through one `Arc`.
#[derive(Debug)]
pub(crate) struct ServiceCore {
    /// The data instance and its monotone version, swapped atomically by
    /// [`Service::refresh_schema`].
    schema: RwLock<(Arc<StarSchema>, u64)>,
    pub(crate) config: ServiceConfig,
    pub(crate) accountant: BudgetAccountant,
    pub(crate) cache: AnswerCache,
    pub(crate) wcache: WeightHistogramCache,
    pub(crate) metrics: ServiceMetrics,
    pub(crate) telemetry: Telemetry,
    /// Crash-safe accounting state; `None` when the service runs without a
    /// journal ([`ServiceConfig::durable`] unset).
    pub(crate) durable: Option<Arc<DurableState>>,
    request_counter: AtomicU64,
}

/// A concurrent, multi-tenant DP star-join query service over one schema
/// instance (and optionally one graph, for k-star queries).
#[derive(Debug)]
pub struct Service {
    core: Arc<ServiceCore>,
    graph: Option<Arc<Graph>>,
    coalescer: Option<Coalescer>,
}

impl Service {
    /// A service over `schema` with the given configuration and no tenants.
    ///
    /// Infallible, so only valid for configurations without a budget
    /// journal — opening a journal does IO and replays history, which can
    /// fail. With [`ServiceConfig::durable`] set this panics; use
    /// [`Service::open`] instead.
    pub fn new(schema: Arc<StarSchema>, config: ServiceConfig) -> Self {
        assert!(
            config.durable.is_none(),
            "ServiceConfig::durable is set: journal opening can fail, use Service::open"
        );
        Self::open(schema, config).expect("non-durable service construction is infallible")
    }

    /// A service over `schema`, opening (and replaying) the budget journal
    /// when [`ServiceConfig::durable`] is set. Recovered per-tenant spends
    /// are adopted by the accountant and applied as tenants re-register,
    /// bit-for-bit. Fails with [`ServiceError::DurabilityUnavailable`] if
    /// the journal cannot be opened or is corrupt mid-history (a torn
    /// *tail* is recovered, not an error).
    pub fn open(schema: Arc<StarSchema>, mut config: ServiceConfig) -> Result<Self, ServiceError> {
        // `scan_threads > 1` propagates into the mechanism configs; at the
        // default of 1 any explicitly-set `pm.scan` / `wd.scan` is honored.
        // `with_threads` (not `ScanOptions::parallel`) so explicitly-set
        // cost-model / probe-cap knobs survive the thread-count override.
        if config.scan_threads > 1 {
            config.pm.scan = config.pm.scan.with_threads(config.scan_threads);
            config.wd.scan = config.wd.scan.with_threads(config.scan_threads);
        }
        let durable = match &config.durable {
            None => None,
            Some(durable_config) => {
                let (wal, recovery) =
                    BudgetWal::open(durable_config.wal_config(), config.fault.clone()).map_err(
                        |e| ServiceError::DurabilityUnavailable { reason: e.to_string() },
                    )?;
                Some((Arc::new(DurableState::new(wal, &recovery)), recovery))
            }
        };
        let cache = AnswerCache::with_capacity(config.cache_capacity);
        let wcache = WeightHistogramCache::with_capacity(config.w_cache_capacity);
        let telemetry = Telemetry::new(&config.telemetry);
        let accountant = BudgetAccountant::new();
        let durable = match durable {
            None => None,
            Some((state, recovery)) => {
                accountant.adopt_recovery(&recovery.tenants)?;
                Some(state)
            }
        };
        let core = Arc::new(ServiceCore {
            schema: RwLock::new((schema, 0)),
            config,
            accountant,
            cache,
            wcache,
            metrics: ServiceMetrics::default(),
            telemetry,
            durable,
            request_counter: AtomicU64::new(0),
        });
        let coalescer = core.config.coalesce.then(|| Coalescer::start(Arc::clone(&core)));
        Ok(Service { core, graph: None, coalescer })
    }

    /// Attaches a graph so the service can answer k-star queries.
    pub fn with_graph(mut self, graph: Arc<Graph>) -> Self {
        self.graph = Some(graph);
        self
    }

    /// A snapshot of the schema this service currently answers over.
    pub fn schema(&self) -> Arc<StarSchema> {
        self.core.snapshot().0
    }

    /// The current data version (0 at construction; bumped by every
    /// [`Service::refresh_schema`]).
    pub fn data_version(&self) -> u64 {
        self.core.snapshot().1
    }

    /// Swaps the served data for a new schema instance and returns the new
    /// data version. Both the answer cache and the W-histogram cache key on
    /// the version, so every pre-refresh release and histogram is
    /// unreachable from this point on (and both caches are cleared eagerly
    /// to reclaim memory). Budget already spent stays spent — a repeat
    /// query pays again for a fresh release over the new data.
    pub fn refresh_schema(&self, schema: Arc<StarSchema>) -> u64 {
        let (old, version) = {
            let mut guard = self.core.schema.write().unwrap_or_else(|e| e.into_inner());
            let next = guard.1 + 1;
            let old = std::mem::replace(&mut guard.0, schema);
            guard.1 = next;
            (old, next)
        };
        // The sampled cost model is keyed on the schema instance; drop the
        // outgoing instance's entry so the registry never serves estimates
        // for retired data (and a reused allocation can't alias them).
        starj_engine::invalidate_cost_model(&old);
        self.core.cache.clear();
        self.core.wcache.clear();
        version
    }

    /// Registers a tenant with its lifetime `(ε, δ)` allotment.
    pub fn register_tenant(
        &self,
        tenant: &str,
        allotment: PrivacyBudget,
    ) -> Result<(), ServiceError> {
        self.core.accountant.register(tenant, allotment)
    }

    /// The tenant's current budget usage.
    pub fn tenant_usage(&self, tenant: &str) -> Result<TenantUsage, ServiceError> {
        self.core.accountant.usage(tenant)
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot()
    }

    /// The raw lock-free metrics behind this service — the shard-facing
    /// handle a router aggregates across shards. Counters sum via
    /// [`MetricsSnapshot::accumulate`]; latency merges via
    /// [`crate::LatencyHistogram::bucket_counts`] /
    /// [`crate::LatencyHistogram::absorb`] (quantiles of a fleet come from
    /// the summed buckets, never from averaged per-shard p50/p99).
    pub fn raw_metrics(&self) -> &ServiceMetrics {
        &self.core.metrics
    }

    /// Registered tenant ids, sorted for deterministic reporting.
    pub fn tenants(&self) -> Vec<String> {
        self.core.accountant.tenants()
    }

    /// This service's telemetry hub: completed-request spans, the
    /// privacy-budget audit trail, and the slow-query log.
    pub fn telemetry(&self) -> &Telemetry {
        &self.core.telemetry
    }

    /// The privacy-budget audit trail as JSONL, one event per line, oldest
    /// first.
    pub fn audit_jsonl(&self) -> String {
        self.core.telemetry.audit().to_jsonl()
    }

    /// One tenant's audit trail as JSONL, oldest first — the
    /// `/audit?tenant=` filter of the operator plane.
    pub fn audit_jsonl_for(&self, tenant: &str) -> String {
        self.core.telemetry.audit().to_jsonl_for(tenant, &[])
    }

    /// Durability status (journal counters, degraded flag, replay summary);
    /// `None` for services without a budget journal.
    pub fn durable_status(&self) -> Option<DurableStatus> {
        self.core.durable.as_ref().map(|d| d.status())
    }

    /// True when a journal failure has latched degraded mode: cache hits
    /// and free answers still flow, new budget spends are refused with
    /// [`ServiceError::DurabilityUnavailable`] until the process restarts.
    /// Always false for services without a journal.
    pub fn is_degraded(&self) -> bool {
        self.core.durable.as_ref().is_some_and(|d| d.is_degraded())
    }

    /// The full service state as a Prometheus text-format (0.0.4)
    /// exposition: request counters, the latency histogram (cumulative
    /// buckets in seconds), per-tenant budget gauges, the process-wide
    /// kernel and cost-model profiling counters, and telemetry depth
    /// gauges.
    pub fn prometheus_text(&self) -> String {
        let mut p = PromText::new();
        let snap = self.metrics();
        for (name, value) in snap.counter_entries() {
            let metric = format!("starj_{name}_total");
            p.header(&metric, &format!("Service counter `{name}`."), "counter");
            p.sample(&metric, &[], value as f64);
        }

        p.header(
            "starj_request_latency_seconds",
            "End-to-end request latency (successful requests).",
            "histogram",
        );
        let buckets = self.core.metrics.latency.bucket_counts();
        let mut cumulative = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            cumulative += count;
            if count == 0 && i + 1 != buckets.len() {
                continue; // keep the exposition compact: only occupied edges
            }
            let upper_s = (i as f64).exp2() / 1e9;
            let le = format!("{upper_s}");
            p.sample("starj_request_latency_seconds_bucket", &[("le", &le)], cumulative as f64);
        }
        p.sample("starj_request_latency_seconds_bucket", &[("le", "+Inf")], cumulative as f64);
        p.sample("starj_request_latency_seconds_count", &[], cumulative as f64);

        p.header("starj_tenant_spent_epsilon", "Committed ε spending per tenant.", "gauge");
        let tenants = self.tenants();
        for tenant in &tenants {
            if let Ok(usage) = self.tenant_usage(tenant) {
                p.sample("starj_tenant_spent_epsilon", &[("tenant", tenant)], usage.spent_epsilon);
            }
        }
        p.header("starj_tenant_remaining_epsilon", "Unreserved ε remaining per tenant.", "gauge");
        for tenant in &tenants {
            if let Ok(usage) = self.tenant_usage(tenant) {
                p.sample(
                    "starj_tenant_remaining_epsilon",
                    &[("tenant", tenant)],
                    usage.remaining_epsilon,
                );
            }
        }

        for (name, value) in kernel_counters().snapshot().entries() {
            let metric = format!("starj_kernel_{name}_total");
            p.header(
                &metric,
                &format!("Kernel profiling counter `{name}` (process-wide)."),
                "counter",
            );
            p.sample(&metric, &[], value as f64);
        }

        for (name, value) in cost_counters().snapshot().entries() {
            let metric = format!("starj_cost_{name}_total");
            p.header(&metric, &format!("Cost-model counter `{name}` (process-wide)."), "counter");
            p.sample(&metric, &[], value as f64);
        }

        if let Some(durable) = &self.core.durable {
            let status = durable.status();
            let counters: [(&str, u64, &str); 7] = [
                ("records", status.counters.records, "Journal records appended."),
                ("bytes", status.counters.bytes, "Journal frame bytes appended."),
                (
                    "fsyncs",
                    status.counters.fsyncs,
                    "Fdatasync calls issued (group commit makes this <= records).",
                ),
                ("rotations", status.counters.rotations, "Journal segment rotations."),
                ("journal_errors", status.journal_errors, "Journal failures observed."),
                (
                    "degraded_refusals",
                    status.degraded_refusals,
                    "Spends refused because the journal was unavailable.",
                ),
                (
                    "replayed_records",
                    status.replay.records,
                    "Records replayed by startup recovery.",
                ),
            ];
            for (name, value, help) in counters {
                let metric = format!("starj_durable_{name}_total");
                p.header(&metric, help, "counter");
                p.sample(&metric, &[], value as f64);
            }
            p.header(
                "starj_durable_degraded",
                "1 once a journal failure latched degraded mode (restart to recover).",
                "gauge",
            );
            p.sample("starj_durable_degraded", &[], if status.degraded { 1.0 } else { 0.0 });
            p.header("starj_durable_segments", "Journal segment files on disk.", "gauge");
            p.sample("starj_durable_segments", &[], status.counters.segments as f64);
            p.header(
                "starj_durable_torn_tail_truncated",
                "1 if startup recovery truncated a torn journal tail.",
                "gauge",
            );
            p.sample(
                "starj_durable_torn_tail_truncated",
                &[],
                if status.replay.torn_tail_truncated { 1.0 } else { 0.0 },
            );
        }

        let telemetry = &self.core.telemetry;
        p.header(
            "starj_trace_spans_recorded_total",
            "Completed request spans recorded.",
            "counter",
        );
        p.sample("starj_trace_spans_recorded_total", &[], telemetry.spans_recorded() as f64);
        p.header("starj_audit_events", "Privacy-budget audit events retained.", "gauge");
        p.sample("starj_audit_events", &[], telemetry.audit().len() as f64);
        p.header(
            "starj_audit_events_dropped_total",
            "Audit events evicted by the capacity bound.",
            "counter",
        );
        p.sample("starj_audit_events_dropped_total", &[], telemetry.audit().dropped() as f64);
        p.header("starj_slow_queries", "Requests retained in the slow-query log.", "gauge");
        p.sample("starj_slow_queries", &[], telemetry.slow_queries().len() as f64);
        p.render()
    }

    /// Number of answers currently cached.
    pub fn cached_answers(&self) -> usize {
        self.core.cache.len()
    }

    /// Number of W histograms currently cached.
    pub fn cached_histograms(&self) -> usize {
        self.core.wcache.len()
    }

    /// Answers a star-join query with the Predicate Mechanism under ε-DP,
    /// charged to `tenant`. With coalescing enabled this is
    /// [`Service::pm_submit`] + wait.
    pub fn pm_answer(
        &self,
        tenant: &str,
        query: &StarQuery,
        epsilon: f64,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.pm_submit(tenant, query, epsilon)?.wait()
    }

    /// Submits a PM request without blocking on the scan: free answers,
    /// cache hits, and every admission/budget refusal resolve immediately;
    /// otherwise the perturbed query parks in the coalescer queue (its
    /// budget already reserved, its noise already drawn) and the returned
    /// handle waits for the group-commit drain. With coalescing disabled
    /// the request is answered inline and returned as
    /// [`Submitted::Ready`].
    pub fn pm_submit(
        &self,
        tenant: &str,
        query: &StarQuery,
        epsilon: f64,
    ) -> Result<Submitted<ServiceAnswer>, ServiceError> {
        match &self.coalescer {
            None => self.core.pm_direct(tenant, query, epsilon).map(Submitted::Ready),
            Some(coalescer) => match self.core.pm_phase1(tenant, query, epsilon)? {
                PmPhase::Immediate(answer) => Ok(Submitted::Ready(answer)),
                PmPhase::Execute(mut work) => {
                    work.trace.mark_queued();
                    work.trace.stage_begin(Stage::QueueWait);
                    let (pending, slot) = pending_pair();
                    coalescer.enqueue(Job::Pm(PmJob { work: *work, slot }));
                    Ok(Submitted::Queued(pending))
                }
            },
        }
    }

    /// Describes what serving `query` *would* do, without doing it: the
    /// canonical SQL the cache would key on, the compiled plan shape
    /// (filter order, probe classes, mask sharing, fk staging, cost-model
    /// estimates with confidence intervals), and — when `profile` is set —
    /// the kernel-counter deltas of one discarded profiling scan. Spends
    /// no budget, draws no noise, inserts nothing into the cache, and
    /// writes no audit event. Operator-plane only: the report is exact
    /// and un-noised, so the gate restricts its `explain` verb to admin
    /// tokens.
    pub fn explain(&self, query: &StarQuery, profile: bool) -> Result<ExplainReport, ServiceError> {
        let core = &self.core;
        let (schema, version) = core.snapshot();
        validate_query(&schema, query)?;
        let canon = canonicalize(query);
        let canonical = canon.to_query(&query.name);
        let canonical_sql = starj_engine::to_sql(&schema, &canonical);
        if canon.unsatisfiable {
            return Ok(ExplainReport {
                canonical_sql,
                unsatisfiable: true,
                data_version: version,
                plan: None,
                profile: None,
            });
        }
        let (plan, profiled) =
            crate::explain::describe_query(&schema, &canonical, core.config.pm.scan, profile)?;
        Ok(ExplainReport {
            canonical_sql,
            unsatisfiable: false,
            data_version: version,
            plan: Some(plan),
            profile: profiled,
        })
    }

    /// Answers a counting-query workload with Workload Decomposition under
    /// ε-DP, charged to `tenant`. With coalescing enabled this is
    /// [`Service::wd_submit`] + wait.
    pub fn wd_answer(
        &self,
        tenant: &str,
        workload: &PredicateWorkload,
        epsilon: f64,
    ) -> Result<WorkloadAnswer, ServiceError> {
        self.wd_submit(tenant, workload, epsilon)?.wait()
    }

    /// Submits a WD request without blocking on the scan; the counterpart
    /// of [`Service::pm_submit`]. The workload's strategy rows are
    /// perturbed and reconstructed at submit time; what parks is the fixed
    /// real-valued row set, which the coalescer answers through a shared
    /// (possibly cached) W histogram or one fused weighted scan.
    pub fn wd_submit(
        &self,
        tenant: &str,
        workload: &PredicateWorkload,
        epsilon: f64,
    ) -> Result<Submitted<WorkloadAnswer>, ServiceError> {
        match &self.coalescer {
            None => self.core.wd_direct(tenant, workload, epsilon).map(Submitted::Ready),
            Some(coalescer) => match self.core.wd_phase1(tenant, workload, epsilon)? {
                WdPhase::Immediate(answer) => Ok(Submitted::Ready(answer)),
                WdPhase::Execute(mut work) => {
                    work.trace.mark_queued();
                    work.trace.stage_begin(Stage::QueueWait);
                    let (pending, slot) = pending_pair();
                    coalescer.enqueue(Job::Wd(WdJob { work: *work, slot }));
                    Ok(Submitted::Queued(pending))
                }
            },
        }
    }

    /// Answers a batch of star-join queries with the Predicate Mechanism in
    /// **one fused fact scan**, charged to `tenant` as a unit.
    ///
    /// The total budget `epsilon` splits evenly across the satisfiable
    /// members (sequential composition, as in the PM-per-query workload
    /// baseline); provably unsatisfiable members are answered exactly for
    /// free and do not dilute the split. Perturbation stays per-query —
    /// each member draws its own noise exactly as [`Service::pm_answer`]
    /// would — only the *answering* scan is shared, which is privacy-free
    /// post-processing of the already-noisy queries. Explicit batches do
    /// not pass through the coalescer: they are already fused.
    pub fn pm_batch_answer(
        &self,
        tenant: &str,
        queries: &[StarQuery],
        epsilon: f64,
    ) -> Result<BatchAnswer, ServiceError> {
        let core = &self.core;
        let start = Instant::now();
        let mut trace = core.telemetry.trace_start(RequestKind::PmBatch, tenant);
        trace.stage_begin(Stage::Admission);
        let cost = core.admit_cost(epsilon)?;
        if queries.is_empty() {
            trace.stage_end(Stage::Admission);
            core.telemetry.trace_finish(trace, TraceOutcome::Free);
            return Ok(BatchAnswer { answers: Vec::new(), cached: false, cost: None });
        }
        let (schema, version) = core.snapshot();
        for q in queries {
            core.admit(|| validate_query(&schema, q))?;
            core.admit(|| min_frequency_check(&schema, &q.predicates, core.config.min_pass_rows))?;
        }
        trace.stage_end(Stage::Admission);

        let (canons, key) = trace.stage(Stage::Canon, || {
            let canons: Vec<_> = queries.iter().map(canonicalize).collect();
            let key = RequestKey::Workload(canons.clone());
            (canons, key)
        });
        let hit = trace.stage(Stage::CacheProbe, || {
            core.cache_get(tenant, Mechanism::PmBatch, epsilon, version, &key)
        });
        if let Some(hit) = hit {
            core.served(start);
            core.telemetry.trace_finish(trace, TraceOutcome::Cached);
            let answers = queries
                .iter()
                .zip(hit.batch)
                .map(|(q, (result, noisy_query))| ServiceAnswer {
                    name: q.name.clone(),
                    result,
                    noisy_query,
                    cached: true,
                    cost: None,
                })
                .collect();
            return Ok(BatchAnswer { answers, cached: true, cost: None });
        }

        // Free members (unsatisfiable on every instance) answer exactly and
        // are excluded from the budget split.
        let satisfiable: Vec<usize> =
            (0..queries.len()).filter(|&i| !canons[i].unsatisfiable).collect();
        let mut batch: Vec<(QueryResult, Option<StarQuery>)> = canons
            .iter()
            .map(|c| {
                let empty = if c.group_by.is_empty() {
                    QueryResult::Scalar(0.0)
                } else {
                    QueryResult::Groups(BTreeMap::new())
                };
                (empty, None)
            })
            .collect();

        let charged = if satisfiable.is_empty() {
            ServiceMetrics::add(&core.metrics.free_answers, queries.len() as u64);
            None
        } else {
            let reservation = trace.stage(Stage::BudgetReserve, || {
                core.reserve(tenant, cost, query_hash(Mechanism::PmBatch, &key), version)
            })?;
            let mut rng = core.request_rng();
            let eps_each = epsilon / satisfiable.len() as f64;
            // Phase 1: per-member perturbation (the private step).
            let noisy: Vec<StarQuery> = match trace.stage(Stage::Perturb, || {
                satisfiable
                    .iter()
                    .map(|&i| {
                        dp_starj::pm::perturb_query(
                            &schema,
                            &canons[i].to_query(&queries[i].name),
                            eps_each,
                            &core.config.pm,
                            &mut rng,
                        )
                    })
                    .collect::<Result<_, _>>()
            }) {
                Ok(n) => n,
                Err(e) => {
                    ServiceMetrics::inc(&core.metrics.mechanism_failures);
                    return Err(e.into());
                }
            };
            // Phase 2: one fused scan answers every noisy member.
            let results = match trace.stage(Stage::FusedScan, || {
                execute_batch_with(&schema, &noisy, core.config.pm.scan)
            }) {
                Ok(r) => r,
                Err(e) => {
                    ServiceMetrics::inc(&core.metrics.mechanism_failures);
                    return Err(ServiceError::InvalidQuery(e));
                }
            };
            trace.stage(Stage::Commit, || reservation.commit())?;
            // Metrics only after the batch actually commits — a refused or
            // failed request must not count its free members as served.
            ServiceMetrics::add(
                &core.metrics.free_answers,
                (queries.len() - satisfiable.len()) as u64,
            );
            ServiceMetrics::inc(&core.metrics.fused_scans);
            ServiceMetrics::add(&core.metrics.fused_queries_saved, satisfiable.len() as u64 - 1);
            for ((&i, result), noisy_query) in satisfiable.iter().zip(results).zip(noisy) {
                batch[i] = (result, Some(noisy_query));
            }
            Some(cost)
        };

        // All-free batches are not cached (consistent with `pm_answer`'s
        // free path): recomputing them costs no budget, and caching one
        // would record an `original_cost` that was never charged.
        if core.config.cache_answers && charged.is_some() {
            core.cache.insert(
                tenant,
                Mechanism::PmBatch,
                epsilon,
                version,
                key,
                CachedAnswer {
                    result: QueryResult::Scalar(0.0),
                    workload_answers: Vec::new(),
                    noisy_query: None,
                    batch: batch.clone(),
                    noisy_kstar: None,
                    original_cost: cost,
                },
            );
        }
        core.served(start);
        let outcome = if charged.is_some() { TraceOutcome::Ok } else { TraceOutcome::Free };
        core.telemetry.trace_finish(trace, outcome);
        let answers = queries
            .iter()
            .zip(batch)
            .map(|(q, (result, noisy_query))| ServiceAnswer {
                name: q.name.clone(),
                result,
                noisy_query,
                cached: false,
                cost: None,
            })
            .collect();
        Ok(BatchAnswer { answers, cached: false, cost: charged })
    }

    /// Answers a k-star counting query with PM under ε-DP, charged to
    /// `tenant`. Requires a service built [`Service::with_graph`].
    pub fn kstar_answer(
        &self,
        tenant: &str,
        query: &KStarQuery,
        epsilon: f64,
    ) -> Result<KStarAnswer, ServiceError> {
        let core = &self.core;
        let start = Instant::now();
        let mut trace = core.telemetry.trace_start(RequestKind::KStar, tenant);
        trace.stage_begin(Stage::Admission);
        let cost = core.admit_cost(epsilon)?;
        let graph = self.graph.as_ref().ok_or(ServiceError::NoGraph)?;
        let version = core.snapshot().1;
        core.admit(|| {
            if query.lo > query.hi || query.hi >= graph.num_nodes() {
                Err(ServiceError::InvalidQuery(starj_engine::EngineError::InvalidConstraint(
                    format!(
                        "k-star range [{}, {}] invalid for a {}-node graph",
                        query.lo,
                        query.hi,
                        graph.num_nodes()
                    ),
                )))
            } else {
                Ok(())
            }
        })?;
        trace.stage_end(Stage::Admission);

        let key = RequestKey::KStar(query.k, query.lo, query.hi);
        let hit = trace.stage(Stage::CacheProbe, || {
            core.cache_get(tenant, Mechanism::KStar, epsilon, version, &key)
        });
        if let Some(hit) = hit {
            core.served(start);
            core.telemetry.trace_finish(trace, TraceOutcome::Cached);
            let (k, lo, hi) = hit.noisy_kstar.unwrap_or((query.k, query.lo, query.hi));
            return Ok(KStarAnswer {
                count: hit.result.scalar().map_err(ServiceError::InvalidQuery)?,
                noisy_query: KStarQuery { k, lo, hi },
                cached: true,
                cost: None,
            });
        }

        let reservation = trace.stage(Stage::BudgetReserve, || {
            core.reserve(tenant, cost, query_hash(Mechanism::KStar, &key), version)
        })?;
        let mut rng = core.request_rng();
        let (count, noisy_query) = match trace.stage(Stage::Perturb, || {
            pm_kstar(graph, query, epsilon, core.config.pm.policy, &mut rng)
        }) {
            Ok(a) => a,
            Err(e) => {
                ServiceMetrics::inc(&core.metrics.mechanism_failures);
                return Err(e.into());
            }
        };
        trace.stage(Stage::Commit, || reservation.commit())?;

        if core.config.cache_answers {
            core.cache.insert(
                tenant,
                Mechanism::KStar,
                epsilon,
                version,
                key,
                CachedAnswer {
                    result: QueryResult::Scalar(count),
                    workload_answers: Vec::new(),
                    noisy_query: None,
                    batch: Vec::new(),
                    noisy_kstar: Some((noisy_query.k, noisy_query.lo, noisy_query.hi)),
                    original_cost: cost,
                },
            );
        }
        core.served(start);
        core.telemetry.trace_finish(trace, TraceOutcome::Ok);
        Ok(KStarAnswer { count, noisy_query, cached: false, cost: Some(cost) })
    }
}

impl ServiceCore {
    /// The current `(schema, data version)` pair, read atomically.
    pub(crate) fn snapshot(&self) -> (Arc<StarSchema>, u64) {
        let guard = self.schema.read().unwrap_or_else(|e| e.into_inner());
        (Arc::clone(&guard.0), guard.1)
    }

    // ---- PM pipeline ------------------------------------------------------

    /// The submit phase: everything privacy-relevant, on the caller's
    /// thread. Returns either an immediate answer (free or cached) or the
    /// reserved-and-perturbed work unit ready for pure evaluation.
    pub(crate) fn pm_phase1(
        &self,
        tenant: &str,
        query: &StarQuery,
        epsilon: f64,
    ) -> Result<PmPhase, ServiceError> {
        let start = Instant::now();
        let mut trace = self.telemetry.trace_start(RequestKind::Pm, tenant);
        let (schema, version) = self.snapshot();
        let cost = trace.stage(Stage::Admission, || {
            let cost = self.admit_cost(epsilon)?;
            self.admit(|| validate_query(&schema, query))?;
            self.admit(|| {
                min_frequency_check(&schema, &query.predicates, self.config.min_pass_rows)
            })?;
            Ok::<_, ServiceError>(cost)
        })?;

        let canon = trace.stage(Stage::Canon, || canonicalize(query));
        if canon.unsatisfiable {
            // Unsatisfiable on every instance — the exact empty answer is
            // data-independent, hence free.
            let result = if canon.group_by.is_empty() {
                QueryResult::Scalar(0.0)
            } else {
                QueryResult::Groups(BTreeMap::new())
            };
            ServiceMetrics::inc(&self.metrics.free_answers);
            self.served(start);
            self.telemetry.trace_finish(trace, TraceOutcome::Free);
            return Ok(PmPhase::Immediate(ServiceAnswer {
                name: query.name.clone(),
                result,
                noisy_query: None,
                cached: false,
                cost: None,
            }));
        }

        let key = RequestKey::Single(canon.clone());
        let hit = trace.stage(Stage::CacheProbe, || {
            self.cache_get(tenant, Mechanism::Pm, epsilon, version, &key)
        });
        if let Some(hit) = hit {
            self.served(start);
            self.telemetry.trace_finish(trace, TraceOutcome::Cached);
            return Ok(PmPhase::Immediate(ServiceAnswer {
                name: query.name.clone(),
                result: hit.result,
                noisy_query: hit.noisy_query,
                cached: true,
                cost: None,
            }));
        }

        let query_hash = query_hash(Mechanism::Pm, &key);
        let reservation = trace
            .stage(Stage::BudgetReserve, || self.reserve(tenant, cost, query_hash, version))?;
        let mut rng = self.request_rng();
        // The canonical form is what executes: presentation-equivalent
        // queries must spend identically, not just cache identically.
        let executable = canon.to_query(&query.name);
        let noisy = match trace.stage(Stage::Perturb, || {
            dp_starj::pm::perturb_query(&schema, &executable, epsilon, &self.config.pm, &mut rng)
        }) {
            Ok(n) => n,
            Err(e) => {
                // Reservation drops here → automatic refund.
                ServiceMetrics::inc(&self.metrics.mechanism_failures);
                return Err(e.into());
            }
        };
        Ok(PmPhase::Execute(Box::new(PmWork {
            tenant: tenant.to_string(),
            name: query.name.clone(),
            epsilon,
            cost,
            key,
            noisy,
            reservation,
            schema,
            version,
            start,
            trace,
        })))
    }

    /// Refuses an executed request whose data version is no longer the
    /// served one: a [`Service::refresh_schema`] that landed anywhere
    /// between submit and this commit point — while the request was parked
    /// in the coalescer *or* while its scan was running — must not release
    /// an answer computed over the retired instance. Returning the error
    /// drops the work unit, so the reservation refunds (RAII). A refresh
    /// landing after this check linearizes after the release: the answer
    /// was committed while its version was still current.
    fn stale_check(&self, submitted: u64) -> Result<(), ServiceError> {
        let current = self.snapshot().1;
        if submitted != current {
            ServiceMetrics::inc(&self.metrics.stale_refusals);
            return Err(ServiceError::StaleDataVersion { submitted, current });
        }
        Ok(())
    }

    /// Commit + cache + metrics for an executed PM request.
    pub(crate) fn pm_finish(
        &self,
        work: PmWork,
        result: QueryResult,
    ) -> Result<ServiceAnswer, ServiceError> {
        let PmWork {
            tenant,
            name,
            epsilon,
            cost,
            key,
            noisy,
            reservation,
            version,
            start,
            mut trace,
            ..
        } = work;
        trace.stage(Stage::Commit, || {
            self.stale_check(version)?;
            reservation.commit()?;
            if self.config.cache_answers {
                self.cache.insert(
                    &tenant,
                    Mechanism::Pm,
                    epsilon,
                    version,
                    key,
                    CachedAnswer {
                        result: result.clone(),
                        workload_answers: Vec::new(),
                        noisy_query: Some(noisy.clone()),
                        batch: Vec::new(),
                        noisy_kstar: None,
                        original_cost: cost,
                    },
                );
            }
            Ok::<_, ServiceError>(())
        })?;
        self.served(start);
        self.telemetry.trace_finish(trace, TraceOutcome::Ok);
        Ok(ServiceAnswer {
            name,
            result,
            noisy_query: Some(noisy),
            cached: false,
            cost: Some(cost),
        })
    }

    /// The sequential path: submit phase + inline evaluation.
    pub(crate) fn pm_direct(
        &self,
        tenant: &str,
        query: &StarQuery,
        epsilon: f64,
    ) -> Result<ServiceAnswer, ServiceError> {
        match self.pm_phase1(tenant, query, epsilon)? {
            PmPhase::Immediate(answer) => Ok(answer),
            PmPhase::Execute(work) => {
                let mut work = *work;
                let scan = self.config.pm.scan;
                let result = match work
                    .trace
                    .stage(Stage::FusedScan, || execute_with(&work.schema, &work.noisy, scan))
                {
                    Ok(r) => r,
                    Err(e) => {
                        ServiceMetrics::inc(&self.metrics.mechanism_failures);
                        return Err(ServiceError::Mechanism(CoreError::Engine(e)));
                    }
                };
                self.pm_finish(work, result)
            }
        }
    }

    // ---- WD pipeline ------------------------------------------------------

    pub(crate) fn wd_phase1(
        &self,
        tenant: &str,
        workload: &PredicateWorkload,
        epsilon: f64,
    ) -> Result<WdPhase, ServiceError> {
        let start = Instant::now();
        let mut trace = self.telemetry.trace_start(RequestKind::Wd, tenant);
        let (schema, version) = self.snapshot();
        let cost = trace.stage(Stage::Admission, || {
            let cost = self.admit_cost(epsilon)?;
            self.admit(|| validate_workload(&schema, workload))?;
            Ok::<_, ServiceError>(cost)
        })?;

        let key = trace.stage(Stage::Canon, || {
            RequestKey::Workload(workload.to_star_queries().iter().map(canonicalize).collect())
        });
        let hit = trace.stage(Stage::CacheProbe, || {
            self.cache_get(tenant, Mechanism::Wd, epsilon, version, &key)
        });
        if let Some(hit) = hit {
            self.served(start);
            self.telemetry.trace_finish(trace, TraceOutcome::Cached);
            return Ok(WdPhase::Immediate(WorkloadAnswer {
                answers: hit.workload_answers,
                cached: true,
                cost: None,
            }));
        }

        let (axes, space) = WeightHistogram::plan_axes(&schema, &workload_axes(workload))?;
        let query_hash = query_hash(Mechanism::Wd, &key);
        let reservation = trace
            .stage(Stage::BudgetReserve, || self.reserve(tenant, cost, query_hash, version))?;
        let mut rng = self.request_rng();
        let rows = match trace.stage(Stage::Perturb, || {
            wd_reconstruct(&schema, workload, epsilon, &self.config.wd, &mut rng)
        }) {
            Ok(rows) => rows,
            Err(e) => {
                ServiceMetrics::inc(&self.metrics.mechanism_failures);
                return Err(e.into());
            }
        };
        Ok(WdPhase::Execute(Box::new(WdWork {
            tenant: tenant.to_string(),
            epsilon,
            cost,
            key,
            rows,
            axes,
            space,
            reservation,
            schema,
            version,
            start,
            trace,
        })))
    }

    /// Answers an axis-compatible group of reconstructed row sets — the
    /// shared evaluation step of the direct path (one set) and a coalesced
    /// WD partition (many). When the joint code space fits the dense cap,
    /// the W histogram answers everything: a cached `W` makes the whole
    /// partition scan-free, a cold one costs a single build scan shared by
    /// every request. Oversized axis sets fall back to one fused weighted
    /// scan whose per-query row loops are independent of batch composition,
    /// keeping answers bit-identical to the sequential path either way.
    pub(crate) fn wd_partition_answers(
        &self,
        schema: &Arc<StarSchema>,
        version: u64,
        axes: &[(String, String)],
        space: Option<usize>,
        batches: &[&[WeightedQuery]],
    ) -> Result<Vec<Vec<f64>>, ServiceError> {
        let total_rows: usize = batches.iter().map(|b| b.len()).sum();
        let mechanism = |e| ServiceError::Mechanism(CoreError::Engine(e));
        let space = if self.config.cache_w_histograms { space } else { None };
        if space.is_some() {
            let key = WKey { axes: axes.to_vec(), agg: Agg::Count, version };
            let (histogram, built) = match self.wcache.get(&key) {
                Some(h) => (h, false),
                None => {
                    let h = WeightHistogram::build(schema, axes, &Agg::Count, self.config.wd.scan)
                        .map_err(mechanism)?;
                    let h = Arc::new(h);
                    self.wcache.insert(key, Arc::clone(&h));
                    (h, true)
                }
            };
            if built {
                ServiceMetrics::inc(&self.metrics.fused_scans);
            } else {
                ServiceMetrics::add(&self.metrics.w_cache_hits, batches.len() as u64);
            }
            ServiceMetrics::add(
                &self.metrics.fused_queries_saved,
                (total_rows - usize::from(built)) as u64,
            );
            batches
                .iter()
                .map(|rows| {
                    rows.iter()
                        .map(|q| histogram.answer(&q.predicates, &q.agg))
                        .collect::<Result<Vec<f64>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()
                .map_err(mechanism)
        } else {
            let all: Vec<WeightedQuery> = batches.iter().flat_map(|b| b.iter().cloned()).collect();
            let flat = execute_weighted_batch_with(schema, &all, self.config.wd.scan)
                .map_err(mechanism)?;
            ServiceMetrics::inc(&self.metrics.fused_scans);
            ServiceMetrics::add(
                &self.metrics.fused_queries_saved,
                total_rows.saturating_sub(1) as u64,
            );
            let mut flat = flat.into_iter();
            Ok(batches.iter().map(|b| flat.by_ref().take(b.len()).collect()).collect())
        }
    }

    /// Commit + cache + metrics for an executed WD request.
    pub(crate) fn wd_finish(
        &self,
        work: WdWork,
        answers: Vec<f64>,
    ) -> Result<WorkloadAnswer, ServiceError> {
        let WdWork { tenant, epsilon, cost, key, reservation, version, start, mut trace, .. } =
            work;
        trace.stage(Stage::Commit, || {
            self.stale_check(version)?;
            reservation.commit()?;
            if self.config.cache_answers {
                self.cache.insert(
                    &tenant,
                    Mechanism::Wd,
                    epsilon,
                    version,
                    key,
                    CachedAnswer {
                        result: QueryResult::Scalar(0.0),
                        workload_answers: answers.clone(),
                        noisy_query: None,
                        batch: Vec::new(),
                        noisy_kstar: None,
                        original_cost: cost,
                    },
                );
            }
            Ok::<_, ServiceError>(())
        })?;
        self.served(start);
        self.telemetry.trace_finish(trace, TraceOutcome::Ok);
        Ok(WorkloadAnswer { answers, cached: false, cost: Some(cost) })
    }

    pub(crate) fn wd_direct(
        &self,
        tenant: &str,
        workload: &PredicateWorkload,
        epsilon: f64,
    ) -> Result<WorkloadAnswer, ServiceError> {
        match self.wd_phase1(tenant, workload, epsilon)? {
            WdPhase::Immediate(answer) => Ok(answer),
            WdPhase::Execute(mut work) => {
                work.trace.stage_begin(Stage::FusedScan);
                let answers = match self.wd_partition_answers(
                    &work.schema,
                    work.version,
                    &work.axes,
                    work.space,
                    &[work.rows.as_slice()],
                ) {
                    Ok(mut sets) => sets.pop().expect("one batch yields one answer set"),
                    Err(e) => {
                        ServiceMetrics::inc(&self.metrics.mechanism_failures);
                        return Err(e);
                    }
                };
                work.trace.stage_end(Stage::FusedScan);
                self.wd_finish(*work, answers)
            }
        }
    }

    // ---- pipeline helpers -------------------------------------------------

    fn admit_cost(&self, epsilon: f64) -> Result<PrivacyBudget, ServiceError> {
        PrivacyBudget::pure(epsilon).map_err(|e| {
            ServiceMetrics::inc(&self.metrics.admission_rejections);
            ServiceError::InvalidBudget(e)
        })
    }

    fn admit(&self, check: impl FnOnce() -> Result<(), ServiceError>) -> Result<(), ServiceError> {
        check().inspect_err(|_| {
            ServiceMetrics::inc(&self.metrics.admission_rejections);
        })
    }

    fn reserve(
        &self,
        tenant: &str,
        cost: PrivacyBudget,
        query_hash: u64,
        version: u64,
    ) -> Result<crate::accountant::Reservation, ServiceError> {
        let trail = self.telemetry.audit();
        let audit = trail.enabled().then(|| AuditCtx {
            trail: Arc::clone(trail),
            query_hash,
            data_version: version,
            // Captured here — on the submitting thread — so settlement
            // events recorded later on a coalescer worker still carry it.
            request_id: starj_telemetry::current_wire_request_id(),
        });
        let journal = self.durable.as_ref().map(|state| {
            JournalCtx::new(
                Arc::clone(state),
                RecordMeta {
                    query_hash,
                    data_version: version,
                    request_id: starj_telemetry::current_wire_request_id(),
                },
            )
        });
        self.accountant.reserve_journaled(tenant, cost, audit, journal).inspect_err(|e| {
            if matches!(e, ServiceError::BudgetExhausted { .. }) {
                ServiceMetrics::inc(&self.metrics.budget_refusals);
            }
            if matches!(e, ServiceError::DurabilityUnavailable { .. }) {
                ServiceMetrics::inc(&self.metrics.durable_refusals);
            }
        })
    }

    fn cache_get(
        &self,
        tenant: &str,
        mechanism: Mechanism,
        epsilon: f64,
        version: u64,
        key: &RequestKey,
    ) -> Option<CachedAnswer> {
        if !self.config.cache_answers {
            return None;
        }
        let hit = self.cache.get(tenant, mechanism, epsilon, version, key)?;
        ServiceMetrics::inc(&self.metrics.cache_hits);
        Some(hit)
    }

    fn served(&self, start: Instant) {
        ServiceMetrics::inc(&self.metrics.queries_served);
        self.metrics.latency.record(start.elapsed());
    }

    fn request_rng(&self) -> StarRng {
        let index = self.request_counter.fetch_add(1, Ordering::Relaxed);
        StarRng::from_seed(self.config.seed).derive_index(index)
    }
}

/// Stable-within-a-run fingerprint of a canonical request, recorded on every
/// audit event so a tenant's trail can be correlated back to the query shape
/// without storing predicates (which may embed sensitive literals) verbatim.
fn query_hash(mechanism: Mechanism, key: &RequestKey) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    mechanism.hash(&mut hasher);
    key.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use starj_engine::{Column, Dimension, Domain, Predicate, ScanOptions, Table};

    fn toy_schema() -> Arc<StarSchema> {
        let color = Domain::numeric("color", 4).unwrap();
        let dim = Table::new(
            "D",
            vec![
                Column::key("pk", vec![0, 1, 2, 3]),
                Column::attr("color", color, vec![0, 1, 2, 3]),
            ],
        )
        .unwrap();
        let fact = Table::new(
            "F",
            vec![
                Column::key("fk", vec![0, 0, 1, 2, 3, 3]),
                Column::measure("qty", vec![1, 2, 3, 4, 5, 6]),
            ],
        )
        .unwrap();
        Arc::new(StarSchema::new(fact, vec![Dimension::new(dim, "pk", "fk")]).unwrap())
    }

    fn batch_queries() -> Vec<StarQuery> {
        (0..4u32)
            .map(|v| StarQuery::count(format!("b{v}")).with(Predicate::point("D", "color", v)))
            .collect()
    }

    #[test]
    fn batch_charges_once_and_fuses_the_scan() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
        let queries = batch_queries();

        let scans_before = starj_engine::fact_scan_count();
        let answer = service.pm_batch_answer("t", &queries, 1.0).unwrap();
        assert_eq!(starj_engine::fact_scan_count() - scans_before, 1, "4 queries, 1 scan");
        assert_eq!(answer.answers.len(), 4);
        assert!(!answer.cached);
        let cost = answer.cost.expect("fresh batch pays");
        assert!((cost.epsilon() - 1.0).abs() < 1e-12, "one ε charge for the whole batch");
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 1.0).abs() < 1e-12);
        for a in &answer.answers {
            assert!(a.noisy_query.is_some(), "every member was perturbed");
            assert!(a.result.scalar().unwrap() >= 0.0);
        }
        let m = service.metrics();
        assert_eq!(m.fused_scans, 1);
        assert_eq!(m.fused_queries_saved, 3);
    }

    #[test]
    fn min_frequency_floor_refuses_without_spending() {
        let config = ServiceConfig { min_pass_rows: 2, ..ServiceConfig::default() };
        let service = Service::new(toy_schema(), config);
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();

        // Fact fks are [0, 0, 1, 2, 3, 3]: color = 1 admits one row — under
        // the floor of 2 — while color = 0 admits two and is served.
        let rare = StarQuery::count("rare").with(Predicate::point("D", "color", 1));
        let err = service.pm_answer("t", &rare, 0.5).unwrap_err();
        assert!(matches!(err, ServiceError::BelowMinFrequency { floor: 2, .. }), "got {err:?}");
        let usage = service.tenant_usage("t").unwrap();
        assert_eq!(usage.spent_epsilon, 0.0, "refusal at admission spends nothing");
        assert_eq!(service.metrics().admission_rejections, 1);

        let common = StarQuery::count("common").with(Predicate::point("D", "color", 0));
        service.pm_answer("t", &common, 0.5).unwrap();
        assert!(service.tenant_usage("t").unwrap().spent_epsilon > 0.0);

        // The same floor guards the batch path.
        let err = service.pm_batch_answer("t", &[common, rare], 0.5).unwrap_err();
        assert!(matches!(err, ServiceError::BelowMinFrequency { .. }));
    }

    #[test]
    fn batch_replays_from_cache_for_free() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
        let queries = batch_queries();
        let first = service.pm_batch_answer("t", &queries, 1.0).unwrap();
        let replay = service.pm_batch_answer("t", &queries, 1.0).unwrap();
        assert!(replay.cached);
        assert!(replay.cost.is_none());
        for (a, b) in first.answers.iter().zip(&replay.answers) {
            assert_eq!(a.result, b.result, "replayed answers are byte-identical");
            assert_eq!(a.noisy_query, b.noisy_query);
        }
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 1.0).abs() < 1e-12);
        assert_eq!(service.metrics().cache_hits, 1);
    }

    #[test]
    fn unsatisfiable_members_are_free_and_do_not_dilute_the_split() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
        // Two contradictory predicates on one attribute: unsatisfiable.
        let dead = StarQuery::count("dead")
            .with(Predicate::point("D", "color", 0))
            .with(Predicate::point("D", "color", 3));
        let live = StarQuery::count("live").with(Predicate::range("D", "color", 0, 3));
        let answer = service.pm_batch_answer("t", &[dead.clone(), live], 1.0).unwrap();
        assert_eq!(answer.answers[0].result.scalar().unwrap(), 0.0);
        assert!(answer.answers[0].noisy_query.is_none(), "free member never executed");
        assert!(answer.answers[1].noisy_query.is_some());
        assert_eq!(service.metrics().free_answers, 1);

        // An all-unsatisfiable batch is entirely free and is NOT cached
        // (there is no paid release to replay).
        let cached_before = service.cached_answers();
        let free = service.pm_batch_answer("t", &[dead], 1.0).unwrap();
        assert!(free.cost.is_none());
        assert_eq!(service.cached_answers(), cached_before, "free batches are not cached");
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_a_free_no_op_but_still_validates_epsilon() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(1.0).unwrap()).unwrap();
        let answer = service.pm_batch_answer("t", &[], 0.5).unwrap();
        assert!(answer.answers.is_empty());
        assert!(answer.cost.is_none());
        assert_eq!(service.tenant_usage("t").unwrap().spent_epsilon, 0.0);
        // A malformed budget is refused even with nothing to answer, like
        // every other endpoint.
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                service.pm_batch_answer("t", &[], bad),
                Err(ServiceError::InvalidBudget(_))
            ));
        }
    }

    #[test]
    fn explicit_mechanism_scan_options_survive_default_scan_threads() {
        let mut config = ServiceConfig::default();
        config.pm.scan = ScanOptions::parallel(8);
        let service = Service::new(toy_schema(), config);
        assert_eq!(
            service.core.config.pm.scan.threads, 8,
            "scan_threads=1 must not clobber pm.scan"
        );
        let threaded = ServiceConfig { scan_threads: 4, ..ServiceConfig::default() };
        let service = Service::new(toy_schema(), threaded);
        assert_eq!(service.core.config.pm.scan.threads, 4);
        assert_eq!(service.core.config.wd.scan.threads, 4);
    }

    #[test]
    fn refused_batch_counts_no_free_answers() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(0.1).unwrap()).unwrap();
        let dead = StarQuery::count("dead")
            .with(Predicate::point("D", "color", 0))
            .with(Predicate::point("D", "color", 3));
        let live = StarQuery::count("live").with(Predicate::point("D", "color", 1));
        // ε = 1.0 exceeds the 0.1 allotment: the whole batch is refused and
        // its unsatisfiable member must not be recorded as served.
        assert!(matches!(
            service.pm_batch_answer("t", &[dead, live], 1.0),
            Err(ServiceError::BudgetExhausted { .. })
        ));
        let m = service.metrics();
        assert_eq!(m.free_answers, 0);
        assert_eq!(m.fused_scans, 0);
        assert_eq!(m.budget_refusals, 1);
    }

    #[test]
    fn batch_admission_rejects_malformed_members_before_any_charge() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(1.0).unwrap()).unwrap();
        let queries = vec![
            StarQuery::count("ok").with(Predicate::point("D", "color", 1)),
            StarQuery::count("bad").with(Predicate::point("Ghost", "color", 1)),
        ];
        assert!(service.pm_batch_answer("t", &queries, 0.5).is_err());
        assert_eq!(service.tenant_usage("t").unwrap().spent_epsilon, 0.0, "nothing charged");
        assert_eq!(service.metrics().admission_rejections, 1);
    }

    #[test]
    fn scan_threads_knob_propagates_and_answers_match() {
        let queries = batch_queries();
        let run = |threads: usize| {
            let config = ServiceConfig { scan_threads: threads, ..ServiceConfig::default() };
            let service = Service::new(toy_schema(), config);
            service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
            service
                .pm_batch_answer("t", &queries, 1.0)
                .unwrap()
                .answers
                .iter()
                .map(|a| a.result.scalar().unwrap())
                .collect::<Vec<f64>>()
        };
        // Same seed and arrival order ⇒ identical noise; the thread count
        // must not change any answer.
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn coalesced_submit_parks_paid_requests_and_answers_free_ones_inline() {
        let config = ServiceConfig {
            coalesce: true,
            coalesce_window: Duration::from_micros(100),
            coalesce_workers: 1,
            ..ServiceConfig::default()
        };
        let service = Service::new(toy_schema(), config);
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();

        // A paid request parks; its budget is already reserved at submit.
        let q = StarQuery::count("q").with(Predicate::point("D", "color", 1));
        let submitted = service.pm_submit("t", &q, 0.5).unwrap();
        assert!(submitted.is_queued());
        let answer = submitted.wait().unwrap();
        assert!(!answer.cached);
        assert!(answer.noisy_query.is_some());
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 0.5).abs() < 1e-12);

        // The identical repeat resolves at submit time from the cache.
        let replay = service.pm_submit("t", &q, 0.5).unwrap();
        assert!(!replay.is_queued(), "cache hits never park");
        assert!(replay.wait().unwrap().cached);

        // Unsatisfiable queries resolve at submit time for free.
        let dead = StarQuery::count("dead")
            .with(Predicate::point("D", "color", 0))
            .with(Predicate::point("D", "color", 3));
        let free = service.pm_submit("t", &dead, 0.5).unwrap();
        assert!(!free.is_queued(), "free answers never park");
        assert!(free.wait().unwrap().cost.is_none());

        let m = service.metrics();
        assert_eq!(m.coalesced_requests, 1, "only the paid fresh request parked");
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finish_time_stale_check_refuses_a_refresh_racing_the_scan() {
        // The drain-start filter in the coalescer cannot see a refresh
        // that lands *during* the fused scan; the commit-time barrier in
        // `pm_finish` must. Simulate exactly that interleaving: submit
        // phase done, refresh lands, then the executed result tries to
        // commit.
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
        let q = StarQuery::count("q").with(Predicate::point("D", "color", 1));
        let work = match service.core.pm_phase1("t", &q, 0.5).unwrap() {
            PmPhase::Execute(work) => *work,
            PmPhase::Immediate(_) => panic!("a fresh paid query must reach the execute phase"),
        };
        let result = execute_with(&work.schema, &work.noisy, service.core.config.pm.scan).unwrap();
        service.refresh_schema(toy_schema());
        match service.core.pm_finish(work, result) {
            Err(ServiceError::StaleDataVersion { submitted: 0, current: 1 }) => {}
            other => panic!("expected StaleDataVersion, got {other:?}"),
        }
        let usage = service.tenant_usage("t").unwrap();
        assert_eq!(usage.spent_epsilon, 0.0, "refused commit must refund");
        assert_eq!(usage.in_flight_epsilon, 0.0);
        assert_eq!(service.metrics().stale_refusals, 1);
        assert_eq!(service.cached_answers(), 0, "no stale release may be cached");
    }

    #[test]
    fn refresh_schema_bumps_version_and_clears_caches() {
        let service = Service::new(toy_schema(), ServiceConfig::default());
        service.register_tenant("t", starj_noise::PrivacyBudget::pure(10.0).unwrap()).unwrap();
        let q = StarQuery::count("q").with(Predicate::range("D", "color", 0, 3));
        service.pm_answer("t", &q, 1.0).unwrap();
        assert_eq!(service.cached_answers(), 1);
        assert_eq!(service.data_version(), 0);

        let v = service.refresh_schema(toy_schema());
        assert_eq!(v, 1);
        assert_eq!(service.data_version(), 1);
        assert_eq!(service.cached_answers(), 0, "answer cache cleared");
        assert_eq!(service.cached_histograms(), 0, "W cache cleared");

        // The repeat query pays again: it is a fresh release over new data.
        let again = service.pm_answer("t", &q, 1.0).unwrap();
        assert!(!again.cached);
        assert!((service.tenant_usage("t").unwrap().spent_epsilon - 2.0).abs() < 1e-12);
    }

    #[test]
    fn refresh_schema_invalidates_the_cost_model_registry() {
        let schema = toy_schema();
        let config = starj_engine::CostConfig::default();
        let before = starj_engine::cost_model_for(&schema, &config).unwrap();
        let service = Service::new(Arc::clone(&schema), ServiceConfig::default());
        service.refresh_schema(toy_schema());
        let after = starj_engine::cost_model_for(&schema, &config).unwrap();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "the outgoing schema's cached cost model must drop on refresh"
        );
    }
}
