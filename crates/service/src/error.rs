//! Error type for the serving subsystem.

use dp_starj::CoreError;
use starj_engine::EngineError;
use starj_noise::NoiseError;
use std::fmt;

/// Errors a [`crate::Service`] can return to a caller.
///
/// The variants are ordered by where in the request pipeline they arise:
/// admission ([`ServiceError::InvalidQuery`], [`ServiceError::InvalidBudget`],
/// [`ServiceError::NoGraph`]), accounting ([`ServiceError::UnknownTenant`],
/// [`ServiceError::BudgetExhausted`]), then execution
/// ([`ServiceError::Mechanism`]). Only execution errors spend-and-refund; the
/// earlier stages fail before any budget is reserved.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The tenant's `(ε, δ)` allotment cannot absorb the requested query
    /// budget. The request was refused **before** any spending: retrying
    /// with a smaller ε may succeed, retrying with the same ε never will.
    BudgetExhausted {
        /// The refused tenant.
        tenant: String,
        /// ε the query asked for.
        requested_epsilon: f64,
        /// ε the tenant still has (reservations in flight already deducted).
        remaining_epsilon: f64,
    },
    /// The tenant was never registered with the accountant.
    UnknownTenant(String),
    /// A tenant with this id is already registered.
    DuplicateTenant(String),
    /// The query failed schema admission (unknown table/column, constraint
    /// outside its domain, non-measure aggregate target, …). Rejected before
    /// any budget was reserved.
    InvalidQuery(EngineError),
    /// The requested privacy parameters are malformed (ε ≤ 0, δ ∉ [0, 1)).
    InvalidBudget(NoiseError),
    /// DPSQL+-style minimum-frequency refusal: the cost model estimates
    /// that a predicate admits fewer fact rows than the configured floor
    /// ([`crate::ServiceConfig::min_pass_rows`]), so answering would
    /// release a statistic about a population too small to hide in.
    /// Refused at admission — **no budget was reserved or spent**.
    ///
    /// The [`fmt::Display`] message travels to untrusted callers (the
    /// gate forwards it on the wire), so it deliberately reports only the
    /// floor: the estimated count is an un-noised (on small instances
    /// exact) statistic about the very sub-floor population the guard
    /// exists to protect, and naming the predicate would reveal *which*
    /// conjunct is rare. Server-side consumers that want the detail read
    /// these fields directly (or `Debug`-format the error).
    BelowMinFrequency {
        /// Table of the offending predicate (server-side detail; not in
        /// the `Display` message).
        table: String,
        /// Attribute of the offending predicate (server-side detail; not
        /// in the `Display` message).
        attr: String,
        /// Cost-model estimated fact rows the predicate admits
        /// (server-side detail; never in the `Display` message — leaking
        /// it would undercut the guard).
        estimated_rows: f64,
        /// The configured minimum-frequency floor.
        floor: u64,
    },
    /// A k-star query was submitted to a service built without a graph.
    NoGraph,
    /// The underlying DP mechanism failed after admission; the reservation
    /// was rolled back, so the failed query spent nothing.
    Mechanism(CoreError),
    /// The budget journal is unavailable (IO error, injected fault, disk
    /// full), so the service is in **degraded mode**: cache hits and free
    /// answers keep flowing, but nothing that would spend budget can be
    /// journaled and is therefore refused. Fail-closed by design — an
    /// un-journaled spend would be forgotten by a crash and re-granted
    /// after restart, the one failure a DP accountant must never have.
    /// Any reservation this request held was refunded.
    DurabilityUnavailable {
        /// Human-readable cause (journal error message).
        reason: String,
    },
    /// An internal invariant failed while serving this request (e.g. a
    /// coalescer worker panicked mid-drain). The caller's reservation was
    /// refunded by RAII; resubmitting is safe.
    Internal(String),
    /// A [`crate::Service::refresh_schema`] landed between this request's
    /// submit (admission, reservation, perturbation against the old data
    /// version) and its coalesced drain. Answering would release a result
    /// computed over data the service no longer serves, so the request is
    /// refused and its reservation refunded — resubmit to run against the
    /// current version.
    StaleDataVersion {
        /// Data version the request was submitted against.
        submitted: u64,
        /// Data version the service was serving at drain time.
        current: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BudgetExhausted { tenant, requested_epsilon, remaining_epsilon } => {
                write!(
                    f,
                    "tenant `{tenant}` budget exhausted: requested ε = {requested_epsilon}, \
                     remaining ε = {remaining_epsilon}"
                )
            }
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            ServiceError::DuplicateTenant(t) => write!(f, "tenant `{t}` already registered"),
            ServiceError::InvalidQuery(e) => write!(f, "query rejected at admission: {e}"),
            ServiceError::InvalidBudget(e) => write!(f, "invalid privacy budget: {e}"),
            // Client-facing: floor only. The estimate (and which predicate
            // tripped it) is an un-noised statistic about a sub-floor
            // population — exactly what the guard refuses to release.
            ServiceError::BelowMinFrequency { floor, .. } => write!(
                f,
                "a predicate was refused by the minimum-frequency guard \
                 (floor {floor} rows; no budget spent)"
            ),
            ServiceError::NoGraph => {
                write!(f, "k-star queries need a service built with a graph")
            }
            ServiceError::Mechanism(e) => write!(f, "mechanism failure (budget refunded): {e}"),
            ServiceError::DurabilityUnavailable { reason } => write!(
                f,
                "budget journal unavailable — serving degraded (cache hits and free answers \
                 only, new budget spends refused, reservation refunded): {reason}"
            ),
            ServiceError::Internal(msg) => {
                write!(f, "internal service error (reservation refunded; safe to resubmit): {msg}")
            }
            ServiceError::StaleDataVersion { submitted, current } => write!(
                f,
                "data refreshed while the request was queued (submitted against version \
                 {submitted}, now serving {current}); the reservation was refunded — resubmit"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::InvalidQuery(e)
    }
}

impl From<NoiseError> for ServiceError {
    fn from(e: NoiseError) -> Self {
        ServiceError::InvalidBudget(e)
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Mechanism(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_tenant_and_amounts() {
        let e = ServiceError::BudgetExhausted {
            tenant: "acme".into(),
            requested_epsilon: 0.5,
            remaining_epsilon: 0.25,
        };
        let msg = e.to_string();
        assert!(msg.contains("acme") && msg.contains("0.5") && msg.contains("0.25"));
    }

    #[test]
    fn min_frequency_display_reveals_only_the_floor() {
        // The Display message reaches wire clients verbatim; the estimate
        // is a (near-)exact count of a sub-floor population and the
        // table/attr would reveal which conjunct is rare, so neither may
        // appear.
        let e = ServiceError::BelowMinFrequency {
            table: "Customer".into(),
            attr: "region".into(),
            estimated_rows: 3.0,
            floor: 100,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"), "floor missing from `{msg}`");
        assert!(
            !msg.contains("Customer") && !msg.contains("region") && !msg.contains('3'),
            "client-facing message leaks guard details: `{msg}`"
        );
    }

    #[test]
    fn stale_version_display_names_both_versions() {
        let e = ServiceError::StaleDataVersion { submitted: 3, current: 5 };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('5') && msg.contains("refunded"));
    }

    #[test]
    fn conversions_pick_the_right_stage() {
        let e: ServiceError = EngineError::UnknownTable("Nope".into()).into();
        assert!(matches!(e, ServiceError::InvalidQuery(_)));
        let e: ServiceError = NoiseError::InvalidEpsilon(-1.0).into();
        assert!(matches!(e, ServiceError::InvalidBudget(_)));
        let e: ServiceError = CoreError::Invalid("boom".into()).into();
        assert!(matches!(e, ServiceError::Mechanism(_)));
    }
}
