//! Service-side glue for the crash-safe budget journal (`starj-durable`).
//!
//! [`DurableConfig`] (a field of [`crate::ServiceConfig`]) points a service
//! at a journal directory; [`crate::Service::open`] opens the WAL, replays
//! whatever a previous process left there, and hands the recovered
//! per-tenant spends to the accountant so re-registered tenants resume
//! from their true (possibly over-charged, never under-charged) ledgers.
//!
//! [`DurableState`] is the shared runtime handle: the open
//! [`starj_durable::BudgetWal`] plus the **degraded-mode** latch. The
//! first journal failure flips the latch permanently (matching the WAL's
//! fail-stop contract): cache hits and free answers keep flowing, every
//! new budget spend is refused with
//! [`ServiceError::DurabilityUnavailable`], and the
//! `starj_durable_degraded` gauge goes to 1 until an operator restarts
//! the process (which re-runs recovery against what actually hit disk).

use crate::error::ServiceError;
use starj_durable::{
    BudgetWal, JournalRecord, RecordKind, Recovery, SyncPolicy, WalConfig, WalCounters,
};
use starj_noise::PrivacyBudget;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Where and how a service journals budget movements.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableConfig {
    /// Journal directory (created if missing). The router namespaces this
    /// per dataset: `<durable_root>/<dataset>`.
    pub dir: PathBuf,
    /// Fsync policy; [`SyncPolicy::Group`] is the production default.
    pub sync: SyncPolicy,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl DurableConfig {
    /// Production defaults (group fsync, 4 MiB segments) at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurableConfig { dir: dir.into(), sync: SyncPolicy::Group, segment_bytes: 4 << 20 }
    }

    pub(crate) fn wal_config(&self) -> WalConfig {
        WalConfig { dir: self.dir.clone(), sync: self.sync, segment_bytes: self.segment_bytes }
    }
}

/// Request metadata journaled alongside every settlement record, so the
/// on-disk trail answers "which query, against which data, from which
/// connection" — the same fields the telemetry audit trail carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Canonical-query hash ([`crate::query_hash`]); 0 = none.
    pub query_hash: u64,
    /// Data version the request was admitted against.
    pub data_version: u64,
    /// Wire request id (0 = in-process caller).
    pub request_id: u64,
}

/// What recovery found, kept for metrics exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplaySummary {
    /// Valid records replayed at startup.
    pub records: u64,
    /// Commit records among them (the ones that rebuilt ledgers).
    pub commits: u64,
    /// Segments scanned.
    pub segments: u64,
    /// Whether a torn tail was truncated.
    pub torn_tail_truncated: bool,
}

impl ReplaySummary {
    fn of(recovery: &Recovery) -> Self {
        ReplaySummary {
            records: recovery.records,
            commits: recovery.commits,
            segments: recovery.segments,
            torn_tail_truncated: recovery.torn_tail_truncated,
        }
    }
}

/// Point-in-time durability status (rendered as `starj_durable_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableStatus {
    /// True once a journal failure has latched degraded mode.
    pub degraded: bool,
    /// Journal append/fsync/rotation counters since open.
    pub counters: WalCounters,
    /// Journal failures observed (each also latches `degraded`).
    pub journal_errors: u64,
    /// Spend attempts refused because the journal was unavailable.
    pub degraded_refusals: u64,
    /// What startup recovery replayed.
    pub replay: ReplaySummary,
}

/// The open journal plus the degraded-mode latch. One per `Service`,
/// shared (`Arc`) into every reservation it issues.
#[derive(Debug)]
pub struct DurableState {
    wal: BudgetWal,
    degraded: AtomicBool,
    journal_errors: AtomicU64,
    degraded_refusals: AtomicU64,
    replay: ReplaySummary,
}

impl DurableState {
    pub(crate) fn new(wal: BudgetWal, recovery: &Recovery) -> Self {
        DurableState {
            wal,
            degraded: AtomicBool::new(false),
            journal_errors: AtomicU64::new(0),
            degraded_refusals: AtomicU64::new(0),
            replay: ReplaySummary::of(recovery),
        }
    }

    /// True once a journal failure has flipped the service into degraded
    /// mode (cache hits and free answers only; spends refused).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    pub(crate) fn note_degraded_refusal(&self) {
        self.degraded_refusals.fetch_add(1, Ordering::Relaxed);
    }

    fn record(
        kind: RecordKind,
        tenant: &str,
        cost: &PrivacyBudget,
        meta: &RecordMeta,
    ) -> JournalRecord {
        JournalRecord {
            kind,
            tenant: tenant.to_string(),
            query_hash: meta.query_hash,
            epsilon: cost.epsilon(),
            delta: cost.delta(),
            data_version: meta.data_version,
            request_id: meta.request_id,
        }
    }

    fn latch_degraded(&self, reason: String) -> ServiceError {
        self.journal_errors.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Release);
        ServiceError::DurabilityUnavailable { reason }
    }

    /// Fail-closed append for the spend path (`Reserve`, `Commit`): the
    /// record must be durable before the caller may proceed. Refuses
    /// immediately in degraded mode; a fresh journal failure latches
    /// degraded mode and refuses.
    pub(crate) fn append_spend(
        &self,
        kind: RecordKind,
        tenant: &str,
        cost: &PrivacyBudget,
        meta: &RecordMeta,
    ) -> Result<(), ServiceError> {
        if self.is_degraded() {
            self.note_degraded_refusal();
            return Err(ServiceError::DurabilityUnavailable {
                reason: "journal broken by an earlier failure; restart to recover".into(),
            });
        }
        self.wal.append(&Self::record(kind, tenant, cost, meta)).map_err(|e| {
            self.note_degraded_refusal();
            self.latch_degraded(e.to_string())
        })
    }

    /// Best-effort append for non-spend records (`Refund`, `Refusal`).
    /// Losing one can only *over*-state the recovered spend (a refund that
    /// never hit disk was already applied in memory and replay ignores
    /// refunds anyway), so the in-memory settlement proceeds regardless;
    /// a failure still latches degraded mode.
    pub(crate) fn append_note(
        &self,
        kind: RecordKind,
        tenant: &str,
        cost: &PrivacyBudget,
        meta: &RecordMeta,
    ) {
        if self.is_degraded() {
            return;
        }
        if let Err(e) = self.wal.append(&Self::record(kind, tenant, cost, meta)) {
            let _ = self.latch_degraded(e.to_string());
        }
    }

    /// Current durability status for metrics exposition.
    pub fn status(&self) -> DurableStatus {
        DurableStatus {
            degraded: self.is_degraded(),
            counters: self.wal.counters(),
            journal_errors: self.journal_errors.load(Ordering::Relaxed),
            degraded_refusals: self.degraded_refusals.load(Ordering::Relaxed),
            replay: self.replay,
        }
    }
}

/// Journal context carried by a [`crate::accountant::Reservation`] so every
/// settlement path (commit, rollback, RAII drop) journals through the same
/// shared state with the same request metadata.
#[derive(Debug, Clone)]
pub struct JournalCtx {
    pub(crate) state: Arc<DurableState>,
    pub(crate) meta: RecordMeta,
}

impl JournalCtx {
    /// Bind the shared durable state to one request's metadata.
    pub fn new(state: Arc<DurableState>, meta: RecordMeta) -> Self {
        JournalCtx { state, meta }
    }
}
