//! The group-commit scan coalescer: a queued front door that fuses
//! concurrent single-query traffic into shared fact scans.
//!
//! PR 2 gave the engine fused multi-query scans, but only *explicit*
//! batches used them — N tenants concurrently asking one question each
//! still paid N scans. The coalescer closes that gap with the group-commit
//! idiom (as in write-ahead logging): incoming `pm_answer`/`wd_answer`
//! calls park in a bounded queue, and a small worker pool drains it — after
//! [`crate::ServiceConfig::coalesce_window`] elapses or
//! [`crate::ServiceConfig::max_batch`] requests pile up — partitions the
//! drained requests by compatibility, and answers each partition through
//! **one** fused scan, waking every caller with its own answer.
//!
//! # Why coalescing is invisible to DP semantics
//!
//! Everything privacy-relevant happens at **submit time, on the caller's
//! thread, in arrival order**: admission, canonicalization (free
//! unsatisfiable answers), cache lookup, the atomic budget reservation, the
//! per-request RNG derivation, and the *perturbation itself* (PM's noisy
//! query / WD's reconstructed weighted rows). What parks in the queue is
//! already a fixed, noisy artifact; the worker merely *evaluates* it, and
//! evaluating a fixed noisy query is post-processing — it spends nothing
//! and can be fused, reordered, or histogram-factored freely. Hence:
//!
//! * **answers** are bit-identical to the sequential path (the fused kernel
//!   accumulates each query exactly as a solo scan would);
//! * **budget ledgers** end in exactly the same state (reserve at submit,
//!   commit at wake, identical amounts — no double-charge, no free ride);
//! * **RNG draw order** is unchanged (derived per request from the arrival
//!   counter before anything parks).
//!
//! `tests/prop_coalesce.rs` pins all three down property-style.
//!
//! # Partitioning
//!
//! A drained batch splits by compatibility, preserving arrival order within
//! each partition:
//!
//! * **PM requests** fuse per data version into one
//!   [`ScanPlan::execute_batch`](starj_engine::ScanPlan) scan — binary
//!   queries of any aggregate/grouping mix safely, because per-query
//!   accumulation is independent.
//! * **WD requests** group by `(data version, normalized axis set)`. A
//!   partition whose joint code space fits the dense cap answers through
//!   the shared [`WeightHistogram`](starj_engine::WeightHistogram) — built
//!   once (one scan) and cached in [`crate::wcache`], so warm traffic is
//!   scan-free. Oversized axis sets fall back to one fused
//!   `execute_weighted_batch` scan whose per-query row loops keep answers
//!   independent of batch composition.

use crate::error::ServiceError;
use crate::metrics::ServiceMetrics;
use crate::service::{PmWork, ServiceAnswer, ServiceCore, WdWork};
use dp_starj::CoreError;
use starj_engine::{execute_batch_with, plan::AxisNames, StarQuery};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One parked request.
#[derive(Debug)]
pub(crate) enum Job {
    Pm(PmJob),
    Wd(WdJob),
}

#[derive(Debug)]
pub(crate) struct PmJob {
    pub work: PmWork,
    pub slot: SlotHandle<ServiceAnswer>,
}

#[derive(Debug)]
pub(crate) struct WdJob {
    pub work: WdWork,
    pub slot: SlotHandle<crate::service::WorkloadAnswer>,
}

// ---- pending answers ------------------------------------------------------

#[derive(Debug)]
struct Slot<T> {
    value: Mutex<Option<Result<T, ServiceError>>>,
    ready: Condvar,
}

/// The waiting half of a parked request: blocks until a coalescer worker
/// fills in the answer. Returned by [`crate::Service::pm_submit`] /
/// [`crate::Service::wd_submit`] inside [`Submitted::Queued`].
#[derive(Debug)]
pub struct Pending<T> {
    slot: Arc<Slot<T>>,
}

/// The filling half, carried by the parked job. Dropping it unfilled (a
/// worker panicking mid-batch, a job discarded on shutdown) fills a typed
/// error instead, so a caller blocked in [`Pending::wait`] can never be
/// stranded.
#[derive(Debug)]
pub(crate) struct SlotHandle<T> {
    slot: Arc<Slot<T>>,
    filled: bool,
}

pub(crate) fn pending_pair<T>() -> (Pending<T>, SlotHandle<T>) {
    let slot = Arc::new(Slot { value: Mutex::new(None), ready: Condvar::new() });
    (Pending { slot: Arc::clone(&slot) }, SlotHandle { slot, filled: false })
}

impl<T> Pending<T> {
    /// Blocks until the request is answered (or failed) by a worker.
    pub fn wait(self) -> Result<T, ServiceError> {
        let mut value = self.slot.value.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = value.take() {
                return result;
            }
            value = self.slot.ready.wait(value).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> SlotHandle<T> {
    pub(crate) fn fill(mut self, result: Result<T, ServiceError>) {
        self.set(result);
    }

    fn set(&mut self, result: Result<T, ServiceError>) {
        self.filled = true;
        *self.slot.value.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.slot.ready.notify_all();
    }
}

impl<T> Drop for SlotHandle<T> {
    fn drop(&mut self) {
        if !self.filled {
            self.set(Err(ServiceError::Mechanism(CoreError::Invalid(
                "coalescer worker failed before answering this request; \
                 the budget reservation was refunded"
                    .into(),
            ))));
        }
    }
}

/// The outcome of a submit: answered on the spot (free, cached, or the
/// coalescer is disabled) or parked for a group-commit drain.
#[derive(Debug)]
pub enum Submitted<T> {
    /// Answered synchronously at submit time.
    Ready(T),
    /// Parked; [`Pending::wait`] blocks for the worker.
    Queued(Pending<T>),
}

impl<T> Submitted<T> {
    /// The answer, blocking if it is still queued.
    pub fn wait(self) -> Result<T, ServiceError> {
        match self {
            Submitted::Ready(v) => Ok(v),
            Submitted::Queued(p) => p.wait(),
        }
    }

    /// True iff the request parked in the coalescer queue.
    pub fn is_queued(&self) -> bool {
        matches!(self, Submitted::Queued(_))
    }
}

// ---- the queue and worker pool --------------------------------------------

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    /// Workers wait here for arrivals (and shutdown).
    arrived: Condvar,
    /// Submitters wait here for queue space (bounded queue backpressure).
    drained: Condvar,
    window: Duration,
    max_batch: usize,
    capacity: usize,
}

/// The queue plus its worker pool. Owned by [`crate::Service`]; dropping it
/// drains every remaining request and joins the workers, so no caller is
/// ever left waiting on an unfilled slot.
#[derive(Debug)]
pub(crate) struct Coalescer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Coalescer {
    pub(crate) fn start(core: Arc<ServiceCore>) -> Self {
        let config = &core.config;
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
            drained: Condvar::new(),
            window: config.coalesce_window,
            max_batch: config.max_batch.max(1),
            capacity: config.coalesce_queue.max(1),
        });
        let workers = (0..config.coalesce_workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("starj-coalesce-{i}"))
                    .spawn(move || worker_loop(&core, &shared))
                    .expect("spawn coalescer worker")
            })
            .collect();
        Coalescer { shared, workers }
    }

    /// Parks a job, blocking while the bounded queue is full.
    pub(crate) fn enqueue(&self, job: Job) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.queue.len() >= self.shared.capacity && !state.shutdown {
            state = self.shared.drained.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.queue.push_back(job);
        drop(state);
        self.shared.arrived.notify_all();
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
        self.shared.arrived.notify_all();
        self.shared.drained.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker: wait for arrivals, give the group-commit window a chance to
/// fill the batch, drain up to `max_batch`, answer, repeat. The drain loop
/// re-checks queue state after every wakeup, so a request arriving during a
/// drain (or a spurious wakeup) can never be lost — degenerate
/// `window = 0` / `max_batch = 1` configs reduce to a plain work queue.
fn worker_loop(core: &Arc<ServiceCore>, shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Job> = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared.arrived.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            if !shared.window.is_zero() {
                // Group-commit window: hold the drain briefly so concurrent
                // traffic can pile into one fused scan.
                let deadline = Instant::now() + shared.window;
                while state.queue.len() < shared.max_batch && !state.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = shared
                        .arrived
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            let take = state.queue.len().min(shared.max_batch);
            state.queue.drain(..take).collect()
        };
        shared.drained.notify_all();
        // A panic while answering must not kill the worker: the batch's
        // jobs drop inside the unwind — refunding each reservation (RAII)
        // and error-filling each slot (SlotHandle::drop) — and the worker
        // lives on to serve the next drain. (Unwind safety: all shared
        // state is poison-recovering locks, atomics, or immutable data.)
        let run = std::panic::AssertUnwindSafe(|| process_batch(core, batch));
        let _ = std::panic::catch_unwind(run);
    }
}

/// Answers one drained batch: partition by compatibility (arrival order
/// preserved within each partition), one fused scan per partition.
pub(crate) fn process_batch(core: &ServiceCore, jobs: Vec<Job>) {
    if jobs.is_empty() {
        return;
    }
    ServiceMetrics::add(&core.metrics.coalesced_requests, jobs.len() as u64);
    ServiceMetrics::inc(&core.metrics.coalesced_batches);

    let mut pm_parts: Vec<(u64, Vec<PmJob>)> = Vec::new();
    let mut wd_parts: Vec<((u64, AxisNames), Vec<WdJob>)> = Vec::new();
    for job in jobs {
        match job {
            Job::Pm(j) => {
                let version = j.work.version;
                match pm_parts.iter_mut().find(|(v, _)| *v == version) {
                    Some((_, part)) => part.push(j),
                    None => pm_parts.push((version, vec![j])),
                }
            }
            Job::Wd(j) => {
                let key = (j.work.version, j.work.axes.clone());
                match wd_parts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, part)) => part.push(j),
                    None => wd_parts.push((key, vec![j])),
                }
            }
        }
    }
    for (_, part) in pm_parts {
        answer_pm_partition(core, part);
    }
    for ((_, axes), part) in wd_parts {
        answer_wd_partition(core, &axes, part);
    }
}

/// One fused binary scan answers every PM job of a partition.
fn answer_pm_partition(core: &ServiceCore, jobs: Vec<PmJob>) {
    let schema = Arc::clone(&jobs[0].work.schema);
    let noisy: Vec<StarQuery> = jobs.iter().map(|j| j.work.noisy.clone()).collect();
    match execute_batch_with(&schema, &noisy, core.config.pm.scan) {
        Ok(results) => {
            if jobs.len() > 1 {
                ServiceMetrics::inc(&core.metrics.fused_scans);
                ServiceMetrics::add(&core.metrics.fused_queries_saved, jobs.len() as u64 - 1);
            }
            for (job, result) in jobs.into_iter().zip(results) {
                job.slot.fill(core.pm_finish(job.work, result));
            }
        }
        Err(e) => {
            // Reservations drop with the jobs → every member refunds.
            ServiceMetrics::add(&core.metrics.mechanism_failures, jobs.len() as u64);
            for job in jobs {
                job.slot.fill(Err(ServiceError::Mechanism(CoreError::Engine(e.clone()))));
            }
        }
    }
}

/// One shared W histogram (or one fused weighted scan) answers every WD job
/// of an axis-compatible partition.
fn answer_wd_partition(core: &ServiceCore, axes: &[(String, String)], jobs: Vec<WdJob>) {
    let schema = Arc::clone(&jobs[0].work.schema);
    let version = jobs[0].work.version;
    let batches: Vec<&[starj_engine::WeightedQuery]> =
        jobs.iter().map(|j| j.work.rows.as_slice()).collect();
    match core.wd_partition_answers(&schema, version, axes, jobs[0].work.space, &batches) {
        Ok(answer_sets) => {
            for (job, answers) in jobs.into_iter().zip(answer_sets) {
                job.slot.fill(core.wd_finish(job.work, answers));
            }
        }
        Err(e) => {
            ServiceMetrics::add(&core.metrics.mechanism_failures, jobs.len() as u64);
            for job in jobs {
                job.slot.fill(Err(e.clone()));
            }
        }
    }
}
