//! The group-commit scan coalescer: a queued front door that fuses
//! concurrent single-query traffic into shared fact scans.
//!
//! PR 2 gave the engine fused multi-query scans, but only *explicit*
//! batches used them — N tenants concurrently asking one question each
//! still paid N scans. The coalescer closes that gap with the group-commit
//! idiom (as in write-ahead logging): incoming `pm_answer`/`wd_answer`
//! calls park in a bounded queue, and a small worker pool drains it — after
//! [`crate::ServiceConfig::coalesce_window`] elapses or
//! [`crate::ServiceConfig::max_batch`] requests pile up — partitions the
//! drained requests by compatibility, and answers each partition through
//! **one** fused scan, waking every caller with its own answer. With
//! [`crate::ServiceConfig::coalesce_window_max`] set, the hold window is
//! *adaptive*: EWMAs over arrival gaps and observed queue depth collapse
//! it to zero when traffic is too sparse or too serial to coalesce (idle
//! and single-client requests stop paying the window tax) and stretch it —
//! up to the bound — under genuinely concurrent burst.
//!
//! # Why coalescing is invisible to DP semantics
//!
//! Everything privacy-relevant happens at **submit time, on the caller's
//! thread, in arrival order**: admission, canonicalization (free
//! unsatisfiable answers), cache lookup, the atomic budget reservation, the
//! per-request RNG derivation, and the *perturbation itself* (PM's noisy
//! query / WD's reconstructed weighted rows). What parks in the queue is
//! already a fixed, noisy artifact; the worker merely *evaluates* it, and
//! evaluating a fixed noisy query is post-processing — it spends nothing
//! and can be fused, reordered, or histogram-factored freely. Hence:
//!
//! * **answers** are bit-identical to the sequential path (the fused kernel
//!   accumulates each query exactly as a solo scan would);
//! * **budget ledgers** end in exactly the same state (reserve at submit,
//!   commit at wake, identical amounts — no double-charge, no free ride);
//! * **RNG draw order** is unchanged (derived per request from the arrival
//!   counter before anything parks).
//!
//! `tests/prop_coalesce.rs` pins all three down property-style.
//!
//! # Partitioning
//!
//! A drained batch splits by compatibility, preserving arrival order within
//! each partition:
//!
//! * **PM requests** fuse per data version into one
//!   [`ScanPlan::execute_batch`](starj_engine::ScanPlan) scan — binary
//!   queries of any aggregate/grouping mix safely, because per-query
//!   accumulation is independent.
//! * **WD requests** group by `(data version, normalized axis set)`. A
//!   partition whose joint code space fits the dense cap answers through
//!   the shared [`WeightHistogram`](starj_engine::WeightHistogram) — built
//!   once (one scan) and cached in [`crate::wcache`], so warm traffic is
//!   scan-free. Oversized axis sets fall back to one fused
//!   `execute_weighted_batch` scan whose per-query row loops keep answers
//!   independent of batch composition.

use crate::error::ServiceError;
use crate::metrics::ServiceMetrics;
use crate::service::{PmWork, ServiceAnswer, ServiceCore, WdWork};
use dp_starj::CoreError;
use starj_engine::{execute_batch_with, plan::AxisNames, StarQuery};
use starj_telemetry::{cost_counters, CostCounters, Stage};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One parked request.
#[derive(Debug)]
pub(crate) enum Job {
    Pm(PmJob),
    Wd(WdJob),
}

impl Job {
    /// The tenant that submitted this job — the fairness key the queue
    /// lanes and per-tenant cap are keyed on.
    pub(crate) fn tenant(&self) -> &str {
        match self {
            Job::Pm(j) => &j.work.tenant,
            Job::Wd(j) => &j.work.tenant,
        }
    }

    /// Data version the job's submit phase reserved and perturbed against.
    fn version(&self) -> u64 {
        match self {
            Job::Pm(j) => j.work.version,
            Job::Wd(j) => j.work.version,
        }
    }

    /// Refuses the job with a typed stale-version error. Dropping the
    /// carried work unit drops its un-committed reservation, so the refusal
    /// refunds automatically (RAII).
    fn refuse_stale(self, current: u64) {
        let submitted = self.version();
        let err = ServiceError::StaleDataVersion { submitted, current };
        match self {
            Job::Pm(j) => j.slot.fill(Err(err)),
            Job::Wd(j) => j.slot.fill(Err(err)),
        }
    }
}

#[derive(Debug)]
pub(crate) struct PmJob {
    pub work: PmWork,
    pub slot: SlotHandle<ServiceAnswer>,
}

#[derive(Debug)]
pub(crate) struct WdJob {
    pub work: WdWork,
    pub slot: SlotHandle<crate::service::WorkloadAnswer>,
}

// ---- pending answers ------------------------------------------------------

#[derive(Debug)]
struct Slot<T> {
    value: Mutex<Option<Result<T, ServiceError>>>,
    ready: Condvar,
}

/// The waiting half of a parked request: blocks until a coalescer worker
/// fills in the answer. Returned by [`crate::Service::pm_submit`] /
/// [`crate::Service::wd_submit`] inside [`Submitted::Queued`].
#[derive(Debug)]
pub struct Pending<T> {
    slot: Arc<Slot<T>>,
}

/// The filling half, carried by the parked job. Dropping it unfilled (a
/// worker panicking mid-batch, a job discarded on shutdown) fills a typed
/// error instead, so a caller blocked in [`Pending::wait`] can never be
/// stranded.
#[derive(Debug)]
pub(crate) struct SlotHandle<T> {
    slot: Arc<Slot<T>>,
    filled: bool,
}

pub(crate) fn pending_pair<T>() -> (Pending<T>, SlotHandle<T>) {
    let slot = Arc::new(Slot { value: Mutex::new(None), ready: Condvar::new() });
    (Pending { slot: Arc::clone(&slot) }, SlotHandle { slot, filled: false })
}

impl<T> Pending<T> {
    /// Blocks until the request is answered (or failed) by a worker.
    pub fn wait(self) -> Result<T, ServiceError> {
        let mut value = self.slot.value.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = value.take() {
                return result;
            }
            value = self.slot.ready.wait(value).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> SlotHandle<T> {
    pub(crate) fn fill(mut self, result: Result<T, ServiceError>) {
        self.set(result);
    }

    fn set(&mut self, result: Result<T, ServiceError>) {
        self.filled = true;
        *self.slot.value.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.slot.ready.notify_all();
    }
}

impl<T> Drop for SlotHandle<T> {
    fn drop(&mut self) {
        // A handle dropped unfilled means the worker unwound (panicked)
        // before answering: wake the parked caller with a typed internal
        // refusal. The job's reservation refunds alongside via its own
        // RAII drop, so the caller can safely resubmit.
        if !self.filled {
            self.set(Err(ServiceError::Internal(
                "coalescer worker panicked before answering this request; \
                 the budget reservation was refunded"
                    .into(),
            )));
        }
    }
}

/// The outcome of a submit: answered on the spot (free, cached, or the
/// coalescer is disabled) or parked for a group-commit drain.
#[derive(Debug)]
pub enum Submitted<T> {
    /// Answered synchronously at submit time.
    Ready(T),
    /// Parked; [`Pending::wait`] blocks for the worker.
    Queued(Pending<T>),
}

impl<T> Submitted<T> {
    /// The answer, blocking if it is still queued.
    pub fn wait(self) -> Result<T, ServiceError> {
        match self {
            Submitted::Ready(v) => Ok(v),
            Submitted::Queued(p) => p.wait(),
        }
    }

    /// True iff the request parked in the coalescer queue.
    pub fn is_queued(&self) -> bool {
        matches!(self, Submitted::Queued(_))
    }
}

// ---- the fair queue -------------------------------------------------------

/// A multi-tenant fair queue: one FIFO lane per tenant, drained round-robin.
///
/// FIFO across all tenants (the original design) lets one flooding tenant
/// put its whole backlog in front of everybody else's single requests. The
/// fair queue fixes both halves of that:
///
/// * **round-robin drain** — a drain takes one job per tenant per rotation
///   (arrival order preserved *within* each tenant's lane), and the
///   rotation cursor persists across drains, so under contention every
///   tenant's head-of-line job is at most one rotation from service;
/// * **per-tenant cap** — enqueue blocks a tenant whose own lane is at
///   [`crate::ServiceConfig::coalesce_tenant_queue`], while other tenants
///   keep enqueueing freely; the flooder backpressures itself instead of
///   the fleet.
///
/// Reordering jobs across tenants is invisible to DP semantics: everything
/// privacy-relevant (RNG by arrival index, perturbation, reservation)
/// already happened at submit time, so answers and ledgers stay
/// bit-identical to any other drain order (`tests/prop_coalesce.rs`).
#[derive(Debug, Default)]
pub(crate) struct FairQueue {
    /// Per-tenant FIFO lanes. Lanes are removed when emptied, bounding the
    /// map by the number of tenants with parked work.
    lanes: HashMap<String, VecDeque<Job>>,
    /// Tenants with non-empty lanes, in round-robin rotation order. A lane
    /// that empties leaves the rotation; a tenant whose lane goes from
    /// empty to non-empty joins at the tail.
    rotation: VecDeque<String>,
    len: usize,
}

impl FairQueue {
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Jobs currently parked for one tenant.
    pub(crate) fn tenant_len(&self, tenant: &str) -> usize {
        self.lanes.get(tenant).map_or(0, VecDeque::len)
    }

    pub(crate) fn push(&mut self, job: Job) {
        let tenant = job.tenant().to_string();
        let lane = self.lanes.entry(tenant.clone()).or_default();
        if lane.is_empty() {
            self.rotation.push_back(tenant);
        }
        lane.push_back(job);
        self.len += 1;
    }

    /// Takes up to `max` jobs, one per tenant per rotation. The rotation
    /// cursor carries across calls: a tenant served this drain goes to the
    /// back of the line for the next one.
    pub(crate) fn drain_round_robin(&mut self, max: usize) -> Vec<Job> {
        let mut out = Vec::with_capacity(max.min(self.len));
        while out.len() < max {
            let Some(tenant) = self.rotation.pop_front() else { break };
            let lane = self.lanes.get_mut(&tenant).expect("rotation tracks live lanes");
            out.push(lane.pop_front().expect("rotation holds only non-empty lanes"));
            self.len -= 1;
            if lane.is_empty() {
                self.lanes.remove(&tenant);
            } else {
                self.rotation.push_back(tenant);
            }
        }
        out
    }
}

// ---- the queue and worker pool --------------------------------------------

/// EWMA smoothing factor for the arrival-gap estimate: each new gap
/// contributes 20%, so the estimate settles within a handful of arrivals
/// without chasing every jittery gap.
const EWMA_ALPHA: f64 = 0.2;

/// How many expected arrival gaps the adaptive window holds a drain open
/// for: long enough to accumulate a meaningful fused batch under burst,
/// short enough that the wait stays proportional to the traffic itself.
const WINDOW_STRETCH: f64 = 8.0;

/// Queue-depth EWMA above which the adaptive window may open. A lone
/// client — however fast — sees depth 1 at every one of its own enqueues
/// (the queue drains before it returns), so gap speed alone cannot
/// distinguish "one fast client" (fusing gains nothing, the hold is pure
/// latency tax) from "many concurrent clients" (fusing shines). Depth can:
/// concurrent traffic piles jobs behind the window, pushing the average
/// depth above 1. Requiring the EWMA to clear this threshold keeps a
/// single-client stream permanently collapsed instead of oscillating
/// open (latency grows) → gaps widen → closed (latency shrinks) → open.
const DEPTH_OPEN: f64 = 1.25;

#[derive(Debug, Default)]
struct QueueState {
    queue: FairQueue,
    shutdown: bool,
    /// Previous enqueue instant — the raw signal the adaptive window
    /// derives arrival gaps from (`None` until the first arrival).
    last_arrival: Option<Instant>,
    /// EWMA of inter-arrival gaps in nanoseconds (0 until two arrivals).
    ewma_gap_ns: f64,
    /// EWMA of the queue depth observed at each enqueue (including the
    /// arriving job) — the concurrency signal gating [`DEPTH_OPEN`].
    ewma_depth: f64,
    /// The current adaptive group-commit window. Only consulted when
    /// [`Shared::window_max`] is non-zero; otherwise the fixed
    /// [`Shared::window`] applies unchanged.
    window: Duration,
}

impl QueueState {
    /// Folds one arrival (its gap and the queue depth it observed) into
    /// the EWMAs and re-derives the effective window (adaptive mode only;
    /// called under the queue mutex).
    ///
    /// The decision rule: a drain stays open only while *both* signals say
    /// fusing can pay — arrivals tight enough that the fixed window would
    /// capture a second request (EWMA gap below it), **and** genuinely
    /// concurrent traffic (EWMA depth at or above [`DEPTH_OPEN`]; a lone
    /// client always measures depth 1 and never earns a hold). Otherwise
    /// the window collapses to zero and idle requests stop paying the
    /// window tax. When it opens, it stretches to [`WINDOW_STRETCH`]
    /// expected gaps, bounded by `max`, so bursts fill fused batches.
    /// Window choice only regroups batches — answers and ledgers are
    /// batch-invariant — so this never touches DP semantics.
    fn note_arrival(&mut self, now: Instant, depth: usize, fixed: Duration, max: Duration) {
        let depth = depth.max(1) as f64;
        let Some(prev) = self.last_arrival.replace(now) else {
            // First arrival: no gap signal yet — start from the fixed
            // window so a cold coalescer behaves exactly like before.
            self.ewma_depth = depth;
            self.window = fixed.min(max);
            return;
        };
        let gap = now.saturating_duration_since(prev).as_nanos() as f64;
        self.ewma_gap_ns = if self.ewma_gap_ns == 0.0 {
            gap
        } else {
            (1.0 - EWMA_ALPHA) * self.ewma_gap_ns + EWMA_ALPHA * gap
        };
        self.ewma_depth = (1.0 - EWMA_ALPHA) * self.ewma_depth + EWMA_ALPHA * depth;
        // Idle threshold: the fixed window when set, else the adaptive cap.
        let threshold = if fixed.is_zero() { max } else { fixed.min(max) };
        let threshold_ns = threshold.as_nanos() as f64;
        let next = if self.ewma_gap_ns >= threshold_ns || self.ewma_depth < DEPTH_OPEN {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.ewma_gap_ns * WINDOW_STRETCH) as u64).min(max)
        };
        if next != self.window {
            self.window = next;
            CostCounters::add(&cost_counters().window_adjustments, 1);
        }
    }
}

#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    /// Workers wait here for arrivals (and shutdown).
    arrived: Condvar,
    /// Submitters wait here for queue space (bounded queue backpressure).
    drained: Condvar,
    window: Duration,
    /// Non-zero turns the adaptive window on (see
    /// [`crate::ServiceConfig::coalesce_window_max`]); zero keeps the
    /// fixed `window` behavior.
    window_max: Duration,
    max_batch: usize,
    capacity: usize,
    /// Per-tenant lane capacity; a tenant at its cap blocks only itself.
    tenant_capacity: usize,
}

/// The queue plus its worker pool. Owned by [`crate::Service`]; dropping it
/// drains every remaining request and joins the workers, so no caller is
/// ever left waiting on an unfilled slot.
#[derive(Debug)]
pub(crate) struct Coalescer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Coalescer {
    pub(crate) fn start(core: Arc<ServiceCore>) -> Self {
        let config = &core.config;
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
            drained: Condvar::new(),
            window: config.coalesce_window,
            window_max: config.coalesce_window_max,
            max_batch: config.max_batch.max(1),
            capacity: config.coalesce_queue.max(1),
            tenant_capacity: config.coalesce_tenant_queue.max(1),
        });
        let workers = (0..config.coalesce_workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("starj-coalesce-{i}"))
                    .spawn(move || worker_loop(&core, &shared))
                    .expect("spawn coalescer worker")
            })
            .collect();
        Coalescer { shared, workers }
    }

    /// Parks a job, blocking while the bounded queue is full — globally, or
    /// for this job's tenant lane (the per-tenant cap backpressures a
    /// flooding tenant without blocking anyone else's submits).
    pub(crate) fn enqueue(&self, job: Job) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        while (state.queue.len() >= self.shared.capacity
            || state.queue.tenant_len(job.tenant()) >= self.shared.tenant_capacity)
            && !state.shutdown
        {
            state = self.shared.drained.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.queue.push(job);
        if !self.shared.window_max.is_zero() {
            let depth = state.queue.len();
            state.note_arrival(Instant::now(), depth, self.shared.window, self.shared.window_max);
        }
        drop(state);
        self.shared.arrived.notify_all();
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).shutdown = true;
        self.shared.arrived.notify_all();
        self.shared.drained.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker: wait for arrivals, give the group-commit window a chance to
/// fill the batch, drain up to `max_batch`, answer, repeat. The drain loop
/// re-checks queue state after every wakeup, so a request arriving during a
/// drain (or a spurious wakeup) can never be lost — degenerate
/// `window = 0` / `max_batch = 1` configs reduce to a plain work queue.
fn worker_loop(core: &Arc<ServiceCore>, shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Job> = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared.arrived.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            // Fixed window by default; with adaptation on, the window the
            // arrival stream has earned so far (re-read each drain, so a
            // traffic shift takes effect on the very next batch).
            let window = if shared.window_max.is_zero() { shared.window } else { state.window };
            if !window.is_zero() {
                // Group-commit window: hold the drain briefly so concurrent
                // traffic can pile into one fused scan.
                let deadline = Instant::now() + window;
                while state.queue.len() < shared.max_batch && !state.shutdown {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = shared
                        .arrived
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            state.queue.drain_round_robin(shared.max_batch)
        };
        shared.drained.notify_all();
        // A panic while answering must not kill the worker: the batch's
        // jobs drop inside the unwind — refunding each reservation (RAII)
        // and error-filling each slot (SlotHandle::drop) — and the worker
        // lives on to serve the next drain. (Unwind safety: all shared
        // state is poison-recovering locks, atomics, or immutable data.)
        let run = std::panic::AssertUnwindSafe(|| process_batch(core, batch));
        let _ = std::panic::catch_unwind(run);
    }
}

/// Answers one drained batch: partition by compatibility (arrival order
/// preserved within each partition), one fused scan per partition.
pub(crate) fn process_batch(core: &ServiceCore, jobs: Vec<Job>) {
    if jobs.is_empty() {
        return;
    }
    // Fault seam: the panic-containment regression test arms a Panic here
    // to prove the unwind refunds every reservation, error-fills every
    // slot, and leaves the worker alive for the next drain.
    if let Some(plan) = &core.config.fault {
        plan.trip("coalesce.drain");
    }
    ServiceMetrics::add(&core.metrics.coalesced_requests, jobs.len() as u64);
    ServiceMetrics::inc(&core.metrics.coalesced_batches);

    // Stale-version refusal, fast path: a `refresh_schema` that landed
    // while these jobs were queued means their submit-time snapshot is no
    // longer what the service serves, so refuse them before wasting a scan
    // (typed error; the work unit drops un-committed, refunding the
    // reservation). This filter alone is a check-then-scan race — a
    // refresh can still land *during* the fused scan — so the actual
    // barrier is `ServiceCore::stale_check` at commit time inside
    // `pm_finish`/`wd_finish`, which re-reads the version right before the
    // reservation commits. Cache-key isolation alone is not enough either
    // way: it only stops *replays*, not the committed release of an answer
    // computed against the old instance.
    let current = core.snapshot().1;
    let jobs: Vec<Job> = jobs
        .into_iter()
        .filter_map(|job| {
            if job.version() == current {
                Some(job)
            } else {
                ServiceMetrics::inc(&core.metrics.stale_refusals);
                job.refuse_stale(current);
                None
            }
        })
        .collect();

    let mut pm_parts: Vec<(u64, Vec<PmJob>)> = Vec::new();
    let mut wd_parts: Vec<((u64, AxisNames), Vec<WdJob>)> = Vec::new();
    for job in jobs {
        match job {
            Job::Pm(j) => {
                let version = j.work.version;
                match pm_parts.iter_mut().find(|(v, _)| *v == version) {
                    Some((_, part)) => part.push(j),
                    None => pm_parts.push((version, vec![j])),
                }
            }
            Job::Wd(j) => {
                let key = (j.work.version, j.work.axes.clone());
                match wd_parts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, part)) => part.push(j),
                    None => wd_parts.push((key, vec![j])),
                }
            }
        }
    }
    for (_, part) in pm_parts {
        answer_pm_partition(core, part);
    }
    for ((_, axes), part) in wd_parts {
        answer_wd_partition(core, &axes, part);
    }
}

/// One fused binary scan answers every PM job of a partition.
fn answer_pm_partition(core: &ServiceCore, mut jobs: Vec<PmJob>) {
    for job in &mut jobs {
        job.work.trace.stage_end(Stage::QueueWait);
        job.work.trace.stage_begin(Stage::FusedScan);
    }
    let schema = Arc::clone(&jobs[0].work.schema);
    let noisy: Vec<StarQuery> = jobs.iter().map(|j| j.work.noisy.clone()).collect();
    let results = execute_batch_with(&schema, &noisy, core.config.pm.scan);
    for job in &mut jobs {
        job.work.trace.stage_end(Stage::FusedScan);
    }
    match results {
        Ok(results) => {
            if jobs.len() > 1 {
                ServiceMetrics::inc(&core.metrics.fused_scans);
                ServiceMetrics::add(&core.metrics.fused_queries_saved, jobs.len() as u64 - 1);
            }
            for (job, result) in jobs.into_iter().zip(results) {
                job.slot.fill(core.pm_finish(job.work, result));
            }
        }
        Err(e) => {
            // Reservations drop with the jobs → every member refunds.
            ServiceMetrics::add(&core.metrics.mechanism_failures, jobs.len() as u64);
            for job in jobs {
                job.slot.fill(Err(ServiceError::Mechanism(CoreError::Engine(e.clone()))));
            }
        }
    }
}

/// One shared W histogram (or one fused weighted scan) answers every WD job
/// of an axis-compatible partition.
fn answer_wd_partition(core: &ServiceCore, axes: &[(String, String)], mut jobs: Vec<WdJob>) {
    for job in &mut jobs {
        job.work.trace.stage_end(Stage::QueueWait);
        job.work.trace.stage_begin(Stage::FusedScan);
    }
    let schema = Arc::clone(&jobs[0].work.schema);
    let version = jobs[0].work.version;
    let batches: Vec<&[starj_engine::WeightedQuery]> =
        jobs.iter().map(|j| j.work.rows.as_slice()).collect();
    let answered = core.wd_partition_answers(&schema, version, axes, jobs[0].work.space, &batches);
    for job in &mut jobs {
        job.work.trace.stage_end(Stage::FusedScan);
    }
    match answered {
        Ok(answer_sets) => {
            for (job, answers) in jobs.into_iter().zip(answer_sets) {
                job.slot.fill(core.wd_finish(job.work, answers));
            }
        }
        Err(e) => {
            ServiceMetrics::add(&core.metrics.mechanism_failures, jobs.len() as u64);
            for job in jobs {
                job.slot.fill(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accountant::BudgetAccountant;
    use crate::cache::RequestKey;
    use starj_engine::{canonicalize, Column, Dimension, Domain, StarSchema, Table};
    use starj_noise::PrivacyBudget;

    /// A real PM job for queue-order tests: the slot handle's drop fills a
    /// typed error, so simply dropping drained jobs is fine.
    fn job(accountant: &BudgetAccountant, tenant: &str, name: &str) -> Job {
        let domain = Domain::numeric("c", 2).unwrap();
        let dim = Table::new(
            "D",
            vec![Column::key("pk", vec![0, 1]), Column::attr("c", domain, vec![0, 1])],
        )
        .unwrap();
        let fact = Table::new("F", vec![Column::key("fk", vec![0, 1])]).unwrap();
        let schema =
            Arc::new(StarSchema::new(fact, vec![Dimension::new(dim, "pk", "fk")]).unwrap());
        let q = StarQuery::count(name);
        let (_, slot) = pending_pair();
        Job::Pm(PmJob {
            work: PmWork {
                tenant: tenant.to_string(),
                name: name.to_string(),
                epsilon: 0.1,
                cost: PrivacyBudget::pure(0.1).unwrap(),
                key: RequestKey::Single(canonicalize(&q)),
                noisy: q,
                reservation: accountant.reserve(tenant, PrivacyBudget::pure(0.1).unwrap()).unwrap(),
                schema,
                version: 0,
                start: Instant::now(),
                trace: starj_telemetry::TraceBuilder::start(
                    starj_telemetry::RequestKind::Pm,
                    tenant,
                    false,
                ),
            },
            slot,
        })
    }

    fn names(jobs: &[Job]) -> Vec<String> {
        jobs.iter()
            .map(|j| match j {
                Job::Pm(p) => p.work.name.clone(),
                Job::Wd(_) => unreachable!("queue tests only park PM jobs"),
            })
            .collect()
    }

    fn accountant_for(tenants: &[&str]) -> BudgetAccountant {
        let acc = BudgetAccountant::new();
        for t in tenants {
            acc.register(t, PrivacyBudget::pure(100.0).unwrap()).unwrap();
        }
        acc
    }

    #[test]
    fn adaptive_window_collapses_when_idle_and_stretches_under_burst() {
        let fixed = Duration::from_micros(200);
        let max = Duration::from_millis(2);
        let before = cost_counters().snapshot();
        let mut s = QueueState::default();
        let t0 = Instant::now();
        s.note_arrival(t0, 1, fixed, max);
        assert_eq!(s.window, fixed, "cold start behaves exactly like the fixed window");
        // Sparse arrivals (1 ms apart, well past the 200 µs threshold):
        // holding a drain open can never capture a second request, so the
        // window collapses to zero.
        let mut t = t0;
        for _ in 0..4 {
            t += Duration::from_millis(1);
            s.note_arrival(t, 1, fixed, max);
        }
        assert_eq!(s.window, Duration::ZERO, "idle traffic must not pay the window tax");
        // A concurrent burst (10 µs gaps, 4 jobs deep at each enqueue)
        // re-opens the window, stretched to a few expected gaps — smaller
        // than the fixed window because the burst itself is that tight.
        for _ in 0..64 {
            t += Duration::from_micros(10);
            s.note_arrival(t, 4, fixed, max);
        }
        assert!(!s.window.is_zero(), "concurrent burst traffic re-opens the window");
        assert!(s.window <= max, "the configured bound always holds");
        assert!(s.window < fixed, "the window tracks the burst's own gap scale");
        let delta = cost_counters().snapshot().since(&before);
        assert!(delta.window_adjustments >= 2, "collapse and re-open each count");
    }

    #[test]
    fn lone_fast_client_never_earns_a_window() {
        // The oscillation regression: a single client issuing back-to-back
        // requests has tight gaps, but every enqueue sees depth 1 — the
        // depth gate must keep the window collapsed, or the client cycles
        // window-open (latency grows) → gaps widen → window-closed →
        // latency shrinks → re-open, forever.
        let fixed = Duration::from_micros(200);
        let max = Duration::from_millis(2);
        let mut s = QueueState::default();
        let mut t = Instant::now();
        s.note_arrival(t, 1, fixed, max);
        for _ in 0..128 {
            t += Duration::from_micros(10);
            s.note_arrival(t, 1, fixed, max);
        }
        assert_eq!(s.window, Duration::ZERO, "depth 1 means fusing gains nothing");
    }

    #[test]
    fn adaptive_window_is_capped_by_the_configured_bound() {
        let fixed = Duration::from_millis(1);
        let max = Duration::from_micros(500);
        let mut s = QueueState::default();
        let t0 = Instant::now();
        s.note_arrival(t0, 1, fixed, max);
        assert_eq!(s.window, max, "even the cold-start window respects the cap");
        // 60 µs gaps, 3 deep → stretched window 480 µs, inside the cap; a
        // denser stream would want more but can never exceed it.
        let mut t = t0;
        for _ in 0..64 {
            t += Duration::from_micros(60);
            s.note_arrival(t, 3, fixed, max);
        }
        assert!(!s.window.is_zero());
        assert!(s.window <= max);
    }

    #[test]
    fn drain_is_round_robin_across_tenants_fifo_within() {
        let acc = accountant_for(&["a", "b", "c"]);
        let mut q = FairQueue::default();
        for name in ["a1", "a2", "a3"] {
            q.push(job(&acc, "a", name));
        }
        q.push(job(&acc, "b", "b1"));
        q.push(job(&acc, "c", "c1"));
        assert_eq!(q.len(), 5);
        assert_eq!(q.tenant_len("a"), 3);
        let drained = q.drain_round_robin(10);
        assert_eq!(names(&drained), ["a1", "b1", "c1", "a2", "a3"]);
        assert!(q.is_empty());
    }

    #[test]
    fn rotation_cursor_persists_across_drains() {
        let acc = accountant_for(&["a", "b"]);
        let mut q = FairQueue::default();
        q.push(job(&acc, "a", "a1"));
        q.push(job(&acc, "a", "a2"));
        q.push(job(&acc, "b", "b1"));
        // First drain serves tenant a, so the next drain starts at b even
        // though a still has a parked job.
        assert_eq!(names(&q.drain_round_robin(1)), ["a1"]);
        assert_eq!(names(&q.drain_round_robin(2)), ["b1", "a2"]);
    }

    #[test]
    fn emptied_lane_rejoins_at_the_tail() {
        let acc = accountant_for(&["a", "b"]);
        let mut q = FairQueue::default();
        q.push(job(&acc, "a", "a1"));
        q.push(job(&acc, "b", "b1"));
        assert_eq!(names(&q.drain_round_robin(2)), ["a1", "b1"]);
        // Tenant a left the rotation when its lane emptied; a fresh push
        // re-enters it cleanly.
        q.push(job(&acc, "b", "b2"));
        q.push(job(&acc, "a", "a2"));
        assert_eq!(names(&q.drain_round_robin(2)), ["b2", "a2"]);
        assert_eq!(q.tenant_len("a"), 0);
    }
}
