//! Lock-free service metrics: request counters and a latency histogram with
//! p50/p99 extraction.
//!
//! Counters are plain relaxed atomics — they are monotonic tallies, not
//! synchronization points. Latency uses a fixed 64-bucket power-of-two
//! histogram over nanoseconds: recording is one atomic increment, and
//! quantiles are read by scanning 64 buckets, so the histogram never
//! allocates and never takes a lock on the serving path.

use starj_telemetry::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (public so cross-service
/// aggregators — e.g. a shard router merging per-shard histograms — can
/// size their accumulation arrays).
pub const LATENCY_BUCKETS: usize = 64;
const BUCKETS: usize = LATENCY_BUCKETS;

/// Power-of-two latency histogram. Bucket `i` covers `[2^(i−1), 2^i)` ns
/// (bucket 0 covers `[0, 1)` ns).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, resolved to the
    /// geometric mean of the containing bucket's edges — the unbiased point
    /// estimate for a power-of-two bucket, off by at most √2× in either
    /// direction. (The previous upper-edge convention biased every quantile
    /// high, up to 2× the true value.) `None` until something was recorded.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket idx covers [2^(idx−1), 2^idx) ns; its geometric
                // mean is 2^(idx−0.5). Bucket 0 covers [0, 1) ns.
                let mid_ns = if idx == 0 { 1.0 } else { (idx as f64 - 0.5).exp2() };
                return Some(mid_ns / 1_000.0);
            }
        }
        None
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the raw bucket counts (bucket `i` covers
    /// `[2^(i−1), 2^i)` ns). The merge surface for cross-service
    /// aggregation: quantiles of a fleet are read from the *summed*
    /// buckets, never from per-service p50/p99 (quantiles do not average).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Adds another histogram's bucket counts into this one — the other
    /// half of the merge surface.
    pub fn absorb(&self, counts: &[u64; BUCKETS]) {
        for (bucket, &n) in self.buckets.iter().zip(counts) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// Counters and latency for one [`crate::Service`].
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Successfully answered requests (fresh, cached, and free).
    pub queries_served: AtomicU64,
    /// Answers replayed from the cache (a subset of `queries_served`).
    pub cache_hits: AtomicU64,
    /// Unsatisfiable-query short-circuits answered exactly at zero cost
    /// (a subset of `queries_served`).
    pub free_answers: AtomicU64,
    /// Requests refused because the tenant's budget could not absorb them.
    pub budget_refusals: AtomicU64,
    /// Requests rejected at admission (malformed against the schema).
    pub admission_rejections: AtomicU64,
    /// Requests that failed in the mechanism after admission (refunded).
    pub mechanism_failures: AtomicU64,
    /// Fused multi-query fact scans executed (batch + workload requests).
    pub fused_scans: AtomicU64,
    /// Fact scans *saved* by fusion: for each fused scan answering `l`
    /// queries, `l − 1` scans the per-query path would have paid. Counts
    /// explicit batches, workload requests, coalesced partitions, and
    /// W-histogram reuse alike.
    pub fused_queries_saved: AtomicU64,
    /// Requests that parked in the coalescer queue and were answered by a
    /// group-commit drain (free answers and cache hits never park).
    pub coalesced_requests: AtomicU64,
    /// Queue drains the coalescer workers performed (a batch may hold one
    /// request; `coalesced_requests / coalesced_batches` is the mean batch).
    pub coalesced_batches: AtomicU64,
    /// Workload requests answered scan-free from a cached W histogram.
    pub w_cache_hits: AtomicU64,
    /// Requests refused with [`crate::ServiceError::StaleDataVersion`]
    /// because a [`crate::Service::refresh_schema`] landed between their
    /// submit and their commit — while parked in the coalescer queue or
    /// while their scan was running (each one refunded its reservation).
    pub stale_refusals: AtomicU64,
    /// Spend attempts refused with
    /// [`crate::ServiceError::DurabilityUnavailable`] because the budget
    /// journal was broken (degraded mode) or failed mid-request. Always 0
    /// for services without a journal.
    pub durable_refusals: AtomicU64,
    /// End-to-end request latency (successful requests only).
    pub latency: LatencyHistogram,
}

/// A point-in-time copy of the metrics, cheap to print or ship elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// See [`ServiceMetrics::queries_served`].
    pub queries_served: u64,
    /// See [`ServiceMetrics::cache_hits`].
    pub cache_hits: u64,
    /// See [`ServiceMetrics::free_answers`].
    pub free_answers: u64,
    /// See [`ServiceMetrics::budget_refusals`].
    pub budget_refusals: u64,
    /// See [`ServiceMetrics::admission_rejections`].
    pub admission_rejections: u64,
    /// See [`ServiceMetrics::mechanism_failures`].
    pub mechanism_failures: u64,
    /// See [`ServiceMetrics::fused_scans`].
    pub fused_scans: u64,
    /// See [`ServiceMetrics::fused_queries_saved`].
    pub fused_queries_saved: u64,
    /// See [`ServiceMetrics::coalesced_requests`].
    pub coalesced_requests: u64,
    /// See [`ServiceMetrics::coalesced_batches`].
    pub coalesced_batches: u64,
    /// See [`ServiceMetrics::w_cache_hits`].
    pub w_cache_hits: u64,
    /// See [`ServiceMetrics::stale_refusals`].
    pub stale_refusals: u64,
    /// See [`ServiceMetrics::durable_refusals`].
    pub durable_refusals: u64,
    /// Median latency in µs (None before the first served query).
    pub p50_latency_us: Option<f64>,
    /// 99th-percentile latency in µs.
    pub p99_latency_us: Option<f64>,
}

impl MetricsSnapshot {
    /// Adds another snapshot's counters into this one — the counter half of
    /// cross-service aggregation. The latency quantiles are deliberately
    /// **not** touched (quantiles do not sum); an aggregator derives them
    /// from the merged [`LatencyHistogram`] buckets instead.
    pub fn accumulate(&mut self, other: &MetricsSnapshot) {
        self.queries_served += other.queries_served;
        self.cache_hits += other.cache_hits;
        self.free_answers += other.free_answers;
        self.budget_refusals += other.budget_refusals;
        self.admission_rejections += other.admission_rejections;
        self.mechanism_failures += other.mechanism_failures;
        self.fused_scans += other.fused_scans;
        self.fused_queries_saved += other.fused_queries_saved;
        self.coalesced_requests += other.coalesced_requests;
        self.coalesced_batches += other.coalesced_batches;
        self.w_cache_hits += other.w_cache_hits;
        self.stale_refusals += other.stale_refusals;
        self.durable_refusals += other.durable_refusals;
    }

    /// `(name, value)` counter pairs in declaration order — the single
    /// source the JSON, `Display`, and Prometheus expositions iterate.
    pub fn counter_entries(&self) -> [(&'static str, u64); 13] {
        [
            ("queries_served", self.queries_served),
            ("cache_hits", self.cache_hits),
            ("free_answers", self.free_answers),
            ("budget_refusals", self.budget_refusals),
            ("admission_rejections", self.admission_rejections),
            ("mechanism_failures", self.mechanism_failures),
            ("fused_scans", self.fused_scans),
            ("fused_queries_saved", self.fused_queries_saved),
            ("coalesced_requests", self.coalesced_requests),
            ("coalesced_batches", self.coalesced_batches),
            ("w_cache_hits", self.w_cache_hits),
            ("stale_refusals", self.stale_refusals),
            ("durable_refusals", self.durable_refusals),
        ]
    }

    /// The snapshot as a stable JSON object: every counter by name,
    /// `p50_latency_us` / `p99_latency_us` (null before the first
    /// request), plus a `cost` sub-object embedding the *process-wide*
    /// cost-model counters (sampling walks, estimate-cache traffic,
    /// subsumption merges, window adjustments) — read at render time, not
    /// at snapshot time, since they live outside any one service.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = self
            .counter_entries()
            .iter()
            .map(|&(name, v)| (name.to_string(), Json::Num(v as f64)))
            .collect();
        pairs.push((
            "p50_latency_us".to_string(),
            self.p50_latency_us.map_or(Json::Null, Json::Num),
        ));
        pairs.push((
            "p99_latency_us".to_string(),
            self.p99_latency_us.map_or(Json::Null, Json::Num),
        ));
        pairs.push(("cost".to_string(), starj_telemetry::cost_counters().snapshot().to_json()));
        Json::Obj(pairs)
    }

    /// An all-zero snapshot, the identity for [`MetricsSnapshot::accumulate`].
    pub fn zero() -> MetricsSnapshot {
        MetricsSnapshot {
            queries_served: 0,
            cache_hits: 0,
            free_answers: 0,
            budget_refusals: 0,
            admission_rejections: 0,
            mechanism_failures: 0,
            fused_scans: 0,
            fused_queries_saved: 0,
            coalesced_requests: 0,
            coalesced_batches: 0,
            w_cache_hits: 0,
            stale_refusals: 0,
            durable_refusals: 0,
            p50_latency_us: None,
            p99_latency_us: None,
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    /// Renders the stable JSON form ([`MetricsSnapshot::to_json`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_json().render())
    }
}

impl ServiceMetrics {
    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot (individual counters are exact;
    /// cross-counter skew is bounded by in-flight requests).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            free_answers: self.free_answers.load(Ordering::Relaxed),
            budget_refusals: self.budget_refusals.load(Ordering::Relaxed),
            admission_rejections: self.admission_rejections.load(Ordering::Relaxed),
            mechanism_failures: self.mechanism_failures.load(Ordering::Relaxed),
            fused_scans: self.fused_scans.load(Ordering::Relaxed),
            fused_queries_saved: self.fused_queries_saved.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
            coalesced_batches: self.coalesced_batches.load(Ordering::Relaxed),
            w_cache_hits: self.w_cache_hits.load(Ordering::Relaxed),
            stale_refusals: self.stale_refusals.load(Ordering::Relaxed),
            durable_refusals: self.durable_refusals.load(Ordering::Relaxed),
            p50_latency_us: self.latency.quantile_us(0.50),
            p99_latency_us: self.latency.quantile_us(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // 10_000 ns → bucket upper 16_384 ns
        }
        h.record(Duration::from_millis(10)); // the single slow outlier
        let p50 = h.quantile_us(0.5).unwrap();
        assert!((10.0..=20.0).contains(&p50), "p50 {p50} should bracket 10 µs");
        let p99 = h.quantile_us(0.99).unwrap();
        assert!(p99 <= 20.0, "p99 {p99} still inside the fast cluster (99/100)");
        let p100 = h.quantile_us(1.0).unwrap();
        assert!(p100 >= 10_000.0, "max {p100} must see the 10 ms outlier");
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn ordering_is_monotone_in_q() {
        let h = LatencyHistogram::default();
        for us in [1u64, 10, 100, 1_000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        let p10 = h.quantile_us(0.1).unwrap();
        let p90 = h.quantile_us(0.9).unwrap();
        assert!(p10 <= p90);
    }

    #[test]
    fn bucket_counts_round_trip_through_absorb() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        for us in [1u64, 10, 100] {
            a.record(Duration::from_micros(us));
        }
        b.record(Duration::from_millis(5));
        let merged = LatencyHistogram::default();
        merged.absorb(&a.bucket_counts());
        merged.absorb(&b.bucket_counts());
        assert_eq!(merged.count(), 4);
        // The merged p100 must see b's 5 ms outlier even though a holds
        // three fast observations.
        assert!(merged.quantile_us(1.0).unwrap() >= 5_000.0);
        assert_eq!(
            merged.bucket_counts().iter().sum::<u64>(),
            a.count() + b.count(),
            "absorb preserves total mass"
        );
    }

    #[test]
    fn snapshot_accumulate_sums_counters_only() {
        let m = ServiceMetrics::default();
        ServiceMetrics::add(&m.queries_served, 3);
        ServiceMetrics::inc(&m.cache_hits);
        ServiceMetrics::inc(&m.stale_refusals);
        m.latency.record(Duration::from_micros(7));
        let mut total = MetricsSnapshot::zero();
        total.accumulate(&m.snapshot());
        total.accumulate(&m.snapshot());
        assert_eq!(total.queries_served, 6);
        assert_eq!(total.cache_hits, 2);
        assert_eq!(total.stale_refusals, 2);
        assert_eq!(total.p50_latency_us, None, "quantiles never sum");
    }

    #[test]
    fn quantiles_use_the_bucket_geometric_mean() {
        // 1000 identical 10 µs observations land in bucket 14
        // ([8_192, 16_384) ns). The old upper-edge convention reported
        // p50 = p99 = 16.384 µs — a 64% overshoot; the geometric mean
        // 2^13.5 ns ≈ 11.585 µs is within √2 of the true 10 µs.
        let h = LatencyHistogram::default();
        for _ in 0..1000 {
            h.record(Duration::from_micros(10));
        }
        let expected = (13.5f64).exp2() / 1_000.0;
        for q in [0.5, 0.99] {
            let got = h.quantile_us(q).unwrap();
            assert!((got - expected).abs() < 1e-9, "q={q}: got {got}, want {expected}");
            assert!(got < 16.0, "q={q}: {got} must not sit on the 16.384 µs upper edge");
            assert!((10.0 / 2f64.sqrt()..=10.0 * 2f64.sqrt()).contains(&got));
        }
    }

    #[test]
    fn snapshot_serializes_to_stable_json() {
        let m = ServiceMetrics::default();
        ServiceMetrics::add(&m.queries_served, 3);
        ServiceMetrics::inc(&m.w_cache_hits);
        let s = m.snapshot();
        let json = starj_telemetry::Json::parse(&s.to_string()).expect("Display renders JSON");
        assert_eq!(json.get("queries_served").and_then(starj_telemetry::Json::as_f64), Some(3.0));
        assert_eq!(json.get("w_cache_hits").and_then(starj_telemetry::Json::as_f64), Some(1.0));
        assert!(
            matches!(json.get("p50_latency_us"), Some(starj_telemetry::Json::Null)),
            "no latency recorded yet"
        );
        m.latency.record(Duration::from_micros(5));
        let again = m.snapshot().to_json();
        assert!(again.get("p50_latency_us").and_then(starj_telemetry::Json::as_f64).is_some());
        assert!(
            again.get("cost").and_then(|c| c.get("walks")).is_some(),
            "cost-model counters ride along as a sub-object"
        );
        assert_eq!(s.counter_entries().len(), 13);
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = ServiceMetrics::default();
        ServiceMetrics::inc(&m.queries_served);
        ServiceMetrics::inc(&m.queries_served);
        ServiceMetrics::inc(&m.cache_hits);
        ServiceMetrics::inc(&m.budget_refusals);
        m.latency.record(Duration::from_micros(5));
        let s = m.snapshot();
        assert_eq!(s.queries_served, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.budget_refusals, 1);
        assert_eq!(s.admission_rejections, 0);
        assert!(s.p50_latency_us.is_some());
    }
}
