//! The append-only budget journal: segmented WAL, group fsync, recovery.
//!
//! ## Layout
//!
//! A journal is a directory of segment files `wal-<seq:08>.seg`, each
//! starting with an 8-byte magic (`SJWAL01\n`) followed by framed records
//! (see [`crate::record`]). Appends go to the highest-numbered segment;
//! when it would exceed [`WalConfig::segment_bytes`] the writer seals it
//! (final fsync) and opens the successor.
//!
//! ## Group commit
//!
//! [`BudgetWal::append`] writes the frame under a short write lock, then
//! joins the *sync cohort*: the first appender through the sync lock
//! fsyncs once for every record written before it grabbed the lock;
//! followers observe `synced_seq >= their_seq` and return without
//! touching the disk. Under concurrency this batches many records per
//! `fdatasync` while preserving the durability contract — **no append
//! returns `Ok` before its record is on stable storage** (under
//! [`SyncPolicy::Group`]/[`SyncPolicy::Always`]).
//!
//! ## Recovery
//!
//! [`BudgetWal::open`] replays every segment in order, CRC-checking each
//! record. A torn tail — partial frame, bad CRC, or undecodable payload —
//! is legal only in the **final** segment (that is what a crash leaves
//! behind); it is truncated at the last valid record and appends resume
//! there. The same damage in an earlier segment means bit rot, not a
//! crash, and recovery refuses with [`WalError::Corrupt`] rather than
//! silently dropping spends.
//!
//! ## Fail-stop
//!
//! Any append/fsync failure (real or injected) permanently breaks the
//! handle: every later call returns [`WalError::Broken`]. A half-written
//! frame followed by more appends would interleave garbage into the log;
//! fail-stop keeps the on-disk image exactly "a prefix of history, maybe
//! with one torn tail", which is the shape recovery proves itself against.

use crate::crc::crc32;
use crate::fault::{FaultKind, FaultPlan};
use crate::record::{JournalRecord, RecordKind, MAX_PAYLOAD};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SJWAL01\n";

/// When to force journal bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every append fsyncs before returning, joining a group-commit cohort
    /// so concurrent appends share one `fdatasync`. The default, and the
    /// only policy (with [`SyncPolicy::Always`]) under which the
    /// write-ahead guarantee covers power loss.
    Group,
    /// Every append issues its own fsync — strictest, no batching. Useful
    /// for measuring what group commit saves.
    Always,
    /// Never fsync (OS page cache only). A kill−9 is still safe (the
    /// kernel has the bytes); power loss can lose acknowledged spends.
    /// For tests and benches.
    Never,
}

/// Journal location and tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct WalConfig {
    /// Directory holding the segment files (created if missing).
    pub dir: PathBuf,
    /// Fsync policy; see [`SyncPolicy`].
    pub sync: SyncPolicy,
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes. Bounds torn-tail scan time and the unit of future snapshot
    /// compaction.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// Defaults (group fsync, 4 MiB segments) at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        WalConfig { dir: dir.into(), sync: SyncPolicy::Group, segment_bytes: 4 << 20 }
    }
}

/// Why a journal operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// An OS-level IO failure (message retained; the handle is now broken).
    Io(String),
    /// Recovery found damage *before* the final segment's tail — torn
    /// tails are what crashes leave, mid-history damage is bit rot and is
    /// never silently dropped.
    Corrupt {
        /// Segment sequence number containing the damage.
        segment: u64,
        /// Byte offset of the first bad record.
        offset: u64,
    },
    /// An injected crash point fired: the torn prefix is on disk and the
    /// handle is dead, exactly as if the process had been killed mid-write.
    Crashed,
    /// A previous failure already broke this handle; the journal refuses
    /// further appends until the process restarts and recovery runs.
    Broken,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "journal IO error: {msg}"),
            WalError::Corrupt { segment, offset } => write!(
                f,
                "journal corrupt: segment {segment} damaged at byte {offset} \
                 (not a torn tail; refusing to drop recorded spends)"
            ),
            WalError::Crashed => write!(f, "journal crash point injected; handle is dead"),
            WalError::Broken => {
                write!(f, "journal handle broken by an earlier failure; restart to recover")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// Per-tenant totals rebuilt by replay. Only [`RecordKind::Commit`]
/// records accumulate — reserves and refunds are transient, and counting
/// commits alone is what makes recovery *never under-charge*.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplayedLedger {
    /// Sum of committed ε, added in journal order (bit-identical to the
    /// in-memory ledger when ε is dyadic).
    pub spent_epsilon: f64,
    /// Sum of committed δ.
    pub spent_delta: f64,
    /// Number of commit records replayed.
    pub commits: u64,
}

/// What [`BudgetWal::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Recovery {
    /// Recovered per-tenant spend (sorted for deterministic iteration).
    pub tenants: BTreeMap<String, ReplayedLedger>,
    /// Total valid records replayed (all kinds).
    pub records: u64,
    /// Commit records among them.
    pub commits: u64,
    /// Segments scanned.
    pub segments: u64,
    /// Whether a torn tail was truncated from the final segment.
    pub torn_tail_truncated: bool,
}

/// Monotonic journal statistics (exposed as `starj_durable_*` metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalCounters {
    /// Records appended since open.
    pub records: u64,
    /// Frame bytes appended since open.
    pub bytes: u64,
    /// Actual `fdatasync` calls issued (group commit makes this ≤ records).
    pub fsyncs: u64,
    /// Segment rotations since open.
    pub rotations: u64,
    /// Current segment count on disk.
    pub segments: u64,
}

#[derive(Debug)]
struct WriteHalf {
    file: Arc<File>,
    seg_seq: u64,
    seg_len: u64,
    /// Monotone sequence number of the last record written (0 = none).
    written_seq: u64,
}

#[derive(Debug)]
struct SyncHalf {
    /// Highest `written_seq` known durable.
    synced_seq: u64,
}

/// The append-only budget journal. Cheap to share (`Arc` it); all methods
/// take `&self`.
#[derive(Debug)]
pub struct BudgetWal {
    config: WalConfig,
    fault: Option<Arc<FaultPlan>>,
    write: Mutex<WriteHalf>,
    sync: Mutex<SyncHalf>,
    broken: AtomicBool,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    rotations: AtomicU64,
    segments: AtomicU64,
}

fn io_err(e: std::io::Error) -> WalError {
    WalError::Io(e.to_string())
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.seg"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".seg")?.parse().ok()
}

/// Outcome of scanning one segment's bytes.
struct SegmentScan {
    /// Byte length of the valid prefix (header + intact records).
    valid_len: u64,
    /// Offset of the first damaged byte, if any damage was found.
    damage_at: Option<u64>,
    records: Vec<JournalRecord>,
}

fn scan_segment(bytes: &[u8]) -> SegmentScan {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        // Partial or missing header: a crash during rotation leaves this.
        return SegmentScan { valid_len: 0, damage_at: Some(0), records: Vec::new() };
    }
    let mut off = SEGMENT_MAGIC.len();
    let mut records = Vec::new();
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < 8 {
            return SegmentScan { valid_len: off as u64, damage_at: Some(off as u64), records };
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD || rest.len() < 8 + len {
            return SegmentScan { valid_len: off as u64, damage_at: Some(off as u64), records };
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return SegmentScan { valid_len: off as u64, damage_at: Some(off as u64), records };
        }
        match JournalRecord::decode_payload(payload) {
            Some(rec) => records.push(rec),
            None => {
                return SegmentScan { valid_len: off as u64, damage_at: Some(off as u64), records }
            }
        }
        off += 8 + len;
    }
    SegmentScan { valid_len: off as u64, damage_at: None, records }
}

impl BudgetWal {
    /// Open (creating if needed) the journal at `config.dir`, replaying
    /// whatever is on disk. Returns the writable handle plus the
    /// [`Recovery`] the caller adopts into its accountant.
    ///
    /// `fault` threads a [`FaultPlan`] through every IO seam; pass `None`
    /// in production.
    pub fn open(
        config: WalConfig,
        fault: Option<Arc<FaultPlan>>,
    ) -> Result<(BudgetWal, Recovery), WalError> {
        if let Some(plan) = &fault {
            if plan.trip("wal.open").is_some() {
                return Err(WalError::Io("injected open failure".into()));
            }
        }
        std::fs::create_dir_all(&config.dir).map_err(io_err)?;

        let mut seqs: Vec<u64> = std::fs::read_dir(&config.dir)
            .map_err(io_err)?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                parse_segment_name(&entry.file_name().to_string_lossy())
            })
            .collect();
        seqs.sort_unstable();

        let mut recovery = Recovery::default();
        let mut tail: Option<(u64, u64)> = None; // (seq, valid_len) of the final segment
        for (i, &seq) in seqs.iter().enumerate() {
            let is_last = i + 1 == seqs.len();
            let path = segment_path(&config.dir, seq);
            let mut bytes = Vec::new();
            File::open(&path).and_then(|mut f| f.read_to_end(&mut bytes)).map_err(io_err)?;
            let scan = scan_segment(&bytes);
            if let Some(offset) = scan.damage_at {
                if !is_last {
                    return Err(WalError::Corrupt { segment: seq, offset });
                }
                recovery.torn_tail_truncated = true;
            }
            for rec in &scan.records {
                recovery.records += 1;
                if rec.kind == RecordKind::Commit {
                    recovery.commits += 1;
                    let t = recovery.tenants.entry(rec.tenant.clone()).or_default();
                    // Journal order == per-tenant charge order, so these
                    // f64 additions reproduce the ledger bit-for-bit.
                    t.spent_epsilon += rec.epsilon;
                    t.spent_delta += rec.delta;
                    t.commits += 1;
                }
            }
            if is_last {
                tail = Some((seq, scan.valid_len));
            }
        }
        recovery.segments = seqs.len() as u64;

        // Open the tail segment for append, truncating any torn bytes; or
        // start segment 0 on a fresh directory.
        let (seg_seq, file, seg_len) = match tail {
            Some((seq, valid_len)) => {
                let path = segment_path(&config.dir, seq);
                let mut file =
                    OpenOptions::new().read(true).write(true).open(&path).map_err(io_err)?;
                if valid_len < SEGMENT_MAGIC.len() as u64 {
                    // Torn header (crash mid-rotation): reuse the file as
                    // a fresh segment.
                    file.set_len(0).map_err(io_err)?;
                    file.write_all(SEGMENT_MAGIC).map_err(io_err)?;
                    (seq, file, SEGMENT_MAGIC.len() as u64)
                } else {
                    file.set_len(valid_len).map_err(io_err)?;
                    file.seek(SeekFrom::End(0)).map_err(io_err)?;
                    (seq, file, valid_len)
                }
            }
            None => {
                let path = segment_path(&config.dir, 0);
                let mut file = OpenOptions::new()
                    .create_new(true)
                    .write(true)
                    .read(true)
                    .open(&path)
                    .map_err(io_err)?;
                file.write_all(SEGMENT_MAGIC).map_err(io_err)?;
                (0, file, SEGMENT_MAGIC.len() as u64)
            }
        };
        if recovery.torn_tail_truncated || tail.is_none() {
            file.sync_data().map_err(io_err)?;
        }

        let segments = recovery.segments.max(1);
        let wal = BudgetWal {
            config,
            fault,
            write: Mutex::new(WriteHalf { file: Arc::new(file), seg_seq, seg_len, written_seq: 0 }),
            sync: Mutex::new(SyncHalf { synced_seq: 0 }),
            broken: AtomicBool::new(false),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            segments: AtomicU64::new(segments),
        };
        Ok((wal, recovery))
    }

    /// Append one record. Under [`SyncPolicy::Group`]/[`SyncPolicy::Always`]
    /// the record is on stable storage when this returns `Ok`. Any failure
    /// permanently breaks the handle (see module docs on fail-stop).
    pub fn append(&self, record: &JournalRecord) -> Result<(), WalError> {
        if self.broken.load(Ordering::Acquire) {
            return Err(WalError::Broken);
        }
        let frame = record.encode_frame();

        // -- write half ---------------------------------------------------
        let (my_seq, durable_up_to, file) = {
            let mut w = self.write.lock().expect("wal write half");
            if self.broken.load(Ordering::Acquire) {
                return Err(WalError::Broken);
            }
            if w.seg_len + frame.len() as u64 > self.config.segment_bytes
                && w.seg_len > SEGMENT_MAGIC.len() as u64
            {
                self.rotate(&mut w)?;
            }
            if let Some(plan) = &self.fault {
                match plan.trip("wal.write") {
                    Some(FaultKind::IoError) => {
                        return Err(self.break_with(WalError::Io("injected write failure".into())));
                    }
                    Some(FaultKind::Crash { torn_bytes }) => {
                        // Leave exactly the torn prefix a kill would leave.
                        let torn = torn_bytes.min(frame.len());
                        let res = w.file.as_ref().write_all(&frame[..torn]);
                        let _ = res; // the "process" is dead either way
                        return Err(self.break_with(WalError::Crashed));
                    }
                    _ => {}
                }
            }
            if let Err(e) = w.file.as_ref().write_all(&frame) {
                return Err(self.break_with(io_err(e)));
            }
            w.seg_len += frame.len() as u64;
            w.written_seq += 1;
            self.records.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
            (w.written_seq, w.written_seq, Arc::clone(&w.file))
        };

        // -- sync half ----------------------------------------------------
        match self.config.sync {
            SyncPolicy::Never => Ok(()),
            SyncPolicy::Always => self.sync_cohort(my_seq, durable_up_to, &file, false),
            SyncPolicy::Group => self.sync_cohort(my_seq, durable_up_to, &file, true),
        }
    }

    /// Join the group-commit cohort: fsync if `my_seq` is not yet durable.
    ///
    /// `file` was captured under the write lock, so `my_seq`'s bytes are
    /// in it. If a rotation happened since, the rotation already synced
    /// this file and advanced `synced_seq` past us — we return without
    /// touching the (now sealed) file.
    fn sync_cohort(
        &self,
        my_seq: u64,
        durable_up_to: u64,
        file: &File,
        skip_if_synced: bool,
    ) -> Result<(), WalError> {
        let mut s = self.sync.lock().expect("wal sync half");
        if skip_if_synced && s.synced_seq >= my_seq {
            return Ok(());
        }
        if self.broken.load(Ordering::Acquire) {
            return Err(WalError::Broken);
        }
        if let Some(plan) = &self.fault {
            match plan.trip("wal.sync") {
                Some(FaultKind::IoError) => {
                    return Err(self.break_with(WalError::Io("injected fsync failure".into())));
                }
                Some(FaultKind::Crash { .. }) => {
                    // Crash at the fsync boundary: bytes are written (page
                    // cache) but the ack never happens.
                    return Err(self.break_with(WalError::Crashed));
                }
                _ => {}
            }
        }
        if let Err(e) = file.sync_data() {
            return Err(self.break_with(io_err(e)));
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        s.synced_seq = s.synced_seq.max(durable_up_to);
        Ok(())
    }

    /// Seal the current segment and open its successor. Called with the
    /// write lock held; takes the sync lock (lock order: write → sync).
    fn rotate(&self, w: &mut WriteHalf) -> Result<(), WalError> {
        if let Some(plan) = &self.fault {
            match plan.trip("wal.rotate") {
                Some(FaultKind::IoError) => {
                    return Err(self.break_with(WalError::Io("injected rotate failure".into())));
                }
                Some(FaultKind::Crash { torn_bytes }) => {
                    // Crash between creating the successor and writing its
                    // header: recovery must cope with a header-torn final
                    // segment.
                    let path = segment_path(&self.config.dir, w.seg_seq + 1);
                    if let Ok(mut f) = File::create(path) {
                        let torn = torn_bytes.min(SEGMENT_MAGIC.len());
                        let _ = f.write_all(&SEGMENT_MAGIC[..torn]);
                    }
                    return Err(self.break_with(WalError::Crashed));
                }
                _ => {}
            }
        }
        // Seal: everything in the old segment becomes durable before any
        // record lands in the new one.
        if self.config.sync != SyncPolicy::Never {
            if let Err(e) = w.file.sync_data() {
                return Err(self.break_with(io_err(e)));
            }
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut s = self.sync.lock().expect("wal sync half");
            s.synced_seq = s.synced_seq.max(w.written_seq);
        }
        let next = w.seg_seq + 1;
        let path = segment_path(&self.config.dir, next);
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .read(true)
            .open(&path)
            .map_err(|e| self.break_with(io_err(e)))?;
        file.write_all(SEGMENT_MAGIC).map_err(|e| self.break_with(io_err(e)))?;
        w.file = Arc::new(file);
        w.seg_seq = next;
        w.seg_len = SEGMENT_MAGIC.len() as u64;
        self.rotations.fetch_add(1, Ordering::Relaxed);
        self.segments.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn break_with(&self, e: WalError) -> WalError {
        self.broken.store(true, Ordering::Release);
        e
    }

    /// Whether a failure has permanently broken this handle.
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Acquire)
    }

    /// Snapshot of the journal statistics.
    pub fn counters(&self) -> WalCounters {
        WalCounters {
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            rotations: self.rotations.load(Ordering::Relaxed),
            segments: self.segments.load(Ordering::Relaxed),
        }
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn rec(kind: RecordKind, tenant: &str, eps: f64) -> JournalRecord {
        JournalRecord {
            kind,
            tenant: tenant.into(),
            query_hash: 0x1234,
            epsilon: eps,
            delta: 0.0,
            data_version: 1,
            request_id: 0,
        }
    }

    fn cfg(dir: &TempDir) -> WalConfig {
        WalConfig { dir: dir.path().to_path_buf(), sync: SyncPolicy::Group, segment_bytes: 4 << 20 }
    }

    #[test]
    fn append_then_reopen_replays_commits_only() {
        let dir = TempDir::new("wal").unwrap();
        {
            let (wal, rec0) = BudgetWal::open(cfg(&dir), None).unwrap();
            assert_eq!(rec0, Recovery { segments: 0, ..Default::default() });
            wal.append(&rec(RecordKind::Reserve, "a", 0.25)).unwrap();
            wal.append(&rec(RecordKind::Commit, "a", 0.25)).unwrap();
            wal.append(&rec(RecordKind::Reserve, "a", 0.5)).unwrap();
            wal.append(&rec(RecordKind::Refund, "a", 0.5)).unwrap();
            wal.append(&rec(RecordKind::Commit, "b", 0.125)).unwrap();
            wal.append(&rec(RecordKind::Refusal, "b", 8.0)).unwrap();
            assert_eq!(wal.counters().records, 6);
        }
        let (_, recovery) = BudgetWal::open(cfg(&dir), None).unwrap();
        assert_eq!(recovery.records, 6);
        assert_eq!(recovery.commits, 2);
        assert!(!recovery.torn_tail_truncated);
        assert_eq!(recovery.tenants["a"].spent_epsilon, 0.25);
        assert_eq!(recovery.tenants["a"].commits, 1);
        assert_eq!(recovery.tenants["b"].spent_epsilon, 0.125);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = TempDir::new("wal").unwrap();
        {
            let (wal, _) = BudgetWal::open(cfg(&dir), None).unwrap();
            wal.append(&rec(RecordKind::Commit, "a", 0.25)).unwrap();
        }
        // Tear the tail by hand: append garbage that parses as a frame
        // header but fails CRC.
        let seg = dir.path().join("wal-00000000.seg");
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[9, 0, 0, 0, 1, 2, 3, 4, 0xAA, 0xBB]).unwrap();
        drop(f);
        let before = std::fs::metadata(&seg).unwrap().len();
        let (wal, recovery) = BudgetWal::open(cfg(&dir), None).unwrap();
        assert!(recovery.torn_tail_truncated);
        assert_eq!(recovery.commits, 1);
        assert!(std::fs::metadata(&seg).unwrap().len() < before);
        // The journal keeps working after truncation.
        wal.append(&rec(RecordKind::Commit, "a", 0.5)).unwrap();
        drop(wal);
        let (_, again) = BudgetWal::open(cfg(&dir), None).unwrap();
        assert_eq!(again.commits, 2);
        assert_eq!(again.tenants["a"].spent_epsilon, 0.75);
        assert!(!again.torn_tail_truncated);
    }

    #[test]
    fn mid_history_corruption_is_refused() {
        let dir = TempDir::new("wal").unwrap();
        let small = WalConfig { segment_bytes: 128, ..cfg(&dir) };
        {
            let (wal, _) = BudgetWal::open(small.clone(), None).unwrap();
            for i in 0..8 {
                wal.append(&rec(RecordKind::Commit, "a", 0.25 + i as f64)).unwrap();
            }
            assert!(wal.counters().rotations > 0, "workload too small to rotate");
        }
        // Flip a byte in the FIRST segment (not the tail).
        let seg = dir.path().join("wal-00000000.seg");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() - 4;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, bytes).unwrap();
        let err = BudgetWal::open(small, None).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { segment: 0, .. }), "got {err:?}");
    }

    #[test]
    fn rotation_preserves_every_record() {
        let dir = TempDir::new("wal").unwrap();
        let small = WalConfig { segment_bytes: 100, ..cfg(&dir) };
        {
            let (wal, _) = BudgetWal::open(small.clone(), None).unwrap();
            for _ in 0..20 {
                wal.append(&rec(RecordKind::Commit, "t", 0.0078125)).unwrap();
            }
            let c = wal.counters();
            assert!(c.segments >= 3, "expected several segments, got {}", c.segments);
        }
        let (_, recovery) = BudgetWal::open(small, None).unwrap();
        assert_eq!(recovery.commits, 20);
        assert_eq!(recovery.tenants["t"].spent_epsilon, 20.0 * 0.0078125);
    }

    #[test]
    fn injected_io_error_breaks_the_handle() {
        let dir = TempDir::new("wal").unwrap();
        let plan = Arc::new(FaultPlan::new(7).fail_at("wal.write", 1, FaultKind::IoError));
        let (wal, _) = BudgetWal::open(cfg(&dir), Some(plan)).unwrap();
        wal.append(&rec(RecordKind::Commit, "a", 0.25)).unwrap();
        assert_eq!(
            wal.append(&rec(RecordKind::Commit, "a", 0.25)),
            Err(WalError::Io("injected write failure".into()))
        );
        assert!(wal.is_broken());
        assert_eq!(wal.append(&rec(RecordKind::Commit, "a", 0.25)), Err(WalError::Broken));
        // The record that failed never reached disk.
        drop(wal);
        let (_, recovery) = BudgetWal::open(cfg(&dir), None).unwrap();
        assert_eq!(recovery.commits, 1);
    }

    #[test]
    fn injected_crash_leaves_a_recoverable_torn_tail() {
        let dir = TempDir::new("wal").unwrap();
        let plan =
            Arc::new(FaultPlan::new(7).fail_at("wal.write", 2, FaultKind::Crash { torn_bytes: 5 }));
        let (wal, _) = BudgetWal::open(cfg(&dir), Some(plan)).unwrap();
        wal.append(&rec(RecordKind::Commit, "a", 0.25)).unwrap();
        wal.append(&rec(RecordKind::Commit, "a", 0.5)).unwrap();
        assert_eq!(wal.append(&rec(RecordKind::Commit, "a", 1.0)), Err(WalError::Crashed));
        drop(wal);
        let (_, recovery) = BudgetWal::open(cfg(&dir), None).unwrap();
        assert!(recovery.torn_tail_truncated);
        assert_eq!(recovery.commits, 2);
        assert_eq!(recovery.tenants["a"].spent_epsilon, 0.75);
    }

    #[test]
    fn crash_mid_rotation_recovers_the_sealed_segment() {
        let dir = TempDir::new("wal").unwrap();
        let small = WalConfig { segment_bytes: 100, ..cfg(&dir) };
        let plan = Arc::new(FaultPlan::new(7).fail_at(
            "wal.rotate",
            0,
            FaultKind::Crash { torn_bytes: 3 },
        ));
        let (wal, _) = BudgetWal::open(small.clone(), Some(plan)).unwrap();
        let mut committed = 0u32;
        loop {
            match wal.append(&rec(RecordKind::Commit, "a", 0.25)) {
                Ok(()) => committed += 1,
                Err(WalError::Crashed) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        drop(wal);
        // Successor file exists with a torn header.
        assert!(dir.path().join("wal-00000001.seg").exists());
        let (wal, recovery) = BudgetWal::open(small, None).unwrap();
        assert_eq!(recovery.commits, committed as u64);
        assert!(recovery.torn_tail_truncated);
        // The truncated successor is reusable.
        wal.append(&rec(RecordKind::Commit, "a", 0.25)).unwrap();
    }

    #[test]
    fn group_commit_batches_fsyncs_under_concurrency() {
        let dir = TempDir::new("wal").unwrap();
        let (wal, _) = BudgetWal::open(cfg(&dir), None).unwrap();
        let wal = Arc::new(wal);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        wal.append(&rec(RecordKind::Commit, &format!("t{t}"), 0.25 + i as f64))
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let c = wal.counters();
        assert_eq!(c.records, 400);
        assert!(c.fsyncs <= c.records, "fsyncs {} > records {}", c.fsyncs, c.records);
    }

    #[test]
    fn empty_directory_round_trips() {
        let dir = TempDir::new("wal").unwrap();
        let (_, recovery) = BudgetWal::open(cfg(&dir), None).unwrap();
        assert_eq!(recovery.records, 0);
        assert_eq!(recovery.segments, 0);
        let (_, again) = BudgetWal::open(cfg(&dir), None).unwrap();
        assert_eq!(again.records, 0);
        assert_eq!(again.segments, 1); // the created segment 0
        assert!(!again.torn_tail_truncated);
    }
}
