//! # starj-durable — crash-safe privacy accounting
//!
//! Every privacy guarantee in DP-starJ rests on the accountant's ledger.
//! This crate makes that ledger survive crashes: a dependency-free,
//! append-only **write-ahead budget journal** ([`BudgetWal`]) with
//! fixed-format length-prefixed records ([`JournalRecord`]), per-record
//! CRC32, group-fsync batching, and segment rotation; plus startup
//! **recovery** ([`Recovery`]) that replays segments — truncating a torn
//! tail at the last valid CRC — and rebuilds per-tenant spent-(ε, δ)
//! bit-identically (the service's dyadic ε grid makes f64 replay exact).
//!
//! The safety contract the service builds on top:
//!
//! * **Write-ahead**: a `Commit` record is durable *before* the in-memory
//!   ledger is charged and the answer released. A journal failure at that
//!   seam refuses the request and refunds the reservation — there is never
//!   an un-journaled spend.
//! * **Fail-closed**: any append or fsync failure permanently breaks the
//!   WAL handle ([`WalError::Broken`]); the owning service flips into
//!   degraded mode (cache hits and free answers only) until restart, when
//!   recovery re-reads what actually hit disk.
//! * **Never under-charge**: replay sums only `Commit` records, so after a
//!   crash at *any* record boundary the recovered spend is ≥ the ε of
//!   answers actually released (a fully-written commit whose acknowledgment
//!   was lost over-charges — safe; a torn commit was never acknowledged).
//!
//! [`FaultPlan`] is a deterministic, seeded fault-injection layer (IO
//! errors, short/torn writes, simulated crash points, worker panics) used
//! by the crash-recovery property battery and by operators rehearsing
//! failure drills.

#![warn(missing_docs)]

pub mod crc;
pub mod fault;
pub mod record;
pub mod tempdir;
pub mod wal;

pub use crc::crc32;
pub use fault::{FaultKind, FaultPlan};
pub use record::{JournalRecord, RecordKind};
pub use tempdir::TempDir;
pub use wal::{BudgetWal, Recovery, ReplayedLedger, SyncPolicy, WalConfig, WalCounters, WalError};
