//! CRC32 (IEEE 802.3 polynomial, reflected) — the per-record checksum.
//!
//! Hand-rolled so the journal stays dependency-free. The table is built at
//! compile time; the fold is the standard byte-at-a-time reflected form
//! (same parameters as zlib's `crc32`, so segments are checkable with
//! off-the-shelf tools).

/// Reflected polynomial for IEEE CRC32 (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `data` (IEEE, reflected, init/final XOR `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"reserve tenant=acme eps=0.25".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
