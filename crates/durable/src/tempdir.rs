//! Minimal scratch-directory helper for tests and benches.
//!
//! The workspace is dependency-free, so there is no `tempfile` crate; this
//! is the one shared stand-in. Directories are created under the system
//! temp root (callers can redirect via [`TempDir::in_dir`], e.g. to
//! `/dev/shm` for tmpfs benchmarking) and removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named directory deleted when the value drops.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `<system temp>/starj-<label>-<pid>-<n>`.
    pub fn new(label: &str) -> std::io::Result<TempDir> {
        Self::in_dir(&std::env::temp_dir(), label)
    }

    /// Create a unique directory under `root` (which must exist).
    pub fn in_dir(root: &Path, label: &str) -> std::io::Result<TempDir> {
        let name = format!(
            "starj-{label}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        );
        let path = root.join(name);
        if path.exists() {
            std::fs::remove_dir_all(&path)?;
        }
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept: PathBuf;
        {
            let dir = TempDir::new("unit").unwrap();
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(kept.join("probe"), b"x").unwrap();
        }
        assert!(!kept.exists(), "temp dir survived drop");
    }

    #[test]
    fn two_dirs_never_collide() {
        let a = TempDir::new("unit").unwrap();
        let b = TempDir::new("unit").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
