//! Journal record format.
//!
//! On disk every record is framed as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! with a fixed little-endian payload layout:
//!
//! ```text
//! kind        u8    reserve=1 / commit=2 / refund=3 / refusal=4
//! request_id  u64   wire request id (0 when not wire-originated)
//! query_hash  u64   canonical-query hash (see starj-service)
//! epsilon     u64   f64 bit pattern (dyadic-exact)
//! delta       u64   f64 bit pattern
//! data_ver    u64   schema/data version the request ran against
//! tenant_len  u16   UTF-8 byte length of the tenant id
//! tenant      …     tenant id bytes
//! ```
//!
//! ε and δ travel as raw `f64` bit patterns so recovery replay reproduces
//! the in-memory ledger **bit-for-bit**: the service quantizes ε to a
//! dyadic grid, making the replayed sum exact and order-independent.

use crate::crc::crc32;

/// Fixed-size prefix of the payload (everything before the tenant bytes).
pub const PAYLOAD_HEADER: usize = 1 + 8 + 8 + 8 + 8 + 8 + 2;

/// Upper bound on one encoded payload; longer records are treated as
/// corruption by recovery (a torn length field would otherwise ask us to
/// allocate gigabytes).
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// What happened at a settlement seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Budget moved into the in-flight accumulator (write-ahead of a spend).
    Reserve,
    /// The spend became final: the ledger was charged and an answer released.
    /// **Recovery replays only these.**
    Commit,
    /// The reservation was returned (rollback or RAII drop) — no answer.
    Refund,
    /// The accountant refused the request outright (exhausted budget);
    /// journaled for the audit trail, spends nothing.
    Refusal,
}

impl RecordKind {
    fn to_u8(self) -> u8 {
        match self {
            RecordKind::Reserve => 1,
            RecordKind::Commit => 2,
            RecordKind::Refund => 3,
            RecordKind::Refusal => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RecordKind::Reserve),
            2 => Some(RecordKind::Commit),
            3 => Some(RecordKind::Refund),
            4 => Some(RecordKind::Refusal),
            _ => None,
        }
    }
}

/// One journal entry: a settlement event at a (tenant, query, version) seam.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Which settlement seam fired.
    pub kind: RecordKind,
    /// The tenant whose budget moved.
    pub tenant: String,
    /// Canonical-query hash (`starj_service::query_hash`).
    pub query_hash: u64,
    /// ε of the movement (journaled as its exact bit pattern).
    pub epsilon: f64,
    /// δ of the movement (journaled as its exact bit pattern).
    pub delta: f64,
    /// Data version the request was admitted against.
    pub data_version: u64,
    /// Wire request id (0 for in-process callers).
    pub request_id: u64,
}

impl JournalRecord {
    /// Serialize the payload (no frame) into `buf`.
    pub fn encode_payload(&self, buf: &mut Vec<u8>) {
        buf.push(self.kind.to_u8());
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.extend_from_slice(&self.query_hash.to_le_bytes());
        buf.extend_from_slice(&self.epsilon.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.delta.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.data_version.to_le_bytes());
        let tenant = self.tenant.as_bytes();
        debug_assert!(tenant.len() <= u16::MAX as usize, "tenant id over 64 KiB");
        buf.extend_from_slice(&(tenant.len() as u16).to_le_bytes());
        buf.extend_from_slice(tenant);
    }

    /// Serialize the full frame: `[len][crc][payload]`.
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(PAYLOAD_HEADER + self.tenant.len());
        self.encode_payload(&mut payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode a payload previously produced by [`encode_payload`]. Returns
    /// `None` on any structural violation (recovery treats that the same
    /// as a CRC mismatch).
    ///
    /// [`encode_payload`]: JournalRecord::encode_payload
    pub fn decode_payload(payload: &[u8]) -> Option<JournalRecord> {
        if payload.len() < PAYLOAD_HEADER {
            return None;
        }
        let kind = RecordKind::from_u8(payload[0])?;
        let u64_at = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[off..off + 8]);
            u64::from_le_bytes(b)
        };
        let request_id = u64_at(1);
        let query_hash = u64_at(9);
        let epsilon = f64::from_bits(u64_at(17));
        let delta = f64::from_bits(u64_at(25));
        let data_version = u64_at(33);
        let tenant_len = u16::from_le_bytes([payload[41], payload[42]]) as usize;
        if payload.len() != PAYLOAD_HEADER + tenant_len {
            return None;
        }
        let tenant = std::str::from_utf8(&payload[PAYLOAD_HEADER..]).ok()?.to_string();
        Some(JournalRecord { kind, tenant, query_hash, epsilon, delta, data_version, request_id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: RecordKind) -> JournalRecord {
        JournalRecord {
            kind,
            tenant: "acme-analytics".into(),
            query_hash: 0xDEAD_BEEF_CAFE_F00D,
            epsilon: 0.375, // dyadic
            delta: 1e-9,
            data_version: 7,
            request_id: 42,
        }
    }

    #[test]
    fn round_trips_every_kind() {
        for kind in
            [RecordKind::Reserve, RecordKind::Commit, RecordKind::Refund, RecordKind::Refusal]
        {
            let rec = sample(kind);
            let frame = rec.encode_frame();
            let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
            let payload = &frame[8..];
            assert_eq!(payload.len(), len);
            assert_eq!(crc32(payload), crc);
            assert_eq!(JournalRecord::decode_payload(payload), Some(rec));
        }
    }

    #[test]
    fn epsilon_bits_survive_exactly() {
        // A non-dyadic ε still round-trips bit-for-bit: we journal the
        // pattern, not a decimal rendering.
        let mut rec = sample(RecordKind::Commit);
        rec.epsilon = 0.1f64;
        rec.delta = f64::MIN_POSITIVE;
        let frame = rec.encode_frame();
        let back = JournalRecord::decode_payload(&frame[8..]).unwrap();
        assert_eq!(back.epsilon.to_bits(), rec.epsilon.to_bits());
        assert_eq!(back.delta.to_bits(), rec.delta.to_bits());
    }

    #[test]
    fn truncated_or_mangled_payloads_decode_to_none() {
        let rec = sample(RecordKind::Commit);
        let mut payload = Vec::new();
        rec.encode_payload(&mut payload);
        for cut in 0..payload.len() {
            assert_eq!(JournalRecord::decode_payload(&payload[..cut]), None, "cut at {cut}");
        }
        let mut bad_kind = payload.clone();
        bad_kind[0] = 9;
        assert_eq!(JournalRecord::decode_payload(&bad_kind), None);
        let mut bad_len = payload.clone();
        bad_len[41] = 0xFF; // tenant_len no longer matches the buffer
        assert_eq!(JournalRecord::decode_payload(&bad_len), None);
    }
}
