//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded script of failures keyed by *site* (a
//! stable string naming a seam, e.g. `"wal.write"`) and *hit index* (the
//! n-th time execution reaches that site). Instrumented code calls
//! [`FaultPlan::check`] at each seam; the plan counts the hit and returns
//! the armed [`FaultKind`], if any. Two runs with the same plan and the
//! same workload observe the same faults at the same operations — that
//! determinism is what lets the crash-recovery battery sweep *every*
//! record boundary reproducibly.
//!
//! Sites instrumented today:
//!
//! | site              | seam                                                |
//! |-------------------|-----------------------------------------------------|
//! | `wal.open`        | opening/creating the journal directory and segments |
//! | `wal.write`       | appending one record frame                          |
//! | `wal.sync`        | the group-commit fsync                              |
//! | `wal.rotate`      | sealing a segment and opening its successor         |
//! | `coalesce.drain`  | the coalescer worker's batch drain (panic testing)  |

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What to inject when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails cleanly with an IO error; no bytes were written.
    IoError,
    /// Simulated crash mid-write: the first `torn_bytes` bytes of the
    /// in-flight record reach the file (a torn tail), then the process
    /// "dies" — the WAL handle is permanently broken and the real file is
    /// left exactly as a kill at that instant would leave it.
    Crash {
        /// Bytes of the current frame that make it to disk (clamped to the
        /// frame length; `usize::MAX` means the full frame lands but the
        /// acknowledgment is lost).
        torn_bytes: usize,
    },
    /// The instrumented site panics (worker-containment testing).
    Panic,
}

#[derive(Debug, Clone)]
struct Rule {
    site: &'static str,
    at_hit: u64,
    kind: FaultKind,
}

/// A seeded, deterministic schedule of injected faults.
///
/// The seed feeds [`FaultPlan::rng_u64`], a splitmix64 stream tests use to
/// derive torn-write offsets and jitter deterministically; the rules are
/// explicit `(site, hit, kind)` triples. A plan with no rules is a pure
/// hit counter — the battery's "dry run" uses that to enumerate crash
/// points before arming them one by one.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rng_calls: AtomicU64,
    rules: Mutex<Vec<Rule>>,
    hits: Mutex<HashMap<&'static str, u64>>,
}

impl FaultPlan {
    /// A plan with no armed faults, counting hits under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rng_calls: AtomicU64::new(0),
            rules: Mutex::new(Vec::new()),
            hits: Mutex::new(HashMap::new()),
        }
    }

    /// Arm `kind` to fire the `at_hit`-th time (0-based) execution reaches
    /// `site`. Builder-style so plans read as scripts.
    pub fn fail_at(self, site: &'static str, at_hit: u64, kind: FaultKind) -> Self {
        self.arm(site, at_hit, kind);
        self
    }

    /// Arm a fault on an already-shared plan.
    pub fn arm(&self, site: &'static str, at_hit: u64, kind: FaultKind) {
        self.rules.lock().expect("fault rules").push(Rule { site, at_hit, kind });
    }

    /// Record one hit at `site` and return the fault armed for it, if any.
    pub fn check(&self, site: &'static str) -> Option<FaultKind> {
        let mut hits = self.hits.lock().expect("fault hits");
        let hit = hits.entry(site).or_insert(0);
        let this = *hit;
        *hit += 1;
        drop(hits);
        let rules = self.rules.lock().expect("fault rules");
        rules.iter().find(|r| r.site == site && r.at_hit == this).map(|r| r.kind)
    }

    /// Like [`check`](FaultPlan::check) but panics when the armed fault is
    /// [`FaultKind::Panic`]; other kinds are returned for the caller to
    /// act on. Seams that cannot meaningfully tear a write use this.
    pub fn trip(&self, site: &'static str) -> Option<FaultKind> {
        match self.check(site) {
            Some(FaultKind::Panic) => {
                panic!("injected panic at fault site `{site}`")
            }
            other => other,
        }
    }

    /// Hits recorded at `site` so far.
    pub fn hits(&self, site: &str) -> u64 {
        *self.hits.lock().expect("fault hits").get(site).unwrap_or(&0)
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next value of the plan's deterministic splitmix64 stream. Same seed
    /// ⇒ same sequence, independent of thread timing (the call counter is
    /// atomic, so concurrent callers partition one global stream).
    pub fn rng_u64(&self) -> u64 {
        let n = self.rng_calls.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// One step of the splitmix64 generator (public domain, Steele et al.).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_at_the_armed_hit() {
        let plan = FaultPlan::new(1).fail_at("wal.write", 2, FaultKind::IoError);
        assert_eq!(plan.check("wal.write"), None);
        assert_eq!(plan.check("wal.sync"), None); // independent counter
        assert_eq!(plan.check("wal.write"), None);
        assert_eq!(plan.check("wal.write"), Some(FaultKind::IoError));
        assert_eq!(plan.check("wal.write"), None); // one-shot
        assert_eq!(plan.hits("wal.write"), 4);
        assert_eq!(plan.hits("wal.sync"), 1);
    }

    #[test]
    fn rng_stream_is_seed_deterministic() {
        let a = FaultPlan::new(99);
        let b = FaultPlan::new(99);
        let xs: Vec<u64> = (0..8).map(|_| a.rng_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.rng_u64()).collect();
        assert_eq!(xs, ys);
        let c = FaultPlan::new(100);
        assert_ne!(xs, (0..8).map(|_| c.rng_u64()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "injected panic at fault site")]
    fn trip_panics_on_panic_kind() {
        let plan = FaultPlan::new(0).fail_at("coalesce.drain", 0, FaultKind::Panic);
        plan.trip("coalesce.drain");
    }
}
