//! Telemetry tour: what the observability subsystem records while a
//! service answers DP queries — request-stage spans, the privacy-budget
//! audit trail, kernel profiling counters, the slow-query log, and the
//! Prometheus exposition — all on a toy schema small enough to read the
//! output end to end.
//!
//! ```text
//! cargo run --release --example telemetry_tour
//! ```
//!
//! The tour closes with the audit trail's core guarantee checked live:
//! per-tenant Commit-event ε sums are **bit-identical** to the
//! accountant's ledger (exactly — the εs here are dyadic).

use dp_starj_repro::engine::{Column, Dimension, Domain, Predicate, StarQuery, StarSchema, Table};
use dp_starj_repro::noise::PrivacyBudget;
use dp_starj_repro::service::{Service, ServiceConfig, ServiceError, Stage};
use dp_starj_repro::telemetry::kernel_counters;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy star: one dimension ("color", 4 values), twelve fact rows.
    let domain = Domain::numeric("color", 4)?;
    let dim = Table::new(
        "D",
        vec![Column::key("pk", vec![0, 1, 2, 3]), Column::attr("color", domain, vec![0, 1, 2, 3])],
    )?;
    let fact = Table::new(
        "F",
        vec![
            Column::key("fk", (0..12u32).map(|i| i % 4).collect()),
            Column::measure("qty", (1..=12i64).collect()),
        ],
    )?;
    let schema = Arc::new(StarSchema::new(fact, vec![Dimension::new(dim, "pk", "fk")])?);

    // Telemetry is on by default; `ServiceConfig::telemetry` tunes ring
    // capacities and the slow-query threshold (µs).
    let service = Service::new(Arc::clone(&schema), ServiceConfig::default());
    service.register_tenant("alice", PrivacyBudget::pure(4.0)?)?;
    service.register_tenant("pinch", PrivacyBudget::pure(0.3)?)?;

    // ---- traffic: paid answers, a cache replay, a refusal -------------
    let kernel_before = kernel_counters().snapshot();
    for v in 0..4u32 {
        let q = StarQuery::count(format!("c{v}")).with(Predicate::point("D", "color", v));
        service.pm_answer("alice", &q, 0.25)?;
    }
    let replay = StarQuery::count("c0").with(Predicate::point("D", "color", 0));
    assert!(service.pm_answer("alice", &replay, 0.25)?.cached);
    let refused = service.pm_answer("pinch", &replay, 0.5);
    assert!(matches!(refused, Err(ServiceError::BudgetExhausted { .. })));

    // ---- 1. request-stage spans ---------------------------------------
    println!("== request-stage spans ==");
    for record in service.telemetry().spans() {
        print!(
            "#{} {} tenant={} outcome={} total={}µs |",
            record.trace_id,
            record.kind.name(),
            record.tenant(),
            record.outcome.name(),
            record.duration_ns() / 1_000,
        );
        for stage in Stage::ALL {
            if let Some((s, e)) = record.stage(stage) {
                print!(" {}={}µs", stage.name(), (e - s) / 1_000);
            }
        }
        println!();
    }

    // ---- 2. the privacy-budget audit trail ----------------------------
    println!("\n== audit trail (JSONL) ==");
    print!("{}", service.audit_jsonl());

    // The guarantee, checked live: Σ Commit ε ≡ ledger spend, bitwise.
    for tenant in ["alice", "pinch"] {
        let audited = service.telemetry().audit().committed(tenant).0;
        let ledger = service.tenant_usage(tenant)?.spent_epsilon;
        assert_eq!(audited.to_bits(), ledger.to_bits());
        println!("audit ≡ ledger for {tenant}: ε = {ledger} (bit-identical)");
    }

    // ---- 3. kernel profiling counters ---------------------------------
    println!("\n== kernel counters (this run) ==");
    for (name, value) in kernel_counters().snapshot().since(&kernel_before).entries() {
        if value > 0 {
            println!("{name:28} {value}");
        }
    }

    // ---- 4. the Prometheus exposition (head) --------------------------
    println!("\n== prometheus exposition (first 12 lines) ==");
    for line in service.prometheus_text().lines().take(12) {
        println!("{line}");
    }
    println!(
        "\nslow-query log: {} entries (threshold {} µs — raise traffic or lower \
         `telemetry.slow_query_us` to populate it)",
        service.telemetry().slow_queries().len(),
        ServiceConfig::default().telemetry.slow_query_us,
    );
    Ok(())
}
