//! The router tier end to end: four SSB scale slices placed on four
//! shards by consistent hash, eight tenants firing mixed PM/WD traffic at
//! their owning shards, per-shard vs aggregate metrics, and a shard-local
//! `refresh_schema` that leaves the other three shards' caches untouched.
//!
//! ```text
//! cargo run --release --example sharded_router
//! ```

use dp_starj_repro::core::workload::{PredicateWorkload, WorkloadBlock};
use dp_starj_repro::engine::{Constraint, Predicate, StarQuery};
use dp_starj_repro::noise::PrivacyBudget;
use dp_starj_repro::router::{Router, RouterConfig};
use dp_starj_repro::ssb::{generate, SsbConfig};
use std::sync::Arc;

const SHARDS: usize = 4;
const TENANTS: usize = 8;
const QUERIES_EACH: usize = 30;

fn dashboard() -> PredicateWorkload {
    PredicateWorkload::new(
        vec![
            WorkloadBlock { table: "Date".into(), attr: "year".into(), domain: 7 },
            WorkloadBlock { table: "Customer".into(), attr: "region".into(), domain: 5 },
        ],
        (0..7u32)
            .map(|y| vec![Constraint::Range { lo: 0, hi: y }, Constraint::Range { lo: 0, hi: 4 }])
            .collect(),
    )
    .unwrap()
}

fn main() {
    // Four slices of one SSB volume, each its own dataset → its own scan
    // plans, caches, and privacy budget domain.
    let router =
        Arc::new(Router::new(RouterConfig { shards: SHARDS, ..RouterConfig::default() }).unwrap());
    for i in 0..SHARDS {
        let slice = Arc::new(
            generate(&SsbConfig::at_scale(0.02 / SHARDS as f64, 7 + i as u64))
                .expect("SSB slice generation"),
        );
        let placement = router.add_dataset(&format!("slice-{i}"), slice).unwrap();
        println!("dataset `{}` placed on shard {}", placement.dataset, placement.shard);
    }
    for t in 0..TENANTS {
        router
            .register_tenant_all(&format!("tenant-{t}"), PrivacyBudget::pure(50.0).unwrap())
            .unwrap();
    }

    // Mixed pm/wd traffic: each tenant walks the slices round-robin,
    // interleaving ad-hoc counts with a repeat dashboard workload.
    let workload = Arc::new(dashboard());
    std::thread::scope(|scope| {
        for t in 0..TENANTS {
            let router = Arc::clone(&router);
            let workload = Arc::clone(&workload);
            scope.spawn(move || {
                let tenant = format!("tenant-{t}");
                for i in 0..QUERIES_EACH {
                    let dataset = format!("slice-{}", (t + i) % SHARDS);
                    if i % 5 == 4 {
                        router
                            .wd_answer(&dataset, &tenant, &workload, 0.2)
                            .expect("funded dashboard");
                    } else {
                        let q = StarQuery::count(format!("adhoc-{t}-{i}"))
                            .with(Predicate::range("Date", "year", 0, ((t + i) % 7) as u32))
                            .with(Predicate::point("Customer", "region", (i % 5) as u32));
                        router.pm_answer(&dataset, &tenant, &q, 0.05).expect("funded query");
                    }
                }
            });
        }
    });

    // Per-shard vs aggregate: counters partition exactly; the aggregate
    // latency quantiles come from merged histogram buckets.
    let m = router.metrics();
    println!("\nper-shard metrics:");
    for (shard, s) in &m.per_shard {
        println!(
            "  shard {shard}: {} served, {} cache hits, {} W-cache hits, p99 {:.0} µs",
            s.queries_served,
            s.cache_hits,
            s.w_cache_hits,
            s.p99_latency_us.unwrap_or(0.0)
        );
    }
    println!(
        "aggregate: {} served ({} routed requests), {} cache hits, {} W-cache hits, \
         p50 {:.0} µs / p99 {:.0} µs",
        m.aggregate.queries_served,
        m.routed_requests,
        m.aggregate.cache_hits,
        m.aggregate.w_cache_hits,
        m.aggregate.p50_latency_us.unwrap_or(0.0),
        m.aggregate.p99_latency_us.unwrap_or(0.0),
    );

    // Shard-local refresh: slice-0 gets fresh data — its caches die and
    // its version bumps, while every other shard keeps its caches warm.
    let cached_before: Vec<u64> = m.per_shard.iter().map(|(_, s)| s.cache_hits).collect();
    let version = router
        .refresh_schema(
            "slice-0",
            Arc::new(generate(&SsbConfig::at_scale(0.02 / SHARDS as f64, 99)).unwrap()),
        )
        .unwrap();
    println!("\nrefreshed `slice-0` to data version {version} (shard-local):");
    let q = StarQuery::count("post-refresh").with(Predicate::range("Date", "year", 0, 6));
    let fresh = router.pm_answer("slice-0", "tenant-0", &q, 0.05).unwrap();
    println!("  slice-0 re-pays after refresh: cached={}", fresh.cached);
    // A repeat dashboard on an untouched slice still replays for free.
    let replayed = router.wd_answer("slice-1", "tenant-0", &workload, 0.2).unwrap();
    println!(
        "  slice-1 dashboard replay untouched by the refresh: cached={} \
         (cache hits before: {:?})",
        replayed.cached, cached_before
    );
}
