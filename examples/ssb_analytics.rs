//! The paper's motivating OLAP scenario: an analyst runs the nine SSB
//! star-join queries (COUNT / SUM / GROUP BY) against a generated warehouse
//! and compares exact answers with ε-DP answers from DP-starJ.
//!
//! ```text
//! cargo run --release --example ssb_analytics
//! ```

use dp_starj_repro::core::pm::{pm_answer, PmConfig};
use dp_starj_repro::engine::{execute, QueryResult};
use dp_starj_repro::noise::StarRng;
use dp_starj_repro::ssb::{all_queries, generate, SsbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SsbConfig::at_scale(0.02, 7);
    println!(
        "Generating SSB instance: {} lineorders, {} customers, {} suppliers, {} parts",
        config.lineorder_rows(),
        config.customer_rows(),
        config.supplier_rows(),
        config.part_rows()
    );
    let schema = generate(&config)?;

    let epsilon = 1.0;
    println!("\n{:<6} {:>14} {:>14} {:>10}", "query", "exact", "dp (ε=1)", "rel err %");
    println!("{}", "-".repeat(50));
    for query in all_queries() {
        let exact = execute(&schema, &query)?;
        let mut rng = StarRng::from_seed(2023).derive(&query.name);
        let noisy = pm_answer(&schema, &query, epsilon, &PmConfig::default(), &mut rng)?;
        let err = noisy.result.positional_relative_error(&exact) * 100.0;
        match (&exact, &noisy.result) {
            (QueryResult::Scalar(e), QueryResult::Scalar(n)) => {
                println!("{:<6} {e:>14.0} {n:>14.0} {err:>10.2}", query.name);
            }
            (QueryResult::Groups(e), QueryResult::Groups(n)) => {
                println!("{:<6} {:>10} grps {:>10} grps {err:>10.2}", query.name, e.len(), n.len());
            }
            _ => unreachable!("shapes always agree"),
        }
    }
    println!(
        "\nGROUP BY rows compare group-count histograms positionally \
         (see DESIGN.md, interpretation #8)."
    );
    Ok(())
}
