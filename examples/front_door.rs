//! The SQL front door end to end: a [`Gate`] listening on a real TCP
//! port in front of a router hosting an SSB dataset, and a wire client
//! speaking the length-prefixed JSON protocol — guarded SQL in, noisy
//! answers and structured refusals out.
//!
//! ```text
//! cargo run --release --example front_door
//! ```

use dp_starj_repro::engine::{to_sql, Predicate, StarQuery};
use dp_starj_repro::gate::{Gate, GateClient, GateConfig};
use dp_starj_repro::noise::PrivacyBudget;
use dp_starj_repro::router::{Router, RouterConfig};
use dp_starj_repro::ssb::{generate, SsbConfig};
use dp_starj_repro::telemetry::Json;
use std::sync::Arc;

fn main() {
    // A router hosting one SSB dataset with one funded tenant.
    let schema = Arc::new(generate(&SsbConfig::at_scale(0.01, 7)).expect("SSB generation"));
    let router = Arc::new(Router::new(RouterConfig::default()).unwrap());
    router.add_dataset("ssb", Arc::clone(&schema)).unwrap();
    router.register_tenant("ssb", "analyst", PrivacyBudget::pure(4.0).unwrap()).unwrap();

    // The gate: auth tokens map wire clients to tenants; everything else
    // (budgets, canonicalization, noise) stays behind the router. The
    // metrics verb spans every tenant, so it needs the separate admin
    // token — a tenant token gets a `forbidden` refusal.
    let config = GateConfig {
        tokens: vec![("s3cret".to_string(), "analyst".to_string())],
        admin_tokens: vec!["0ps-t3am".to_string()],
        ..GateConfig::default()
    };
    let gate = Gate::bind(Arc::clone(&router), config, "127.0.0.1:0").unwrap();
    println!("gate listening on {}\n", gate.addr());

    let mut client = GateClient::connect(gate.addr()).unwrap();

    // Ask in SQL — here rendered from a StarQuery, but any statement in
    // the guarded dialect works.
    let query = StarQuery::count("winter_eu")
        .with(Predicate::range("Date", "year", 0, 2))
        .with(Predicate::point("Customer", "region", 1));
    let sql = to_sql(&schema, &query);
    println!("> {sql}");
    let answer = client.sql("s3cret", "ssb", &sql, 0.5).unwrap();
    println!(
        "  noisy count = {:.1}  (charged ε = {}, cached = {})",
        answer.get("value").and_then(Json::as_f64).unwrap(),
        answer.get("cost_epsilon").and_then(Json::as_f64).unwrap(),
        answer.get("cached").and_then(Json::as_f64).unwrap() != 0.0,
    );
    if let Some(noisy) = answer.get("noisy_sql").and_then(Json::as_str) {
        println!("  served as: {noisy}");
    }

    // The same statement again replays the cached answer for free.
    let again = client.sql("s3cret", "ssb", &sql, 0.5).unwrap();
    println!(
        "\n> (same statement)\n  noisy count = {:.1}  (charged ε = {}, cached = {})",
        again.get("value").and_then(Json::as_f64).unwrap(),
        again.get("cost_epsilon").and_then(Json::as_f64).unwrap(),
        again.get("cached").and_then(Json::as_f64).unwrap() != 0.0,
    );

    // Refusals are structured, typed, and never close the connection.
    let typo = "SELECT count(*) FROM Fact WHERE Customer.regio = 1;";
    println!("\n> {typo}");
    let refused = client.sql("s3cret", "ssb", typo, 0.5).unwrap();
    println!(
        "  refused: code = {}, pos = {}, error = {}",
        refused.get("code").and_then(Json::as_str).unwrap(),
        refused.get("pos").and_then(Json::as_f64).unwrap(),
        refused.get("error").and_then(Json::as_str).unwrap(),
    );

    // Burn the rest of the budget with distinct statements (repeats would
    // replay from cache for free) to show the accountant refusing over
    // the wire with the standard code.
    for year in 0..7u32 {
        let spender = to_sql(
            &schema,
            &StarQuery::count("spend").with(Predicate::point("Date", "year", year)),
        );
        let response = client.sql("s3cret", "ssb", &spender, 1.0).unwrap();
        if response.get("ok").and_then(Json::as_f64) != Some(1.0) {
            println!(
                "\n> (after exhausting the allotment)\n  refused: code = {}",
                response.get("code").and_then(Json::as_str).unwrap()
            );
            break;
        }
    }

    // The metrics verb serves the router's Prometheus exposition and the
    // audit JSONL — note the wire request ids on the trail. It spans
    // every tenant's spends and hashes, so only the admin token may read
    // it; the analyst's own token is refused.
    let refused = client.metrics("s3cret").unwrap();
    println!(
        "\n> metrics with the tenant token\n  refused: code = {}",
        refused.get("code").and_then(Json::as_str).unwrap()
    );
    let metrics = client.metrics("0ps-t3am").unwrap();
    let audit = metrics.get("audit_jsonl").and_then(Json::as_str).unwrap();
    println!("\naudit trail (last 3 events, request_id = the wire frame id):");
    let lines: Vec<&str> = audit.lines().collect();
    for line in lines.iter().rev().take(3).rev() {
        println!("  {line}");
    }
}
