//! Quickstart: build a tiny star schema by hand and answer a COUNT query
//! under ε-differential privacy with the Predicate Mechanism.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dp_starj_repro::core::pm::{pm_answer, PmConfig};
use dp_starj_repro::engine::{
    execute, Column, Dimension, Domain, Predicate, StarQuery, StarSchema, Table,
};
use dp_starj_repro::noise::StarRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Customer dimension: 6 customers across 3 regions.
    let region = Domain::categorical("region", vec!["NORTH", "SOUTH", "WEST"])?;
    let customer = Table::new(
        "Customer",
        vec![
            Column::key("pk", (0..6).collect()),
            Column::attr("region", region, vec![0, 0, 1, 1, 2, 2]),
        ],
    )?;

    // An Orders fact table: 12 orders referencing customers.
    let orders = Table::new(
        "Orders",
        vec![
            Column::key("custkey", vec![0, 0, 0, 1, 1, 2, 2, 3, 4, 4, 5, 5]),
            Column::measure("amount", vec![10, 20, 30, 15, 25, 40, 5, 60, 35, 45, 50, 55]),
        ],
    )?;

    let schema = StarSchema::new(orders, vec![Dimension::new(customer, "pk", "custkey")])?;

    // SELECT count(*) FROM Orders, Customer
    // WHERE Orders.custkey = Customer.pk AND Customer.region = 'SOUTH';
    let query = StarQuery::count("south_orders").with(Predicate::point("Customer", "region", 1));

    let exact = execute(&schema, &query)?.scalar()?;
    println!("exact answer        : {exact}");

    // The same query under ε = 1 differential privacy. The Predicate
    // Mechanism perturbs the predicate constant (global sensitivity = the
    // region domain size, 3) and evaluates the noisy query exactly.
    let mut rng = StarRng::from_seed(42);
    for eps in [0.5, 1.0, 2.0] {
        let answer = pm_answer(&schema, &query, eps, &PmConfig::default(), &mut rng)?;
        println!(
            "ε = {eps:<4}: DP answer = {:<4} (noisy predicate: {:?})",
            answer.result.scalar()?,
            answer.noisy_query.predicates[0].constraint
        );
    }
    Ok(())
}
