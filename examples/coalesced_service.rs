//! Group-commit coalescing end to end: eight analysts fire independent
//! single-shot queries at one service, and the coalescer fuses their
//! concurrent traffic into shared fact scans — no one ever calls a batch
//! API. A second act shows repeat dashboard workloads going scan-free via
//! the W-histogram cache, and a data refresh invalidating every cache.
//!
//! ```text
//! cargo run --release --example coalesced_service
//! ```

use dp_starj_repro::core::workload::{PredicateWorkload, WorkloadBlock};
use dp_starj_repro::engine::{fact_scan_count, Constraint, Predicate, StarQuery};
use dp_starj_repro::noise::PrivacyBudget;
use dp_starj_repro::service::{Service, ServiceConfig};
use dp_starj_repro::ssb::{generate, SsbConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let schema = Arc::new(generate(&SsbConfig::at_scale(0.01, 7)).expect("SSB generation"));
    let config = ServiceConfig {
        coalesce: true,
        coalesce_window: Duration::from_micros(300),
        cache_answers: false, // make every request pay, so fusion is visible
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::new(Arc::clone(&schema), config));

    // Act 1: eight analysts, single-shot queries, zero explicit batches.
    const ANALYSTS: u32 = 8;
    const QUERIES_EACH: u32 = 40;
    for a in 0..ANALYSTS {
        service
            .register_tenant(&format!("analyst-{a}"), PrivacyBudget::pure(50.0).unwrap())
            .unwrap();
    }
    let scans_before = fact_scan_count();
    let handles: Vec<_> = (0..ANALYSTS)
        .map(|a| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let tenant = format!("analyst-{a}");
                for i in 0..QUERIES_EACH {
                    let q = StarQuery::count(format!("adhoc-{a}-{i}"))
                        .with(Predicate::range("Date", "year", 0, (a + i) % 7))
                        .with(Predicate::point("Customer", "region", i % 5));
                    service.pm_answer(&tenant, &q, 0.05).expect("funded, well-formed");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let scans = fact_scan_count() - scans_before;
    let m = service.metrics();
    println!(
        "{} single-query requests from {ANALYSTS} analysts answered with {scans} fact scans",
        m.queries_served
    );
    println!(
        "  coalescer: {} requests parked across {} drains (mean batch {:.1}), \
         {} scans fused away",
        m.coalesced_requests,
        m.coalesced_batches,
        m.coalesced_requests as f64 / m.coalesced_batches.max(1) as f64,
        m.fused_queries_saved
    );

    // Act 2: a repeat dashboard workload — cold request builds W (one
    // scan), every warm repeat is a scan-free dot product.
    let workload = PredicateWorkload::new(
        vec![
            WorkloadBlock { table: "Date".into(), attr: "year".into(), domain: 7 },
            WorkloadBlock { table: "Customer".into(), attr: "region".into(), domain: 5 },
            WorkloadBlock { table: "Supplier".into(), attr: "region".into(), domain: 5 },
        ],
        (0..7u32)
            .map(|y| {
                vec![
                    Constraint::Range { lo: 0, hi: y },
                    Constraint::Range { lo: 0, hi: 4 },
                    Constraint::Range { lo: 0, hi: 4 },
                ]
            })
            .collect(),
    )
    .unwrap();
    let scans_before = fact_scan_count();
    for _ in 0..10 {
        service.wd_answer("analyst-0", &workload, 0.2).expect("dashboard refresh");
    }
    let m = service.metrics();
    println!(
        "10 dashboard workloads ({} queries each) cost {} fact scans — {} W-cache hits",
        workload.len(),
        fact_scan_count() - scans_before,
        m.w_cache_hits
    );

    // Act 3: the data changes — every cached release and histogram dies.
    let version = service.refresh_schema(Arc::new(
        generate(&SsbConfig::at_scale(0.01, 8)).expect("refreshed instance"),
    ));
    println!(
        "refreshed to data version {version}: {} cached answers, {} cached histograms",
        service.cached_answers(),
        service.cached_histograms()
    );
    let after = service.wd_answer("analyst-0", &workload, 0.2).unwrap();
    println!(
        "post-refresh dashboard re-pays and re-scans: cached={} (W rebuilt: {} histograms)",
        after.cached,
        service.cached_histograms()
    );
}
