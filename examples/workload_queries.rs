//! Answering a correlated workload of star-join queries: plain per-query PM
//! versus Workload Decomposition (paper §5.3, Figure 9) on the workloads W1
//! and W2.
//!
//! ```text
//! cargo run --release --example workload_queries
//! ```

use dp_starj_repro::core::pm::PmConfig;
use dp_starj_repro::core::workload::{
    pm_workload_answer, wd_answer, workload_relative_error, PredicateWorkload, WdConfig,
    WorkloadBlock,
};
use dp_starj_repro::noise::StarRng;
use dp_starj_repro::ssb::{generate, w1, w2, SsbConfig, Workload, BLOCKS};

fn adapt(w: &Workload) -> PredicateWorkload {
    let blocks = BLOCKS
        .iter()
        .map(|(t, a, d)| WorkloadBlock { table: (*t).into(), attr: (*a).into(), domain: *d })
        .collect();
    let rows = w
        .queries
        .iter()
        .map(|q| vec![q.year.clone(), q.cust_region.clone(), q.supp_region.clone()])
        .collect();
    PredicateWorkload::new(blocks, rows).expect("paper workloads are well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = generate(&SsbConfig::at_scale(0.02, 5))?;
    let epsilon = 1.0;
    let trials = 20;

    for (name, workload) in [("W1", w1()), ("W2", w2())] {
        let w = adapt(&workload);
        let truth = w.true_answers(&schema)?;
        println!("\nWorkload {name}: {} queries, exact answers {truth:?}", w.len());
        println!("  auto-selected strategies: {:?}", w.choose_strategies());

        let (mut pm_total, mut wd_total) = (0.0, 0.0);
        for t in 0..trials {
            let mut r1 = StarRng::from_seed(100).derive(name).derive_index(t);
            let mut r2 = StarRng::from_seed(200).derive(name).derive_index(t);
            let pm = pm_workload_answer(&schema, &w, epsilon, &PmConfig::default(), &mut r1)?;
            let wd = wd_answer(&schema, &w, epsilon, &WdConfig::default(), &mut r2)?;
            pm_total += workload_relative_error(&pm, &truth);
            wd_total += workload_relative_error(&wd, &truth);
        }
        println!(
            "  mean relative error over {trials} trials @ ε={epsilon}: \
             per-query PM {:.1}%  vs  WD {:.1}%",
            pm_total / trials as f64 * 100.0,
            wd_total / trials as f64 * 100.0
        );
    }
    println!("\nWD shares noisy strategy predicates across correlated queries (Figure 9).");
    Ok(())
}
