//! Service quickstart: run an SSB workload through the multi-tenant DP
//! query service from several concurrent tenant threads.
//!
//! Each tenant gets its own `(ε, δ)` allotment. Threads submit the nine
//! Table-1 SSB queries **twice** — the second pass replays every answer
//! from the cache at zero additional budget — and then keep going until
//! the accountant starts refusing, demonstrating hard budget enforcement.
//!
//! ```text
//! cargo run --release --example service_quickstart
//! ```

use dp_starj_repro::noise::PrivacyBudget;
use dp_starj_repro::service::{Service, ServiceConfig, ServiceError};
use dp_starj_repro::ssb::{all_queries, generate, SsbConfig};
use std::sync::Arc;
use std::thread;

const TENANTS: usize = 4;
const EPS_PER_QUERY: f64 = 0.1;
const ALLOTMENT: f64 = 2.5; // 25 paid queries per tenant, then refusals.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared SSB instance (SF 0.05 ≈ 300k fact rows at the default).
    let schema = Arc::new(generate(&SsbConfig::at_scale(0.05, 2023))?);
    println!(
        "SSB instance: {} fact rows, {} dimensions\n",
        schema.fact().num_rows(),
        schema.num_dims()
    );

    let service = Arc::new(Service::new(Arc::clone(&schema), ServiceConfig::default()));
    for t in 0..TENANTS {
        service.register_tenant(&format!("tenant-{t}"), PrivacyBudget::pure(ALLOTMENT)?)?;
    }

    // Every tenant thread runs the same analytical session concurrently.
    let handles: Vec<_> = (0..TENANTS)
        .map(|t| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                let queries = all_queries();
                let mut paid = 0u32;
                let mut replayed = 0u32;
                let mut refused = 0u32;

                // Three passes over the workload: pass 0 pays, passes 1–2
                // replay from the cache for free.
                for _pass in 0..3 {
                    for q in &queries {
                        match service.pm_answer(&tenant, q, EPS_PER_QUERY) {
                            Ok(a) if a.cached => replayed += 1,
                            Ok(_) => paid += 1,
                            Err(ServiceError::BudgetExhausted { .. }) => refused += 1,
                            Err(e) => panic!("{tenant}: unexpected error: {e}"),
                        }
                    }
                }
                // Now drain the rest of the allotment with distinct ad-hoc
                // queries (all 28 year ranges over Date's 7-year domain)
                // until the accountant says no.
                'drain: for lo in 0u32..7 {
                    for hi in lo..7 {
                        let q =
                            dp_starj_repro::engine::StarQuery::count(format!("adhoc_{lo}_{hi}"))
                                .with(dp_starj_repro::engine::Predicate::range(
                                    "Date", "year", lo, hi,
                                ));
                        match service.pm_answer(&tenant, &q, EPS_PER_QUERY) {
                            Ok(a) if a.cached => replayed += 1,
                            Ok(_) => paid += 1,
                            Err(ServiceError::BudgetExhausted { .. }) => {
                                refused += 1;
                                break 'drain;
                            }
                            Err(e) => panic!("{tenant}: unexpected error: {e}"),
                        }
                    }
                }
                (tenant, paid, replayed, refused)
            })
        })
        .collect();

    println!("tenant     paid  replayed  refused  ε spent / allotment");
    for h in handles {
        let (tenant, paid, replayed, refused) = h.join().expect("tenant thread panicked");
        let usage = service.tenant_usage(&tenant)?;
        println!(
            "{tenant:<9} {paid:>5} {replayed:>9} {refused:>8}  {:.2} / {:.2}",
            usage.spent_epsilon,
            usage.allotment.epsilon()
        );
    }

    let m = service.metrics();
    println!(
        "\nservice totals: {} served ({} cache hits, {} free), {} budget refusals",
        m.queries_served, m.cache_hits, m.free_answers, m.budget_refusals
    );
    if let (Some(p50), Some(p99)) = (m.p50_latency_us, m.p99_latency_us) {
        println!("latency: p50 ≤ {p50:.0} µs, p99 ≤ {p99:.0} µs");
    }
    Ok(())
}
