//! k-star counting under DP on a social-network-like graph — the paper's
//! Table 2 scenario: compare PM against the R2T and TM baselines on 2-star
//! and 3-star counting.
//!
//! ```text
//! cargo run --release --example kstar_graph
//! ```

use dp_starj_repro::baselines::{kstar_r2t, kstar_tm, KstarTmConfig, R2tConfig};
use dp_starj_repro::core::pm_kstar;
use dp_starj_repro::core::pma::RangePolicy;
use dp_starj_repro::graph::{binomial, deezer_like, kstar_count, KStarQuery};
use dp_starj_repro::noise::StarRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1/20-scale Deezer-like network (7,200 nodes, ~42k edges).
    let graph = deezer_like(0.05, 11)?;
    println!(
        "Graph: {} nodes, {} edges, max degree {}, avg degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree(),
        graph.avg_degree()
    );

    let epsilon = 1.0;
    for k in [2u32, 3] {
        let query = KStarQuery::full(k, graph.num_nodes());
        let truth = kstar_count(&graph, &query) as f64;
        println!("\n{} (true count = {truth:.0}):", query.name());

        let mut rng = StarRng::from_seed(1).derive(&query.name());
        let (pm, noisy) = pm_kstar(&graph, &query, epsilon, RangePolicy::default(), &mut rng)?;
        println!(
            "  PM : {pm:>16.0}  rel err {:>6.2}%  (noisy center range [{}, {}])",
            (pm - truth).abs() / truth * 100.0,
            noisy.lo,
            noisy.hi
        );

        let gs = binomial(u64::from(graph.max_degree()), k) as f64;
        let r2t_cfg = R2tConfig::new(gs.max(2.0), vec![]);
        let r2t = kstar_r2t(&graph, &query, epsilon, &r2t_cfg, &mut rng)?;
        println!(
            "  R2T: {:>16.0}  rel err {:>6.2}%  (winning τ = {})",
            r2t.value,
            (r2t.value - truth).abs() / truth * 100.0,
            r2t.chosen_tau
        );

        let (tm, theta, _) =
            kstar_tm(&graph, &query, epsilon, &KstarTmConfig::default(), &mut rng)?;
        println!(
            "  TM : {tm:>16.0}  rel err {:>6.2}%  (degree truncation θ = {theta})",
            (tm - truth).abs() / truth * 100.0
        );
    }
    Ok(())
}
