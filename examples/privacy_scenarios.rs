//! The `(a,b)`-private scenario taxonomy in action (paper Definition 3.7):
//! build neighboring database instances under the different privacy
//! scenarios and watch how much a query answer can move — the sensitivity
//! story that motivates DP-starJ.
//!
//! ```text
//! cargo run --release --example privacy_scenarios
//! ```

use dp_starj_repro::core::neighbors::{delete_dim_tuple_cascade, delete_fact_tuple};
use dp_starj_repro::core::privacy::PrivacySpec;
use dp_starj_repro::engine::{contributions, execute, to_sql};
use dp_starj_repro::ssb::{generate, qc1, SsbConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = generate(&SsbConfig::at_scale(0.005, 13))?;
    let query = qc1();
    println!("query: {}", to_sql(&schema, &query));
    let baseline = execute(&schema, &query)?.scalar()?;
    println!("answer on D_s: {baseline}\n");

    // (1,0)-private: neighbors differ by ONE fact tuple ⇒ a COUNT moves by
    // at most 1. The plain Laplace mechanism is applicable.
    let spec = PrivacySpec::fact_only();
    spec.validate(&schema)?;
    println!("{} — fact tuples are the secret:", spec.describe());
    let neighbor = delete_fact_tuple(&schema, 0)?;
    let moved = baseline - execute(&neighbor, &query)?.scalar()?;
    println!("  deleting one lineorder moves the count by {moved} (GS = 1)");
    println!("  Laplace mechanism applicable: {}\n", spec.laplace_mechanism_applicable());

    // (0,1)-private: deleting a customer cascades into ALL its lineorders.
    let spec = PrivacySpec::dims(vec!["Customer".into()]);
    spec.validate(&schema)?;
    println!("{} — customers are the secret:", spec.describe());
    let contrib = contributions(&schema, &query, &["Customer".to_string()])?;
    println!(
        "  {} customers contribute; the heaviest accounts for {} rows",
        contrib.num_entities(),
        contrib.max()
    );
    // Demonstrate the cascade on the heaviest customer.
    let (heaviest, weight) = contrib
        .per_entity
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty");
    let neighbor = delete_dim_tuple_cascade(&schema, "Customer", heaviest[0])?;
    let moved = baseline - execute(&neighbor, &query)?.scalar()?;
    println!(
        "  deleting customer {} moves the count by {moved} (its contribution: {weight})",
        heaviest[0]
    );
    println!(
        "  ⇒ sensitivity is the max fanout, unbounded a priori — why output\n\
         \x20   perturbation fails and DP-starJ perturbs predicates instead.\n"
    );

    // (1,2)-private mixed scenario: validation only (the mechanisms treat it
    // like (0,k) plus the fact-tuple case).
    let spec = PrivacySpec {
        fact_private: true,
        private_dims: vec!["Customer".into(), "Supplier".into()],
    };
    spec.validate(&schema)?;
    println!("{} — mixed scenario validates too", spec.describe());
    println!("  Laplace mechanism applicable: {}", spec.laplace_mechanism_applicable());
    Ok(())
}
