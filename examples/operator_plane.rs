//! The operator plane end to end: the HTTP exposition endpoint scraped
//! with raw sockets (exactly what Prometheus and curl do), a live wire
//! subscriber watching one request's spans and audit events arrive, the
//! stitched trace timeline, and an EXPLAIN/profile report — none of it
//! spending a single ε beyond the one served query.
//!
//! ```text
//! cargo run --release --example operator_plane
//! ```

use dp_starj_repro::engine::{to_sql, Predicate, StarQuery};
use dp_starj_repro::gate::{sql_request, Gate, GateClient, GateConfig};
use dp_starj_repro::noise::PrivacyBudget;
use dp_starj_repro::ops::{OpsConfig, OpsServer};
use dp_starj_repro::router::{Router, RouterConfig};
use dp_starj_repro::ssb::{generate, SsbConfig};
use dp_starj_repro::telemetry::{EventBus, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const ADMIN: &str = "0ps-t3am";

/// One `GET` the way curl does it: a raw socket, a handful of header
/// lines, the whole response read back.
fn http_get(addr: SocketAddr, target: &str, token: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let auth = token.map(|t| format!("Authorization: Bearer {t}\r\n")).unwrap_or_default();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n{auth}\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    (head.split(' ').nth(1).unwrap().parse().unwrap(), body.to_string())
}

fn main() {
    // A router with an event bus: every shard, the router, and the gate
    // publish completed spans, audit events, and slow queries into it.
    let schema = Arc::new(generate(&SsbConfig::at_scale(0.01, 7)).expect("SSB generation"));
    let bus = EventBus::new();
    let router = Arc::new(
        Router::new(RouterConfig { bus: Some(Arc::clone(&bus)), ..RouterConfig::default() })
            .unwrap(),
    );
    router.add_dataset("ssb", Arc::clone(&schema)).unwrap();
    router.register_tenant("ssb", "analyst", PrivacyBudget::pure(4.0).unwrap()).unwrap();

    let gate = Gate::bind(
        Arc::clone(&router),
        GateConfig {
            tokens: vec![("s3cret".to_string(), "analyst".to_string())],
            admin_tokens: vec![ADMIN.to_string()],
            ..GateConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();

    // ---- 1. the HTTP face -------------------------------------------------
    let ops = OpsServer::bind(
        Arc::clone(&router),
        OpsConfig { admin_tokens: vec![ADMIN.to_string()], ..OpsConfig::default() },
        "127.0.0.1:0",
    )
    .unwrap();
    println!("gate on {}, HTTP exposition on http://{}\n", gate.addr(), ops.addr());

    let (status, body) = http_get(ops.addr(), "/healthz", None);
    println!("GET /healthz            → {status} {}", body.trim());
    let (status, body) = http_get(ops.addr(), "/readyz", None);
    println!("GET /readyz             → {status} {}", body.trim());
    let (status, _) = http_get(ops.addr(), "/metrics", None);
    println!("GET /metrics (no token) → {status} (cross-tenant, admin bearer token required)");
    let (status, metrics) = http_get(ops.addr(), "/metrics", Some(ADMIN));
    let families = metrics.lines().filter(|l| l.starts_with("# TYPE")).count();
    println!("GET /metrics (admin)    → {status}, {} bytes, {families} families", metrics.len());

    // ---- 2. a live subscriber + one traced request ------------------------
    let mut operator = GateClient::connect(gate.addr()).unwrap();
    let (_, ack) = operator.subscribe(ADMIN, Some(256)).unwrap();
    println!(
        "\nsubscribed to the live event stream (ring capacity {})",
        ack.get("capacity").and_then(Json::as_f64).unwrap()
    );

    let query = StarQuery::count("winter_eu")
        .with(Predicate::range("Date", "year", 0, 2))
        .with(Predicate::point("Customer", "region", 1));
    let sql = to_sql(&schema, &query);
    let mut analyst = GateClient::connect(gate.addr()).unwrap();
    analyst.send(sql_request(7001, "s3cret", "ssb", &sql, 0.5)).unwrap();
    let answer = analyst.recv().unwrap();
    println!(
        "served wire request id 7001: noisy count = {:.1}\n",
        answer.get("value").and_then(Json::as_f64).unwrap()
    );

    // Drain events until the gate root span lands (it finishes last),
    // then print the stitched timeline: every span of the request shares
    // trace_id 7001, and parent_span_id links reconstruct who spawned
    // whom — gate → shard worker — without any request-scoped state.
    let mut spans: Vec<Json> = Vec::new();
    let mut audits = 0u32;
    loop {
        let frame = operator.recv().unwrap();
        match frame.get("event").and_then(Json::as_str) {
            Some("audit") => audits += 1,
            Some("span") | Some("slow_query") => {
                let is_root = frame.get("kind").and_then(Json::as_str) == Some("gate");
                spans.push(frame);
                if is_root {
                    break;
                }
            }
            _ => {}
        }
    }
    println!("streamed {} spans + {audits} audit events for trace 7001:", spans.len());
    fn print_tree(spans: &[Json], parent: f64, depth: usize) {
        for span in spans {
            if span.get("parent_span_id").and_then(Json::as_f64) == Some(parent) {
                println!(
                    "  {:indent$}{} span {} on {} ({} µs)",
                    "",
                    span.get("kind").and_then(Json::as_str).unwrap_or("?"),
                    span.get("span_id").and_then(Json::as_f64).unwrap(),
                    span.get("component").and_then(Json::as_str).unwrap_or("?"),
                    span.get("duration_ns").and_then(Json::as_f64).unwrap_or(0.0) / 1e3,
                    indent = depth * 2
                );
                print_tree(spans, span.get("span_id").and_then(Json::as_f64).unwrap(), depth + 1);
            }
        }
    }
    print_tree(&spans, 0.0, 0);

    // ---- 3. EXPLAIN with a profile, spending nothing ----------------------
    let before = router.tenant_usage("ssb", "analyst").unwrap().spent_epsilon;
    let report = operator.explain(ADMIN, "ssb", &sql, true).unwrap();
    let after = router.tenant_usage("ssb", "analyst").unwrap().spent_epsilon;
    println!("\nEXPLAIN (profiled), ε spent: {before} → {after}");
    println!("  canonical: {}", report.get("canonical_sql").and_then(Json::as_str).unwrap());
    if let Some(plan) = report.get("plan") {
        println!("  plan: {}", plan.render());
    }
    if let Some(profile) = report.get("profile") {
        println!("  profile: {}", profile.render());
    }
}
